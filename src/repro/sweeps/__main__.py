"""Command-line driver: ``python -m repro.sweeps --axis storage --check``."""

from __future__ import annotations

import argparse
import sys
import time

from ..cli import (
    add_options,
    chunk_blocks_from_args,
    envvar_epilog,
    result_cache_from_args,
    workloads_from_args,
)
from ..errors import ReproError
from . import SWEEP_AXES, format_sweep, run_sweep


def _parse_values(axis: str, raw: "str | None"):
    if raw is None:
        return None
    if axis == "consolidation":
        # Semicolon-separated mixes of comma-separated workloads:
        #   "oltp_db2,web_frontend;dss_qry2,web_search"
        return [tuple(part.split(",")) for part in raw.split(";") if part]
    return [int(part) for part in raw.split(",") if part]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweeps",
        description="Sensitivity sweeps over history storage, core count, "
        "consolidation mixes, LLC capacity and seeds (paper Figs. 6-9 and "
        "Sec. 5.4).",
        epilog=envvar_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--axis", choices=SWEEP_AXES, required=True, help="sweep axis")
    parser.add_argument(
        "--values",
        default=None,
        help="override sweep points: comma-separated integers (history "
        "entries, core counts, paper-scale LLC KB per core, or seeds), or "
        "for --axis consolidation semicolon-separated workload mixes "
        "(e.g. 'oltp_db2,web_frontend;dss_qry2,web_search')",
    )
    add_options(
        parser,
        "system",
        "scale",
        "workloads",
        "cores",
        "blocks",
        "seed",
        "workers",
        "trace-cache",
        "backend",
        "chunk-blocks",
        "json",
        "result-cache",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="relative coverage tolerance for SHIFT vs PIF (default: 0.10)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if any sweep point violates the paper ordering",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    # repro: allow[determinism] progress display only, never in the report
    started = time.time()
    try:
        report = run_sweep(
            axis=args.axis,
            values=_parse_values(args.axis, args.values),
            system=args.system,
            scale=args.scale,
            workloads=workloads_from_args(args),
            num_cores=args.cores,
            blocks_per_core=args.blocks,
            seed=args.seed,
            workers=args.workers,
            trace_cache=args.trace_cache,
            backend=args.backend,
            chunk_blocks=chunk_blocks_from_args(args),
            result_cache=result_cache_from_args(args),
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(format_sweep(report))
    if report.result_cache_stats is not None:
        stats = report.result_cache_stats
        print(
            f"result cache: {stats['hits']} hits, {stats['misses']} misses, "
            f"{stats['stored']} stored"
        )
    print(f"({time.time() - started:.1f}s)")  # repro: allow[determinism] progress display
    if args.json:
        report.save(args.json)
        print(f"sweep written to {args.json}")
    violations = report.check(tolerance=args.tolerance)
    if violations:
        print("paper-ordering violations:", file=sys.stderr)
        for violation in violations:
            print(f"  - {violation}", file=sys.stderr)
        if args.check:
            return 1
    elif args.check:
        print(
            f"paper ordering holds at every {args.axis} point: SHIFT within "
            f"{args.tolerance:.0%} of PIF, both above next-line"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
