"""Sensitivity sweeps over the paper's experimental axes.

The headline claim of KaynakGF13 is not a single number but a *robustness*
result: SHIFT retains most of PIF's benefit across history-storage budgets
(Figures 6–7), core counts (Figure 8 — amortization is what makes the shared
history attractive), consolidated-server mixes (Figure 9) and LLC capacities
(Section 5.4 — the virtualized history must not hurt the LLC it lives in).
This package parameterizes :func:`repro.experiments.run_experiment` over
those axes:

========= ===================================================== ============
axis       sweep values                                          paper figure
========= ===================================================== ============
storage    paper-scale history entries for PIF and SHIFT         Figs. 6–7
cores      cores on the CMP (LLC slices and mesh scale along)    Fig. 8
consolid.  workload mixes sharing the CMP, split SHIFT history   Fig. 9
llc        paper-scale LLC KB per core (shared-LLC capacity)     Sec. 5.4
seeds      workload-generation RNG seeds (robustness check)      —
========= ===================================================== ============

Every sweep point is a full engine-comparison report; the sweep report is
JSON-round-trippable and byte-identical across serial and parallel
execution.  ``python -m repro.sweeps --axis storage --check`` exits non-zero
if any point violates the paper ordering (SHIFT within tolerance of PIF,
both above next-line).  The ``llc`` axis additionally checks Section 5.4's
claim: SHIFT's LLC instruction hit ratio stays within
:data:`LLC_HIT_RATIO_TOLERANCE` of PIF's (whose LLC holds no history) at
every capacity point.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..experiments import (
    REPORT_SCHEMA_VERSION,
    ExperimentReport,
    check_schema_version,
    run_consolidated_experiment,
    run_experiment,
)

#: Paper-scale history budgets swept by ``--axis storage`` (the paper's
#: Figure 6 spans 8K–64K records; 4K stresses the low end).
DEFAULT_STORAGE_POINTS: Tuple[int, ...] = (4096, 8192, 16384, 32768, 65536)

#: Core counts swept by ``--axis cores`` (the paper's CMP has 16).
DEFAULT_CORE_POINTS: Tuple[int, ...] = (2, 4, 8, 16)

#: Paper-scale LLC KB per core swept by ``--axis llc`` (Table I uses 512 KB;
#: Section 5.4 shrinks and grows the LLC around it — the 64 KB point puts
#: the pinned history at ~17% of capacity and real pressure on the LLC).
DEFAULT_LLC_POINTS: Tuple[int, ...] = (64, 128, 256, 512, 1024)

#: Maximum allowed gap between SHIFT's and PIF's LLC instruction hit ratio
#: at any ``llc`` sweep point (the Section 5.4 "costs almost nothing" bound).
LLC_HIT_RATIO_TOLERANCE = 0.05

#: Seeds swept by ``--axis seeds``.
DEFAULT_SEED_POINTS: Tuple[int, ...] = (0, 1, 2)

#: Consolidation mixes swept by ``--axis consolidation``: three 2-way mixes
#: pairing OLTP/DSS/media with web workloads, and one 4-way mix (Fig. 9
#: evaluates 2-way and 4-way consolidation).
DEFAULT_CONSOLIDATION_MIXES: Tuple[Tuple[str, ...], ...] = (
    ("oltp_db2", "web_frontend"),
    ("oltp_oracle", "web_search"),
    ("dss_qry2", "media_streaming"),
    ("oltp_db2", "web_frontend", "dss_qry17", "web_search"),
)

SWEEP_AXES: Tuple[str, ...] = ("storage", "cores", "consolidation", "llc", "seeds")


@dataclass
class SweepPoint:
    """One point of a sweep: an axis value and its full experiment report."""

    axis: str
    value: object
    label: str
    report: ExperimentReport

    def shift_to_pif_ratios(self) -> List[float]:
        """Per-row SHIFT/PIF coverage ratios (the paper's retention metric)."""
        ratios: List[float] = []
        for row in self.report.rows:
            pif = row.outcomes.get("pif")
            shift = row.outcomes.get("shift")
            if pif is None or shift is None or pif.coverage <= 0:
                continue
            ratios.append(shift.coverage / pif.coverage)
        return ratios

    def to_dict(self) -> Dict[str, object]:
        return {
            "axis": self.axis,
            "value": self.value,
            "label": self.label,
            "report": self.report.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SweepPoint":
        return cls(
            axis=str(data["axis"]),
            value=data["value"],
            label=str(data["label"]),
            report=ExperimentReport.from_dict(dict(data["report"])),
        )


@dataclass
class SweepReport:
    """All points of one sensitivity sweep."""

    axis: str
    points: List[SweepPoint] = field(default_factory=list)
    params: Dict[str, object] = field(default_factory=dict)
    #: Aggregate result-cache traffic across every sweep point, populated
    #: when ``run_sweep(result_cache=...)`` was given a cache.  Execution
    #: telemetry only — excluded from ``to_dict`` and comparison so cached
    #: and uncached sweeps serialize byte-identically.
    result_cache_stats: Optional[Dict[str, int]] = field(default=None, compare=False)

    def check(
        self,
        tolerance: float = 0.10,
        llc_tolerance: float = LLC_HIT_RATIO_TOLERANCE,
    ) -> List[str]:
        """Paper-ordering violations across every sweep point.

        The ``llc`` axis additionally enforces Section 5.4: virtualizing
        the history into the LLC must leave SHIFT's LLC instruction hit
        ratio within ``llc_tolerance`` of PIF's, whose LLC carries no
        history blocks, at every capacity point.
        """
        violations: List[str] = []
        if not self.points:
            return [f"{self.axis}: sweep has no points"]
        for point in self.points:
            for violation in point.report.check_paper_ordering(tolerance):
                violations.append(f"[{self.axis}={point.label}] {violation}")
            if self.axis != "llc":
                continue
            for row in point.report.rows:
                pif = row.outcomes.get("pif")
                shift = row.outcomes.get("shift")
                if pif is None or shift is None:
                    continue
                gap = pif.llc_hit_ratio - shift.llc_hit_ratio
                if gap > llc_tolerance:
                    violations.append(
                        f"[{self.axis}={point.label}] {row.workload}: history "
                        f"virtualization costs {gap:.3f} of LLC hit ratio "
                        f"(SHIFT {shift.llc_hit_ratio:.3f} vs PIF "
                        f"{pif.llc_hit_ratio:.3f}, tolerance {llc_tolerance})"
                    )
        return violations

    def to_dict(self) -> Dict[str, object]:
        """The schema-tagged plain-dict form (what ``repro.serve`` returns)."""
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "axis": self.axis,
            "params": dict(self.params),
            "points": [point.to_dict() for point in self.points],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SweepReport":
        """Rebuild a sweep from :meth:`to_dict` (schema-version checked)."""
        check_schema_version(data, "sweep report")
        return cls(
            axis=str(data["axis"]),
            points=[SweepPoint.from_dict(dict(p)) for p in list(data["points"])],
            params=dict(data.get("params", {})),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Canonical JSON: sorted keys, fixed layout — byte-stable across
        serial and parallel execution for identical inputs."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SweepReport":
        """Parse a sweep from its :meth:`to_json` serialization."""
        return cls.from_dict(json.loads(text))

    def save(self, path: "str | Path") -> None:
        """Write the canonical JSON form (plus trailing newline) to ``path``."""
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: "str | Path") -> "SweepReport":
        """Read a sweep previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())


def _int_values(values: Optional[Sequence[int]], default: Tuple[int, ...]) -> List[int]:
    if values is None:
        return list(default)
    out = [int(v) for v in values]
    if not out:
        raise ConfigurationError("a sweep needs at least one value")
    return out


def run_sweep(
    axis: str,
    values: Optional[Sequence] = None,
    system: str = "scaled",
    scale: int = 16,
    workloads: Optional[Sequence[str]] = None,
    num_cores: Optional[int] = None,
    blocks_per_core: Optional[int] = None,
    seed: int = 0,
    workers: Optional[int] = None,
    trace_cache: "str | Path | None" = None,
    backend: Optional[str] = None,
    chunk_blocks: Optional[int] = None,
    result_cache: "str | Path | object | None" = None,
) -> SweepReport:
    """Run one sensitivity sweep and return its report.

    ``values`` overrides the axis' default points: history entries for
    ``storage``, core counts for ``cores``, seeds for ``seeds``, and
    sequences of workload names for ``consolidation``.  ``backend``
    selects the simulation backend for every point (results are
    backend-invariant); ``chunk_blocks`` streams each point's traces
    through the engine in bounded windows (results are chunking-invariant,
    see ARCHITECTURE.md).  ``result_cache`` is shared across all points, so
    re-sweeping after changing one axis value recomputes only the new
    points' cells — the incremental-sweep path; aggregate traffic lands in
    :attr:`SweepReport.result_cache_stats`.
    """
    if axis not in SWEEP_AXES:
        raise ConfigurationError(f"unknown sweep axis {axis!r}; known: {', '.join(SWEEP_AXES)}")
    from ..results import as_result_cache

    cache = as_result_cache(result_cache)
    before = cache.stats() if cache is not None else None
    common = dict(
        system=system,
        scale=scale,
        blocks_per_core=blocks_per_core,
        workers=workers,
        trace_cache=trace_cache,
        backend=backend,
        chunk_blocks=chunk_blocks,
        result_cache=cache,
    )
    points: List[SweepPoint] = []
    if axis == "storage":
        for entries in _int_values(values, DEFAULT_STORAGE_POINTS):
            report = run_experiment(
                workloads=workloads,
                num_cores=num_cores,
                seed=seed,
                history_entries=entries,
                **common,
            )
            points.append(SweepPoint(axis, entries, str(entries), report))
    elif axis == "cores":
        for cores in _int_values(values, DEFAULT_CORE_POINTS):
            report = run_experiment(
                workloads=workloads, num_cores=cores, seed=seed, **common
            )
            points.append(SweepPoint(axis, cores, str(cores), report))
    elif axis == "llc":
        for llc_kb in _int_values(values, DEFAULT_LLC_POINTS):
            report = run_experiment(
                workloads=workloads,
                num_cores=num_cores,
                seed=seed,
                llc_kb_per_core=llc_kb,
                **common,
            )
            points.append(SweepPoint(axis, llc_kb, f"{llc_kb}KB", report))
    elif axis == "seeds":
        for sweep_seed in _int_values(values, DEFAULT_SEED_POINTS):
            report = run_experiment(
                workloads=workloads, num_cores=num_cores, seed=sweep_seed, **common
            )
            points.append(SweepPoint(axis, sweep_seed, str(sweep_seed), report))
    else:  # consolidation
        if workloads is not None:
            raise ConfigurationError(
                "--workloads does not apply to the consolidation axis; "
                "pass mixes via --values instead"
            )
        mixes = (
            [tuple(mix) for mix in values]
            if values is not None
            else list(DEFAULT_CONSOLIDATION_MIXES)
        )
        if not mixes:
            raise ConfigurationError("a sweep needs at least one value")
        for mix in mixes:
            report = run_consolidated_experiment(
                [mix], num_cores=num_cores, seed=seed, **common
            )
            points.append(SweepPoint(axis, list(mix), "+".join(mix), report))
    params: Dict[str, object] = {
        "axis": axis,
        "system": system,
        "scale": scale,
        "workloads": list(workloads) if workloads else None,
        "num_cores": num_cores,
        "blocks_per_core": blocks_per_core,
        "seed": seed,
    }
    report = SweepReport(axis=axis, points=points, params=params)
    if cache is not None:
        after = cache.stats()
        report.result_cache_stats = {key: after[key] - before[key] for key in after}
    return report


def format_sweep(report: SweepReport) -> str:
    """Compact per-point summary: SHIFT's retention of PIF's coverage."""
    lines = [f"sweep axis: {report.axis}"]
    header = f"{'point':<40} {'rows':>4} {'shift/pif min':>13} {'shift/pif mean':>14}"
    lines.append(header)
    lines.append("-" * len(header))
    for point in report.points:
        ratios = point.shift_to_pif_ratios()
        if ratios:
            low, mean = min(ratios), sum(ratios) / len(ratios)
            lines.append(
                f"{point.label:<40} {len(point.report.rows):>4} {low:>13.3f} {mean:>14.3f}"
            )
        else:
            lines.append(f"{point.label:<40} {len(point.report.rows):>4} {'-':>13} {'-':>14}")
    return "\n".join(lines)


__all__ = [
    "SWEEP_AXES",
    "DEFAULT_STORAGE_POINTS",
    "DEFAULT_CORE_POINTS",
    "DEFAULT_LLC_POINTS",
    "DEFAULT_SEED_POINTS",
    "DEFAULT_CONSOLIDATION_MIXES",
    "LLC_HIT_RATIO_TOLERANCE",
    "SweepPoint",
    "SweepReport",
    "run_sweep",
    "format_sweep",
]
