"""Reproduction of SHIFT: shared history instruction fetch (MICRO 2013).

Subpackages
-----------
``repro.config``
    Table I system/application parameters and scaled design points.
``repro.workloads``
    Synthetic server-workload substrate producing per-core fetch traces.
``repro.sim``
    Trace-driven L1-I cache, prefetcher engines and the timing model.
``repro.experiments``
    End-to-end drivers comparing no-prefetch, next-line, PIF and SHIFT.
"""

__version__ = "0.1.0"

from . import errors

__all__ = ["errors", "__version__"]
