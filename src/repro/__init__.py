"""Reproduction of SHIFT: shared history instruction fetch (MICRO 2013).

This package's stable public API is re-exported here: build experiments
with :func:`run_experiment` / :func:`run_sweep` / :func:`run_cell`, make
re-runs incremental with :class:`ResultCache`, and serialize reports with
the schema-versioned ``to_dict``/``from_dict`` round-trips::

    import repro

    report = repro.run_experiment(workloads=["oltp_db2"], num_cores=4,
                                  result_cache=".result_cache")
    payload = report.to_dict()                       # what repro.serve returns
    same = repro.ExperimentReport.from_dict(payload)

The command-line front door is ``python -m repro {experiments,sweeps,bench,
serve}`` (each subcommand also remains callable as ``python -m
repro.<name>``); ``python -m repro.serve`` exposes the same drivers as a
long-running HTTP service.

Subpackages
-----------
``repro.config``
    Table I system/application parameters and scaled design points.
``repro.workloads``
    Synthetic server-workload substrate producing per-core fetch traces.
``repro.sim``
    Trace-driven L1-I cache, prefetcher engines and the timing model.
``repro.experiments``
    End-to-end drivers comparing no-prefetch, next-line, PIF and SHIFT.
``repro.sweeps``
    Sensitivity sweeps over the paper's experimental axes.
``repro.results``
    Content-addressed on-disk cache of simulation results.
``repro.serve``
    HTTP experiment service with a background job queue.
``repro.bench``
    Performance harness and regression gate.
``repro.analysis``
    Static checks of the repo's correctness invariants (determinism,
    cache-key completeness, backend parity, lock discipline, env/CLI
    registries); ``python -m repro.analysis`` gates CI on them.
``repro.envvars``
    Declared registry of every ``REPRO_*`` environment variable.
"""

__version__ = "0.1.0"

from . import envvars, errors
from .analysis import Finding, run_analysis
from .experiments import (
    REPORT_SCHEMA_VERSION,
    ExperimentReport,
    format_report,
    run_consolidated_experiment,
    run_experiment,
)
from .experiments.cells import CellSpec, run_cell, system_for
from .results import ResultCache, result_cache_key
from .sweeps import SweepReport, format_sweep, run_sweep

__all__ = [
    "__version__",
    "envvars",
    "errors",
    "Finding",
    "run_analysis",
    "run_experiment",
    "run_consolidated_experiment",
    "run_sweep",
    "run_cell",
    "CellSpec",
    "system_for",
    "ExperimentReport",
    "SweepReport",
    "format_report",
    "format_sweep",
    "ResultCache",
    "result_cache_key",
    "REPORT_SCHEMA_VERSION",
]
