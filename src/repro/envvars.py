"""Declared registry of every ``REPRO_*`` environment variable.

Every environment variable the package reads is declared here — name,
default, and one-line semantics — and every call site reads the raw value
through :meth:`EnvVar.read`.  This is the single source the ``--help``
epilogs and the README's environment-variable table reference, and the
``env-registry`` checker of :mod:`repro.analysis` enforces it statically:
an ``os.environ``/``os.getenv`` read anywhere else under ``src/repro``, or
a ``REPRO_*`` name spelled as a string literal outside this module, fails
the analysis gate.  A variable that exists in code but not in this registry
(or vice versa) therefore cannot drift past CI.

Value *parsing* (integer byte counts, worker counts, ...) stays at the call
sites, whose error messages name the variable and are pinned by tests; this
module owns only the names, defaults and documentation.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class EnvVar:
    """One declared environment variable."""

    #: The environment name (``REPRO_*``); the only place it is spelled.
    name: str
    #: Human-readable effective default, for help text and docs.
    default: str
    #: One-line description, for help text and docs.
    description: str

    def read(self) -> Optional[str]:
        """The stripped value, or None when unset or blank.

        Unset and empty/whitespace-only values are deliberately equivalent:
        ``REPRO_X= python -m repro ...`` behaves like an unset variable,
        which is how every call site has always treated it.
        """
        raw = os.environ.get(self.name, "").strip()
        return raw or None


WORKERS = EnvVar(
    "REPRO_WORKERS",
    "unset (serial)",
    "fan experiment cells over N worker processes when --workers is not given",
)

BACKEND = EnvVar(
    "REPRO_BACKEND",
    "python",
    "simulation backend (python or numpy) when --backend is not given; "
    "reports are byte-identical across backends",
)

TRACE_CACHE_MAX_BYTES = EnvVar(
    "REPRO_TRACE_CACHE_MAX_BYTES",
    "268435456 (256 MB)",
    "LRU byte cap of the on-disk trace cache (0 disables the cap)",
)

RESULT_CACHE = EnvVar(
    "REPRO_RESULT_CACHE",
    "unset (batch CLIs: cache off; repro.serve: .result_cache)",
    "default result-cache directory when --result-cache is not given "
    "(--no-result-cache still wins)",
)

RESULT_CACHE_MAX_BYTES = EnvVar(
    "REPRO_RESULT_CACHE_MAX_BYTES",
    "67108864 (64 MB)",
    "LRU byte cap of the on-disk result cache (0 disables the cap)",
)

SERVE_RETAINED_JOBS = EnvVar(
    "REPRO_SERVE_RETAINED_JOBS",
    "256",
    "finished repro.serve jobs kept queryable before the oldest are pruned",
)

CHUNK_BLOCKS = EnvVar(
    "REPRO_CHUNK_BLOCKS",
    "unset (monolithic)",
    "stream each core's trace through the engine in windows of N blocks "
    "when --chunk-blocks is not given (out-of-core runs; reports are "
    "byte-identical for every chunk geometry, see ARCHITECTURE.md)",
)

NUMPY_MEMO_MAX = EnvVar(
    "REPRO_NUMPY_MEMO_MAX",
    "unset (per-cache defaults)",
    "LRU entry cap applied to every numpy-backend cross-run memo cache "
    "(chunked runs mint one window fingerprint per chunk, so long streams "
    "would otherwise grow the memos without bound)",
)

#: Every declared variable, in documentation order.
REGISTRY: Tuple[EnvVar, ...] = (
    WORKERS,
    BACKEND,
    TRACE_CACHE_MAX_BYTES,
    RESULT_CACHE,
    RESULT_CACHE_MAX_BYTES,
    SERVE_RETAINED_JOBS,
    CHUNK_BLOCKS,
    NUMPY_MEMO_MAX,
)


def by_name(name: str) -> EnvVar:
    """The registered variable called ``name`` (KeyError if undeclared)."""
    for var in REGISTRY:
        if var.name == name:
            return var
    raise KeyError(f"undeclared environment variable {name!r}")


def help_text(indent: str = "  ") -> str:
    """The registry rendered for an argparse epilog or README excerpt."""
    width = max(len(var.name) for var in REGISTRY)
    lines = [
        f"{indent}{var.name.ljust(width)}  {var.description} (default: {var.default})"
        for var in REGISTRY
    ]
    return "\n".join(lines)


__all__ = [
    "EnvVar",
    "REGISTRY",
    "WORKERS",
    "BACKEND",
    "TRACE_CACHE_MAX_BYTES",
    "RESULT_CACHE",
    "RESULT_CACHE_MAX_BYTES",
    "SERVE_RETAINED_JOBS",
    "CHUNK_BLOCKS",
    "NUMPY_MEMO_MAX",
    "by_name",
    "help_text",
]
