"""Long-running experiment service: ``python -m repro.serve``.

The batch CLIs recompute a whole experiment per invocation; this module
turns the repo into something that *serves* experiment traffic.  A
:class:`ExperimentService` owns a FIFO job queue drained by background
worker threads; each job is a full :func:`repro.experiments.run_experiment`
or :func:`repro.sweeps.run_sweep` call, which internally fans its cells out
over the existing :class:`~concurrent.futures.ProcessPoolExecutor`
(``workers=N``) and reads/writes the shared content-addressed
:class:`~repro.results.ResultCache` — so repeated or overlapping requests
cost simulation time only for cells never seen before.

Two layers of deduplication keep a busy service cheap:

* **in-flight jobs** — submitting a request whose canonical job key (kind +
  normalized params) matches a queued or running job returns *that* job's
  id (``deduped: true``) instead of queueing a second copy;
* **finished cells** — a genuinely new job still hits the result cache per
  cell, so only the changed axis values simulate.

The HTTP front end is stdlib-only (:class:`http.server.ThreadingHTTPServer`
— request handling must not block on a running simulation, and the sub-ms
JSON responses don't need more):

=============================  =============================================
endpoint                       meaning
=============================  =============================================
``POST /submit``               body ``{"kind": "experiment"|"sweep",
                               "params": {...}}`` → job id (deduped or new)
``GET /status/<job>``          queue position / running / done / failed
``GET /result/<job>``          the finished report — *verbatim*
                               ``Report.to_dict()``, so clients round-trip
                               it through ``from_dict`` (schema-versioned)
``GET /cache/stats``           result-cache traffic + on-disk usage + job
                               counts
``GET /jobs``                  retained jobs, newest last (finished jobs
                               beyond the retention cap are pruned)
``GET /healthz``               liveness probe
=============================  =============================================

Job params are validated against the library signatures' allowlist before
queueing, so a typo'd key fails the submit with HTTP 400 instead of a
worker-thread crash an hour later.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import queue
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from .. import envvars
from ..errors import ConfigurationError, ReproError
from ..experiments import run_experiment
from ..results import ResultCache, as_result_cache
from ..sweeps import run_sweep

#: Request kinds the service accepts, mapped to their driver below.
JOB_KINDS: Tuple[str, ...] = ("experiment", "sweep")

#: Finished (done/failed) jobs kept queryable; older ones are pruned as new
#: jobs finish, so a long-running service's job table cannot grow without
#: bound (reports are a few KB each and used to accumulate forever).
#: Queued and running jobs are never pruned.  Overridable per deployment
#: via ``REPRO_SERVE_RETAINED_JOBS`` or the constructor argument.  Declared
#: in :mod:`repro.envvars`; this alias keeps the historical import working.
DEFAULT_RETAINED_JOBS = 256
RETAINED_JOBS_ENV_VAR = envvars.SERVE_RETAINED_JOBS.name


def _resolve_retained_jobs(retained_jobs: Optional[int]) -> int:
    if retained_jobs is None:
        raw = envvars.SERVE_RETAINED_JOBS.read()
        if raw is None:
            return DEFAULT_RETAINED_JOBS
        try:
            retained_jobs = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"{RETAINED_JOBS_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    if retained_jobs < 1:
        raise ConfigurationError(
            f"the service must retain at least one finished job, got {retained_jobs}"
        )
    return retained_jobs

#: Params a client may set per request.  Execution policy (workers, caches,
#: backend, chunk_blocks) belongs to the deployment, not the request —
#: results are invariant to it, and letting clients choose it would just
#: let one request hog the pool.
EXPERIMENT_PARAM_KEYS = frozenset(
    {
        "system",
        "scale",
        "workloads",
        "engines",
        "num_cores",
        "blocks_per_core",
        "seed",
        "history_entries",
        "llc_kb_per_core",
    }
)
SWEEP_PARAM_KEYS = frozenset(
    {
        "axis",
        "values",
        "system",
        "scale",
        "workloads",
        "num_cores",
        "blocks_per_core",
        "seed",
    }
)

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


def job_key(kind: str, params: Dict[str, object]) -> str:
    """Canonical content key of one request (the dedupe key)."""
    payload = json.dumps(
        {"kind": kind, "params": params}, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def validate_request(kind: str, params: Dict[str, object]) -> None:
    """Reject malformed submissions before they reach the queue."""
    if kind not in JOB_KINDS:
        raise ConfigurationError(f"unknown job kind {kind!r}; known: {', '.join(JOB_KINDS)}")
    if not isinstance(params, dict):
        raise ConfigurationError("params must be a JSON object")
    allowed = EXPERIMENT_PARAM_KEYS if kind == "experiment" else SWEEP_PARAM_KEYS
    unknown = sorted(set(params) - allowed)
    if unknown:
        raise ConfigurationError(
            f"unknown {kind} params {unknown}; allowed: {', '.join(sorted(allowed))}"
        )
    if kind == "sweep" and "axis" not in params:
        raise ConfigurationError("a sweep request needs an 'axis' param")


@dataclass
class Job:
    """One queued/running/finished request."""

    id: str
    kind: str
    params: Dict[str, object]
    key: str
    status: str = QUEUED
    error: Optional[str] = None
    #: The finished report as its verbatim ``to_dict()`` payload.
    report: Optional[Dict[str, object]] = None
    #: Result-cache traffic of this job's run (None when the cache is off).
    cache_stats: Optional[Dict[str, int]] = None

    def summary(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "job": self.id,
            "kind": self.kind,
            "params": self.params,
            "status": self.status,
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.cache_stats is not None:
            payload["result_cache"] = self.cache_stats
        return payload


class ExperimentService:
    """The job queue + worker threads behind the HTTP endpoints.

    Usable directly from python (the HTTP layer is a thin shell), which is
    how the tests drive it deterministically.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        trace_cache: Optional[str] = None,
        result_cache: "ResultCache | str | None" = None,
        backend: Optional[str] = None,
        chunk_blocks: Optional[int] = None,
        job_threads: int = 1,
        retained_jobs: Optional[int] = None,
    ) -> None:
        if job_threads < 1:
            raise ConfigurationError("the service needs at least one job thread")
        self._workers = workers
        self._trace_cache = trace_cache
        self._result_cache = as_result_cache(result_cache)
        self._backend = backend
        self._chunk_blocks = chunk_blocks
        self._job_threads = job_threads
        self._retained_jobs = _resolve_retained_jobs(retained_jobs)
        self._jobs: Dict[str, Job] = {}
        self._by_key: Dict[str, str] = {}
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._threads: List[threading.Thread] = []
        self._started = False

    @property
    def result_cache(self) -> Optional[ResultCache]:
        return self._result_cache

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the job threads (idempotent, safe to race with itself).

        The started-flag check and the thread bookkeeping happen under
        ``self._lock``: two concurrent ``start()`` calls (e.g. a CLI and a
        health-check hook both poking the service) must spawn exactly
        ``job_threads`` workers, not two full sets.
        """
        with self._lock:
            if self._started:
                return
            self._started = True
            # Starting under the lock is safe (a fresh worker blocks on
            # queue.get, not the lock) and means a racing stop() can never
            # snapshot a thread that has not been started yet.
            for index in range(self._job_threads):
                thread = threading.Thread(
                    target=self._work, name=f"repro-serve-job-{index}", daemon=True
                )
                thread.start()
                self._threads.append(thread)

    def stop(self) -> None:
        """Drain-free shutdown: workers exit after their current job.

        The flag flip and the thread-list snapshot happen under
        ``self._lock``, but the joins must not: workers acquire the same
        lock to publish job results, so joining while holding it would
        deadlock against any worker mid-job.
        """
        with self._lock:
            if not self._started:
                return
            self._started = False
            threads = list(self._threads)
            self._threads.clear()
        for _ in threads:
            self._queue.put(None)
        for thread in threads:
            thread.join(timeout=30)

    # -- submission and queries -------------------------------------------

    def submit(self, kind: str, params: Dict[str, object]) -> Tuple[Job, bool]:
        """Queue a request (or return the in-flight duplicate).

        Returns ``(job, deduped)``.  Dedupe only matches *queued or
        running* jobs: finished jobs stay queryable but a resubmission gets
        a fresh job, whose cells then hit the result cache anyway.
        """
        validate_request(kind, params)
        key = job_key(kind, params)
        with self._lock:
            existing_id = self._by_key.get(key)
            if existing_id is not None:
                existing = self._jobs[existing_id]
                if existing.status in (QUEUED, RUNNING):
                    return existing, True
            job = Job(id=f"job-{next(self._ids)}", kind=kind, params=params, key=key)
            self._jobs[job.id] = job
            self._by_key[key] = job.id
        self._queue.put(job.id)
        return job, False

    def job(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def job_counts(self) -> Dict[str, int]:
        counts = {status: 0 for status in (QUEUED, RUNNING, DONE, FAILED)}
        for job in self.jobs():
            counts[job.status] += 1
        return counts

    def cache_stats(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"jobs": self.job_counts()}
        if self._result_cache is None:
            payload["result_cache"] = None
        else:
            payload["result_cache"] = {
                **self._result_cache.stats(),
                **self._result_cache.usage(),
                "directory": str(self._result_cache.directory),
            }
        return payload

    # -- execution ---------------------------------------------------------

    def _work(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            with self._lock:
                job = self._jobs[job_id]
                job.status = RUNNING
            try:
                report = self._run(job)
                with self._lock:
                    job.report = report.to_dict()
                    job.cache_stats = report.result_cache_stats
                    job.status = DONE
                    self._prune_finished_locked()
            except ReproError as error:
                with self._lock:
                    job.error = str(error)
                    job.status = FAILED
                    self._prune_finished_locked()
            except Exception as error:  # noqa: BLE001 - a job must never kill its worker
                with self._lock:
                    job.error = f"{type(error).__name__}: {error}"
                    job.status = FAILED
                    self._prune_finished_locked()

    def _prune_finished_locked(self) -> None:
        """Drop the oldest finished jobs beyond the retention cap.

        Caller holds ``self._lock``.  ``_jobs`` is insertion-ordered, so
        iteration order is submission order — the evicted jobs are the
        oldest finished ones, and ``/jobs`` stays newest-last.  A dedupe
        key is forgotten only when it still points at the evicted job, so
        in-flight dedupe (queued/running jobs, never pruned) is unaffected.
        """
        finished = [job for job in self._jobs.values() if job.status in (DONE, FAILED)]
        for job in finished[: max(0, len(finished) - self._retained_jobs)]:
            del self._jobs[job.id]
            if self._by_key.get(job.key) == job.id:
                del self._by_key[job.key]

    def _run(self, job: Job):
        common = dict(
            workers=self._workers,
            trace_cache=self._trace_cache,
            result_cache=self._result_cache,
            backend=self._backend,
            chunk_blocks=self._chunk_blocks,
        )
        params = dict(job.params)
        if job.kind == "experiment":
            return run_experiment(**params, **common)
        if params.get("values") is not None and params.get("axis") == "consolidation":
            params["values"] = [tuple(mix) for mix in params["values"]]
        return run_sweep(**params, **common)


# ---------------------------------------------------------------------------
# HTTP layer


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the attached :class:`ExperimentService`."""

    service: ExperimentService  # set by make_server on the subclass
    quiet = True

    #: Submissions beyond this size are rejected outright (a params dict is
    #: a few hundred bytes; anything larger is a mistake or abuse).
    MAX_BODY_BYTES = 1 << 20

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        if not self.quiet:  # pragma: no cover - debugging aid
            super().log_message(format, *args)

    def _send(self, code: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        service = self.service
        path = self.path.rstrip("/") or "/"
        if path == "/healthz":
            self._send(200, {"status": "ok"})
        elif path == "/cache/stats":
            self._send(200, service.cache_stats())
        elif path == "/jobs":
            self._send(200, {"jobs": [job.summary() for job in service.jobs()]})
        elif path.startswith("/status/"):
            self._job_response(path[len("/status/") :], want_result=False)
        elif path.startswith("/result/"):
            self._job_response(path[len("/result/") :], want_result=True)
        else:
            self._send(404, {"error": f"unknown endpoint {self.path!r}"})

    def _job_response(self, job_id: str, want_result: bool) -> None:
        job = self.service.job(job_id)
        if job is None:
            self._send(404, {"error": f"unknown job {job_id!r}"})
            return
        if not want_result:
            self._send(200, job.summary())
            return
        if job.status == DONE:
            payload = job.summary()
            payload["report"] = job.report
            self._send(200, payload)
        elif job.status == FAILED:
            self._send(500, job.summary())
        else:
            self._send(409, {**job.summary(), "error": "job has not finished"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path.rstrip("/") != "/submit":
            self._send(404, {"error": f"unknown endpoint {self.path!r}"})
            return
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > self.MAX_BODY_BYTES:
            self._send(400, {"error": "submit needs a JSON body"})
            return
        try:
            request = json.loads(self.rfile.read(length))
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            kind = request.get("kind", "experiment")
            params = request.get("params", {})
            job, deduped = self.service.submit(kind, params)
        except (ValueError, ConfigurationError) as error:
            self._send(400, {"error": str(error)})
            return
        self._send(200, {**job.summary(), "deduped": deduped, "key": job.key})


def make_server(
    host: str,
    port: int,
    service: ExperimentService,
    quiet: bool = True,
) -> ThreadingHTTPServer:
    """An HTTP server bound to ``host:port`` and routing to ``service``.

    ``port=0`` binds an ephemeral port (``server.server_address`` has the
    real one) — the tests' way of avoiding collisions.  The caller owns
    both lifecycles: ``service.start()`` before serving,
    ``service.stop()``/``server.shutdown()`` after.
    """
    handler = type("BoundHandler", (_Handler,), {"service": service, "quiet": quiet})
    return ThreadingHTTPServer((host, port), handler)


__all__ = [
    "DEFAULT_RETAINED_JOBS",
    "ExperimentService",
    "Job",
    "JOB_KINDS",
    "RETAINED_JOBS_ENV_VAR",
    "job_key",
    "validate_request",
    "make_server",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
]
