"""Command-line driver: ``python -m repro.serve --port 8351``.

Unlike the batch CLIs the service defaults the result cache *on* (a
long-running service without one would re-simulate every request);
``--no-result-cache`` turns it off, ``--result-cache DIR`` moves it.
"""

from __future__ import annotations

import argparse
import sys

from ..cli import (
    add_options,
    chunk_blocks_from_args,
    envvar_epilog,
    result_cache_from_args,
)
from ..errors import ReproError
from ..results import DEFAULT_RESULT_CACHE_DIR
from . import (
    DEFAULT_RETAINED_JOBS,
    RETAINED_JOBS_ENV_VAR,
    ExperimentService,
    make_server,
)

DEFAULT_PORT = 8351


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve experiment/sweep requests over HTTP with a "
        "background job queue, in-flight dedupe and a content-addressed "
        "result cache (endpoints: POST /submit, GET /status/<job>, "
        "GET /result/<job>, GET /cache/stats).",
        epilog=envvar_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    add_options(parser, "workers", "trace-cache", "backend", "chunk-blocks", "result-cache")
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT, help=f"bind port (default: {DEFAULT_PORT})"
    )
    parser.add_argument(
        "--job-threads",
        type=int,
        default=1,
        help="concurrent jobs; each job still fans its cells over --workers "
        "processes (default: 1)",
    )
    parser.add_argument(
        "--retained-jobs",
        type=int,
        default=None,
        help="finished jobs kept queryable before the oldest are pruned "
        f"(default: ${RETAINED_JOBS_ENV_VAR} or {DEFAULT_RETAINED_JOBS})",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log every HTTP request to stderr"
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        service = ExperimentService(
            workers=args.workers,
            trace_cache=args.trace_cache,
            result_cache=result_cache_from_args(args, default=DEFAULT_RESULT_CACHE_DIR),
            backend=args.backend,
            chunk_blocks=chunk_blocks_from_args(args),
            job_threads=args.job_threads,
            retained_jobs=args.retained_jobs,
        )
        server = make_server(args.host, args.port, service, quiet=not args.verbose)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: cannot bind {args.host}:{args.port}: {error}", file=sys.stderr)
        return 2
    service.start()
    host, port = server.server_address[:2]
    cache = service.result_cache
    cache_note = f"result cache at {cache.directory}" if cache else "result cache off"
    print(f"repro.serve listening on http://{host}:{port} ({cache_note})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.server_close()
        service.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
