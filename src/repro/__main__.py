"""One front door for the four module CLIs: ``python -m repro <command>``.

``python -m repro experiments --check`` is ``python -m repro.experiments
--check``, and likewise for ``sweeps``, ``bench`` and ``serve``.  The
module entry points stay importable and runnable on their own; this
dispatcher only routes, so the two spellings can never drift.
"""

from __future__ import annotations

import sys
from typing import List, Optional

COMMANDS = ("experiments", "sweeps", "bench", "serve", "analysis")

_USAGE = (
    "usage: python -m repro {experiments,sweeps,bench,serve,analysis} [options]\n"
    "\n"
    "commands:\n"
    "  experiments  compare the prefetch engines on the workload suite\n"
    "  sweeps       sensitivity sweeps over the paper's axes\n"
    "  bench        performance harness and regression gate\n"
    "  serve        long-running HTTP experiment service\n"
    "  analysis     static checks of the repo's correctness invariants\n"
    "\n"
    "run 'python -m repro <command> --help' for command options; every\n"
    "command epilog lists the REPRO_* environment knobs (including the\n"
    "out-of-core chunked-streaming window, --chunk-blocks /\n"
    "REPRO_CHUNK_BLOCKS).  Subsystem map and invariants: ARCHITECTURE.md\n"
)


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args[0] in ("-h", "--help"):
        print(_USAGE, end="")
        return 0 if args else 2
    command, rest = args[0], args[1:]
    if command == "experiments":
        from .experiments.__main__ import main as run
    elif command == "sweeps":
        from .sweeps.__main__ import main as run
    elif command == "bench":
        from .bench.__main__ import main as run
    elif command == "serve":
        from .serve.__main__ import main as run
    elif command == "analysis":
        from .analysis.__main__ import main as run
    else:
        print(f"error: unknown command {command!r}; known: {', '.join(COMMANDS)}", file=sys.stderr)
        print(_USAGE, end="", file=sys.stderr)
        return 2
    return run(rest)


if __name__ == "__main__":
    sys.exit(main())
