"""Command-line driver: ``python -m repro.analysis``.

Exit status: 0 when every checker is clean, 1 when findings survive
suppressions (how CI gates on the invariants), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..cli import add_options
from . import Finding, checkers, default_repo_root, run_analysis


def build_parser() -> argparse.ArgumentParser:
    registered = checkers()
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Check the repo's correctness invariants statically: "
        + "; ".join(f"{c.id} ({c.description})" for c in registered),
    )
    add_options(parser, "json")
    parser.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="repository root to analyze (default: this checkout)",
    )
    parser.add_argument(
        "--checker",
        action="append",
        default=None,
        metavar="ID",
        choices=[c.id for c in registered],
        help="run only this checker (repeatable; default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered checkers and exit"
    )
    return parser


def _payload(findings: List[Finding]) -> str:
    payload = {
        "checkers": [
            {"id": c.id, "description": c.description} for c in checkers()
        ],
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for checker in checkers():
            print(f"{checker.id:16} {checker.description}")
        return 0
    root = Path(args.root) if args.root else default_repo_root()
    try:
        findings = run_analysis(repo_root=root, checker_ids=args.checker)
    except (FileNotFoundError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        rendered = _payload(findings)
        if args.json == "-":
            sys.stdout.write(rendered)
        else:
            Path(args.json).write_text(rendered, encoding="utf-8")
    for finding in findings:
        print(finding)
    selected = args.checker or [c.id for c in checkers()]
    if findings:
        print(
            f"{len(findings)} finding(s) from {len(selected)} checker(s) — "
            "fix them or add '# repro: allow[<checker>] <reason>'",
            file=sys.stderr,
        )
        return 1
    print(f"analysis OK: {len(selected)} checker(s), no findings")
    return 0


if __name__ == "__main__":
    sys.exit(main())
