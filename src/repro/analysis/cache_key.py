"""``cache-key``: every influential ``CellSpec`` field is in the result key.

The content-addressed result cache serves a stored
:class:`~repro.sim.SimulationResult` whenever a cell's key matches — so a
``CellSpec`` field that changes simulation output but *not* the key silently
serves stale results.  This checker proves coverage statically:

1. the field list is read from the ``CellSpec`` dataclass in
   ``experiments/cells.py``;
2. the static call closure of ``result_cache_key`` (in
   ``results/__init__.py``) is walked across the whole package — every
   function transitively reachable by name from the key computation;
3. a field is *covered* when the closure reads it as an attribute
   (``cell.engine``, ``cell.seed`` via ``trace_key_for``, ...), and a field
   may instead be *exempted* via the ``RESULT_KEY_EXEMPT_CELL_FIELDS``
   frozenset next to ``result_cache_key`` (``backend``: results are
   backend-invariant by the parity tests).

Anything neither covered nor exempted fails the gate at the field's
declaration line.  Exemptions are themselves audited: an exempt name that
is not a field, or that the key computation actually reads, is stale.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from . import Finding, Project, register

CELLS_PATH = ("experiments", "cells.py")
RESULTS_PATH = ("results", "__init__.py")
EXEMPT_NAME = "RESULT_KEY_EXEMPT_CELL_FIELDS"


def _class_def(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _cellspec_fields(cls: ast.ClassDef) -> List[Tuple[str, int]]:
    """(field name, line) pairs of the dataclass, in declaration order."""
    fields = []
    for node in cls.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            fields.append((node.target.id, node.lineno))
    return fields


def _exempt_fields(tree: ast.Module) -> Tuple[Set[str], int]:
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == EXEMPT_NAME for t in node.targets
            )
        ):
            names = {
                const.value
                for const in ast.walk(node.value)
                if isinstance(const, ast.Constant) and isinstance(const.value, str)
            }
            return names, node.lineno
    return set(), 0


def _function_index(project: Project) -> Dict[str, List[ast.AST]]:
    """Every function/method in the package, keyed by its simple name.

    Name-based resolution over-approximates the true call graph, which is
    the safe direction here: extra functions can only mark extra fields as
    covered, never produce a false "uncovered" finding.
    """
    index: Dict[str, List[ast.AST]] = {}
    for source in project.package_files():
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                index.setdefault(node.name, []).append(node)
    return index


def _closure(root: ast.AST, index: Dict[str, List[ast.AST]]) -> List[ast.AST]:
    """Functions reachable from ``root`` by called names, to a fixpoint."""
    seen: List[ast.AST] = []
    pending = [root]
    while pending:
        fn = pending.pop()
        if any(existing is fn for existing in seen):
            continue
        seen.append(fn)
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name):
                called = node.func.id
            elif isinstance(node.func, ast.Attribute):
                called = node.func.attr
            else:
                continue
            pending.extend(index.get(called, []))
    return seen


@register(
    "cache-key",
    "every CellSpec field is covered by the result-cache key or exempted",
)
def check(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    cells_path = project.package_root.joinpath(*CELLS_PATH)
    results_path = project.package_root.joinpath(*RESULTS_PATH)
    for path in (cells_path, results_path):
        if not path.is_file():
            findings.append(
                Finding(
                    project.relpath(path),
                    1,
                    "cache-key/missing-anchor",
                    f"expected {'/'.join(path.parts[-2:])} to exist (the cache-key "
                    "invariant is anchored on it)",
                )
            )
    if findings:
        return findings

    cells = project.source(cells_path)
    results = project.source(results_path)
    cellspec = _class_def(cells.tree, "CellSpec")
    key_fn = next(
        (
            node
            for node in ast.walk(results.tree)
            if isinstance(node, ast.FunctionDef) and node.name == "result_cache_key"
        ),
        None,
    )
    if cellspec is None:
        findings.append(
            Finding(cells.relpath, 1, "cache-key/missing-anchor", "no CellSpec class")
        )
    if key_fn is None:
        findings.append(
            Finding(
                results.relpath, 1, "cache-key/missing-anchor", "no result_cache_key()"
            )
        )
    if findings:
        return findings

    fields = _cellspec_fields(cellspec)
    field_names = {name for name, _line in fields}
    exempt, exempt_line = _exempt_fields(results.tree)
    closure = _closure(key_fn, _function_index(project))
    covered: Set[str] = set()
    for fn in closure:
        for node in ast.walk(fn):
            if isinstance(node, ast.Attribute) and node.attr in field_names:
                covered.add(node.attr)

    for name, line in fields:
        if name not in covered and name not in exempt:
            findings.append(
                Finding(
                    cells.relpath,
                    line,
                    "cache-key/uncovered-field",
                    f"CellSpec.{name} never reaches result_cache_key()'s call "
                    f"closure and is not in {EXEMPT_NAME}: two cells differing "
                    "only in it would share a cache entry",
                )
            )
    for name in sorted(exempt):
        if name not in field_names:
            findings.append(
                Finding(
                    results.relpath,
                    exempt_line,
                    "cache-key/unknown-exemption",
                    f"{EXEMPT_NAME} lists {name!r}, which is not a CellSpec field",
                )
            )
        elif name in covered:
            findings.append(
                Finding(
                    results.relpath,
                    exempt_line,
                    "cache-key/stale-exemption",
                    f"{EXEMPT_NAME} lists {name!r} but the key computation reads "
                    "it — drop the exemption",
                )
            )
    return findings
