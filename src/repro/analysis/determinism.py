"""``determinism``: no wall-clock, unseeded RNG or set-order dependence.

Reports, cache keys and the parity tests all assume a simulation is a pure
function of (workload spec, system config, seed).  Three AST patterns can
silently break that:

* **wall-clock reads** — ``time.time()``/``strftime``/``datetime.now()``
  and friends produce values that differ run to run; anything derived from
  them (progress stamps excepted, via suppressions) poisons byte-stable
  output;
* **unseeded RNGs** — the module-level ``random.*`` functions, a bare
  ``random.Random()`` and NumPy's global/``default_rng()`` entropy draw
  OS seed material; every RNG in this repo must be constructed from an
  explicit seed;
* **set iteration** — iterating a set literal or ``set(...)`` call feeds
  hash-salted order into whatever consumes the loop.
"""

from __future__ import annotations

import ast
from typing import List, Set

from . import Finding, Project, SourceFile, dotted_name, register

#: Dotted call targets whose results differ between identical runs.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.strftime",
        "time.localtime",
        "time.gmtime",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
    }
)

#: Module-level ``random.*`` functions backed by the global (OS-seeded) RNG.
GLOBAL_RANDOM_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "getrandbits",
        "uniform",
        "gauss",
        "choice",
        "choices",
        "sample",
        "shuffle",
    }
)

#: ``numpy.random`` attributes that draw from global or OS-seeded state.
GLOBAL_NUMPY_RANDOM = frozenset(
    {
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
    }
)


def _bare_name_imports(tree: ast.Module) -> Set[str]:
    """Names imported *from* time/datetime that the banned set covers."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module in ("time", "datetime"):
            for alias in node.names:
                local = alias.asname or alias.name
                if any(banned.endswith(f".{alias.name}") for banned in WALL_CLOCK_CALLS):
                    names.add(local)
    return names


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Set):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _check_file(source: SourceFile) -> List[Finding]:
    findings: List[Finding] = []
    bare_clock_names = _bare_name_imports(source.tree)

    def found(node: ast.AST, rule: str, message: str) -> None:
        findings.append(Finding(source.relpath, node.lineno, f"determinism/{rule}", message))

    for node in ast.walk(source.tree):
        if isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            if dotted is not None:
                leaf = dotted.rsplit(".", 1)[-1]
                if dotted in WALL_CLOCK_CALLS or any(
                    dotted.endswith(f".{banned}") for banned in WALL_CLOCK_CALLS
                ):
                    found(
                        node,
                        "wall-clock",
                        f"{dotted}() is nondeterministic across runs; results, keys "
                        "and reports must be pure functions of the seed",
                    )
                elif dotted.startswith("random.") and leaf in GLOBAL_RANDOM_FNS:
                    found(
                        node,
                        "unseeded-random",
                        f"{dotted}() uses the OS-seeded global RNG; construct "
                        "random.Random(seed) explicitly",
                    )
                elif dotted == "random.Random" and not node.args:
                    found(
                        node,
                        "unseeded-random",
                        "random.Random() without a seed draws OS entropy; pass the "
                        "workload seed",
                    )
                elif (dotted.endswith("random.default_rng") and not node.args) or (
                    dotted.startswith(("np.random.", "numpy.random."))
                    and leaf in GLOBAL_NUMPY_RANDOM
                ):
                    found(
                        node,
                        "unseeded-random",
                        f"{dotted}() draws from unseeded NumPy RNG state; seed it "
                        "explicitly from the workload seed",
                    )
            elif (
                isinstance(node.func, ast.Name) and node.func.id in bare_clock_names
            ):
                found(
                    node,
                    "wall-clock",
                    f"{node.func.id}() (imported from time/datetime) is "
                    "nondeterministic across runs",
                )
        elif isinstance(node, ast.For) and _is_set_expr(node.iter):
            found(
                node,
                "set-iteration",
                "iterating a set has hash-salted order; sort it (or iterate an "
                "ordered container) before anything order-sensitive consumes it",
            )
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for comp in node.generators:
                if _is_set_expr(comp.iter):
                    found(
                        comp.iter,
                        "set-iteration",
                        "comprehension over a set has hash-salted order; sort it "
                        "before anything order-sensitive consumes it",
                    )
    return findings


@register(
    "determinism",
    "no wall-clock reads, unseeded RNGs or set-iteration order under src/repro",
)
def check(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for source in project.package_files():
        findings.extend(_check_file(source))
    return findings
