"""``cli-options``: shared command-line flags live only in ``repro/cli.py``.

The port of ``tools/check_cli_options.py`` (which now shims onto this
module): the shared flag set used to be re-declared across the module CLIs
with drifting defaults and help strings, so any ``add_argument`` call
outside ``cli.py`` that re-declares one of ``SHARED_OPTION_STRINGS`` is a
finding — CLIs pick shared flags with ``repro.cli.add_options`` instead.

The banned strings are read from ``cli.py``'s AST rather than imported, so
the checker needs no importable package and works on fixture trees.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Set, Tuple

from . import Finding, Project, register

CLI_MODULE = "cli.py"
REGISTRY_NAME = "SHARED_OPTION_STRINGS"


def _shared_option_strings(tree: ast.Module) -> Set[str]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == REGISTRY_NAME for t in node.targets
        ):
            return {
                const.value
                for const in ast.walk(node.value)
                if isinstance(const, ast.Constant) and isinstance(const.value, str)
            }
    return set()


def find_duplicates(package_root: Path) -> List[Tuple[Path, int, str]]:
    """(path, line, option) triples for every banned re-declaration.

    The structured result the ``tools/check_cli_options.py`` shim renders;
    the checker wraps the same triples as findings.
    """
    cli_path = package_root / CLI_MODULE
    if not cli_path.is_file():
        return []
    banned = _shared_option_strings(
        ast.parse(cli_path.read_text(encoding="utf-8"), filename=str(cli_path))
    )
    duplicates: List[Tuple[Path, int, str]] = []
    for path in sorted(package_root.rglob("*.py")):
        if path == cli_path or "__pycache__" in path.parts:
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"
            ):
                continue
            for arg in node.args:
                if (
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and arg.value in banned
                ):
                    duplicates.append((path, node.lineno, arg.value))
    return duplicates


@register(
    "cli-options",
    "shared CLI options are declared only in repro/cli.py (use add_options)",
)
def check(project: Project) -> List[Finding]:
    cli_path = project.package_root / CLI_MODULE
    if not cli_path.is_file():
        return [
            Finding(
                project.relpath(cli_path),
                1,
                "cli-options/missing-anchor",
                "expected repro/cli.py (the shared-option registry) to exist",
            )
        ]
    return [
        Finding(
            project.relpath(path),
            line,
            "cli-options/duplicate-option",
            f"{option} re-declared outside repro/cli.py; attach it with "
            "repro.cli.add_options so defaults and help text cannot drift",
        )
        for path, line, option in find_duplicates(project.package_root)
    ]
