"""``lock-discipline``: shared state is only mutated under its lock.

Any class that creates ``self._lock = threading.Lock()`` (or ``RLock``) in
``__init__`` has declared that its instances are shared across threads —
``repro.serve``'s job service, the result cache's traffic counters.  For
those classes, every mutation of an instance attribute outside ``__init__``
must sit lexically inside a ``with self._lock:`` block.

Exemptions, because they are safe by construction:

* attributes initialized to inherently thread-safe objects
  (``queue.Queue``, ``itertools.count``, ``threading.*`` primitives) —
  their own methods synchronize;
* methods whose name ends in ``_locked`` — the repo's convention for
  "caller holds the lock" helpers (the checker cannot see dynamic callers,
  so the convention carries the proof obligation).

Reads are deliberately not flagged: the repo tolerates torn reads of
monotonic counters, and flagging them would drown the real signal (lost
``+= 1`` updates and list/dict races).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from . import Finding, Project, SourceFile, dotted_name, register, walk_with_parents

#: Constructors whose instances synchronize internally.
THREAD_SAFE_TYPES = frozenset(
    {
        "queue.Queue",
        "queue.SimpleQueue",
        "queue.LifoQueue",
        "queue.PriorityQueue",
        "collections.deque",
        "itertools.count",
        "threading.Lock",
        "threading.RLock",
        "threading.Event",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
    }
)

#: Method names that mutate built-in containers in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "popleft",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "sort",
        "reverse",
    }
)


def _self_attr(node: ast.AST) -> Optional[str]:
    """``x`` for ``self.x`` (possibly through a subscript), else None."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _lock_attr(cls_init: ast.FunctionDef) -> Optional[str]:
    """The lock attribute name when ``__init__`` creates one, else None."""
    for node in ast.walk(cls_init):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            dotted = dotted_name(node.value.func)
            if dotted in ("threading.Lock", "threading.RLock"):
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        return attr
    return None


def _guarded_attrs(cls_init: ast.FunctionDef, lock_attr: str) -> Set[str]:
    guarded: Set[str] = set()
    for node in ast.walk(cls_init):
        if not isinstance(node, ast.Assign):
            continue
        thread_safe = (
            isinstance(node.value, ast.Call)
            and dotted_name(node.value.func) in THREAD_SAFE_TYPES
        )
        for target in node.targets:
            attr = _self_attr(target)
            if attr is not None and attr != lock_attr and not thread_safe:
                guarded.add(attr)
    return guarded


def _under_lock(parents, lock_attr: str) -> bool:
    for parent in parents:
        if not isinstance(parent, ast.With):
            continue
        for item in parent.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):  # e.g. a hypothetical self._lock() guard
                expr = expr.func
            if _self_attr(expr) == lock_attr:
                return True
    return False


def _check_class(source: SourceFile, cls: ast.ClassDef) -> List[Finding]:
    init = next(
        (
            member
            for member in cls.body
            if isinstance(member, ast.FunctionDef) and member.name == "__init__"
        ),
        None,
    )
    if init is None:
        return []
    lock_attr = _lock_attr(init)
    if lock_attr is None:
        return []
    guarded = _guarded_attrs(init, lock_attr)
    findings: List[Finding] = []

    def flag(node: ast.AST, method: ast.FunctionDef, attr: str, verb: str) -> None:
        findings.append(
            Finding(
                source.relpath,
                node.lineno,
                "lock-discipline/unlocked-mutation",
                f"{cls.name}.{method.name}() {verb} self.{attr} outside "
                f"'with self.{lock_attr}:' — racing threads can lose or tear "
                "the update (suffix the method with _locked if every caller "
                "already holds the lock)",
            )
        )

    for method in cls.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if method.name == "__init__" or method.name.endswith("_locked"):
            continue
        for node, parents in walk_with_parents(method):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    attr = _self_attr(target)
                    if attr in guarded and not _under_lock(parents, lock_attr):
                        flag(node, method, attr, "assigns")
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr in guarded and not _under_lock(parents, lock_attr):
                        flag(node, method, attr, "deletes from")
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATING_METHODS
            ):
                attr = _self_attr(node.func.value)
                if attr in guarded and not _under_lock(parents, lock_attr):
                    flag(node, method, attr, f"calls .{node.func.attr}() on")
    return findings


@register(
    "lock-discipline",
    "lock-owning classes only mutate shared attributes under the lock",
)
def check(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for source in project.package_files():
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(_check_class(source, node))
    return findings
