"""Repo-specific static analysis: ``python -m repro.analysis``.

Generic linters check style; this package checks the *invariants this
repository's correctness actually rests on* — the properties the test
suite can only sample but an AST walk can prove for every call site:

``determinism``
    nothing under ``src/repro`` reads wall-clock time, an unseeded RNG or
    nondeterministic set iteration order (reports and cache keys must be
    byte-stable across runs);
``cache-key``
    every :class:`~repro.experiments.cells.CellSpec` field that can
    influence a :class:`~repro.sim.SimulationResult` participates in the
    result-cache content key (or is explicitly exempted with a rationale);
``backend-parity``
    every vectorized entry point of the NumPy backend is dispatched under
    the ``_Unsupported`` escape hatch, can actually bail out, falls back to
    the exact Python loops, and is named in the parity tests;
``lock-discipline``
    attributes shared across threads (``repro.serve`` job tables, result
    cache counters) are only mutated while holding the owning lock;
``env-registry``
    every ``REPRO_*`` environment variable is declared once in
    :mod:`repro.envvars` and read only through it;
``cli-options``
    shared command-line options are declared only in :mod:`repro.cli`
    (the former ``tools/check_cli_options.py`` gate);
``facade-docstrings``
    every symbol re-exported by ``repro/__init__.py`` (the stable public
    API) resolves to a documented definition — functions, classes and
    their public methods, modules, and ``#:``-annotated constants.

Checkers are registered with :func:`register` and run with
:func:`run_analysis`, which applies inline suppressions::

    something_nondeterministic()  # repro: allow[determinism] progress print only

A standalone ``# repro: allow[...]`` comment line covers the following
line; ``# repro: allow-file[...]`` covers the whole file.  A suppression
without a reason, or naming an unknown checker, is itself a finding and
suppresses nothing — exceptions to the invariants must be explained.

The CLI (``python -m repro.analysis``) exits non-zero when any finding
survives, which is how CI gates on it; fixture trees under
``tests/analysis_fixtures/`` pin that every checker both fires on seeded
violations and stays silent on their clean twins.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Checker",
    "Finding",
    "Project",
    "checkers",
    "register",
    "run_analysis",
]


@dataclass(frozen=True, order=True)
class Finding:
    """One invariant violation, anchored to a source line.

    Ordered by location so reports are stable; ``code`` is
    ``<checker-id>/<rule>`` (the id in a suppression comment matches the
    part before the slash).
    """

    path: str  #: repo-root-relative posix path
    line: int  #: 1-based line number
    code: str  #: ``<checker-id>/<rule>``
    message: str

    @property
    def checker_id(self) -> str:
        """The registering checker's id (``code`` before the slash)."""
        return self.code.split("/", 1)[0]

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.code}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """The plain-dict form the ``--json`` CLI output serializes."""
        return {
            "path": self.path,
            "line": self.line,
            "code": self.code,
            "message": self.message,
        }


class SourceFile:
    """One parsed python file (text, lines and AST, parsed once)."""

    def __init__(self, path: Path, project: "Project") -> None:
        self.path = path
        self.relpath = project.relpath(path)
        self.text = path.read_text(encoding="utf-8")
        self.lines = self.text.splitlines()
        self.tree = ast.parse(self.text, filename=str(path))


class Project:
    """The tree under analysis: the real repo or a fixture mirroring it.

    Checkers never import the code they inspect — everything is resolved
    from ``repo_root`` by the same ``src/repro`` + ``tests`` layout the
    repository uses, which is what lets the fixture packages under
    ``tests/analysis_fixtures/`` exercise every checker hermetically.
    """

    def __init__(self, repo_root: Path) -> None:
        self.repo_root = Path(repo_root).resolve()
        self.package_root = self.repo_root / "src" / "repro"
        self.tests_root = self.repo_root / "tests"
        self._sources: Dict[Path, SourceFile] = {}

    def relpath(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.repo_root).as_posix()
        except ValueError:
            return path.as_posix()

    def source(self, path: Path) -> SourceFile:
        path = path.resolve()
        cached = self._sources.get(path)
        if cached is None:
            cached = self._sources[path] = SourceFile(path, self)
        return cached

    def package_files(self) -> List[SourceFile]:
        """Every python file under ``src/repro``, stably ordered."""
        return [
            self.source(path)
            for path in sorted(self.package_root.rglob("*.py"))
            if "__pycache__" not in path.parts
        ]


@dataclass(frozen=True)
class Checker:
    """A registered checker: an id, a one-liner, and its entry point."""

    id: str
    description: str
    run: Callable[[Project], List[Finding]]


_CHECKERS: Dict[str, Checker] = {}

#: The built-in checker modules, imported on first use (they import this
#: package back for :func:`register`, so loading is deferred past init).
_BUILTIN_MODULES = (
    "determinism",
    "cache_key",
    "backend_parity",
    "lock_discipline",
    "env_registry",
    "cli_options",
    "facade_docstrings",
)


def register(checker_id: str, description: str):
    """Class/function decorator registering ``fn(project) -> findings``."""

    def decorate(fn: Callable[[Project], List[Finding]]):
        if checker_id in _CHECKERS:
            raise ValueError(f"duplicate checker id {checker_id!r}")
        _CHECKERS[checker_id] = Checker(checker_id, description, fn)
        return fn

    return decorate


def _load_builtins() -> None:
    import importlib

    for name in _BUILTIN_MODULES:
        importlib.import_module(f"{__name__}.{name}")


def checkers() -> Tuple[Checker, ...]:
    """Every registered checker, id-ordered."""
    _load_builtins()
    return tuple(_CHECKERS[key] for key in sorted(_CHECKERS))


# ---------------------------------------------------------------------------
# Suppressions


_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow(?P<scope>-file)?\[(?P<id>[A-Za-z0-9_-]+)\]\s*(?P<reason>.*)$"
)


@dataclass
class _FileSuppressions:
    file_ids: Set[str]
    line_ids: Dict[int, Set[str]]
    findings: List[Finding]

    def allows(self, finding: Finding) -> bool:
        checker_id = finding.checker_id
        if checker_id in self.file_ids:
            return True
        return checker_id in self.line_ids.get(finding.line, set())


def _comment_tokens(source: SourceFile) -> Iterable[Tuple[int, str]]:
    """(line, comment-text) pairs, via tokenize so strings can't fake one."""
    try:
        readline = iter(f"{line}\n" for line in source.lines).__next__
        for token in tokenize.generate_tokens(readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except tokenize.TokenError:
        return


def _file_suppressions(source: SourceFile, known_ids: Set[str]) -> _FileSuppressions:
    supp = _FileSuppressions(set(), {}, [])
    for line, comment in _comment_tokens(source):
        match = _ALLOW_RE.search(comment)
        if match is None:
            continue
        checker_id = match.group("id")
        if not match.group("reason").strip():
            supp.findings.append(
                Finding(
                    source.relpath,
                    line,
                    "suppression/missing-reason",
                    f"allow[{checker_id}] without a reason; "
                    "say why the invariant does not apply here",
                )
            )
            continue
        if checker_id not in known_ids:
            supp.findings.append(
                Finding(
                    source.relpath,
                    line,
                    "suppression/unknown-checker",
                    f"allow[{checker_id}] names no registered checker "
                    f"(known: {', '.join(sorted(known_ids))})",
                )
            )
            continue
        if match.group("scope"):
            supp.file_ids.add(checker_id)
        else:
            supp.line_ids.setdefault(line, set()).add(checker_id)
            # A comment-only line covers the statement on the next line.
            if source.lines[line - 1].lstrip().startswith("#"):
                supp.line_ids.setdefault(line + 1, set()).add(checker_id)
    return supp


# ---------------------------------------------------------------------------
# Shared AST helpers used by several checkers


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, None for anything dynamic."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def walk_with_parents(root: ast.AST) -> Iterable[Tuple[ast.AST, Tuple[ast.AST, ...]]]:
    """Depth-first (node, ancestors) pairs — for lexical-scope questions."""
    stack: List[Tuple[ast.AST, Tuple[ast.AST, ...]]] = [(root, ())]
    while stack:
        node, parents = stack.pop()
        yield node, parents
        child_parents = parents + (node,)
        stack.extend((child, child_parents) for child in ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# Driver


def run_analysis(
    repo_root: "Path | str | None" = None,
    checker_ids: Optional[Sequence[str]] = None,
    project: Optional[Project] = None,
) -> List[Finding]:
    """Run the selected checkers and apply suppressions; sorted findings.

    ``repo_root`` defaults to the repository this package sits in;
    ``project`` overrides it entirely (how the fixture tests point the
    checkers at a seeded tree).
    """
    if project is None:
        root = Path(repo_root) if repo_root is not None else default_repo_root()
        project = Project(root)
    if not project.package_root.is_dir():
        raise FileNotFoundError(
            f"no src/repro package under {project.repo_root} — not a repo root"
        )
    selected = checkers()
    if checker_ids is not None:
        known = {checker.id for checker in selected}
        unknown = sorted(set(checker_ids) - known)
        if unknown:
            raise KeyError(
                f"unknown checker ids {unknown}; known: {', '.join(sorted(known))}"
            )
        selected = tuple(c for c in selected if c.id in set(checker_ids))
    raw: List[Finding] = []
    for checker in selected:
        raw.extend(checker.run(project))
    known_ids = {checker.id for checker in checkers()}
    findings: List[Finding] = []
    for source in project.package_files():
        supp = _file_suppressions(source, known_ids)
        findings.extend(supp.findings)
        by_path = [f for f in raw if f.path == source.relpath]
        findings.extend(f for f in by_path if not supp.allows(f))
        raw = [f for f in raw if f.path != source.relpath]
    findings.extend(raw)  # findings outside src/repro are not suppressible
    return sorted(set(findings))


def default_repo_root() -> Path:
    """The checkout this module was imported from (src-layout assumption)."""
    return Path(__file__).resolve().parents[3]
