"""``facade-docstrings``: the public API surface is fully documented.

The names in ``repro/__init__.py``'s ``__all__`` are the package's stable
public API — what ``import repro`` users and the README's examples see.
This checker resolves each of those names back to its definition (through
re-export chains, without importing anything, so fixture trees work) and
requires a docstring on:

* every re-exported function and class;
* every public method of a re-exported class (helpers starting with ``_``
  and dunders other than the class's own contract are private);
* every re-exported module (``repro.envvars``, ``repro.errors``) — its
  module docstring;
* every re-exported module-level constant — a ``#:`` doc-comment above
  the assignment or a docstring literal directly below it.

Docstring linters usually sample whole packages; scoping the rule to the
facade makes it absolute instead: nothing undocumented can be re-exported,
and a name ``__all__`` promises but the checker cannot resolve is itself a
finding (``unresolved``), so the contract cannot silently rot when a
symbol moves.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Optional, Tuple

from . import Finding, Project, SourceFile, register

CHECKER_ID = "facade-docstrings"

#: Re-export chains longer than this are a layout bug, not an API.
_MAX_HOPS = 8


def _module_path(package_root: Path, current: Path, level: int, module: Optional[str]) -> Optional[Path]:
    """The source file a relative import resolves to (None when absent).

    ``current`` is the importing file; ``level``/``module`` come from the
    ``ast.ImportFrom`` node.  Only relative imports are resolved — the
    facade never re-exports third-party names.
    """
    if level == 0:
        return None
    # Level 1 is the importing file's own package: its directory for a
    # package __init__, its parent for a plain module — the same path.
    base = current.parent
    for _ in range(level - 1):
        base = base.parent
    if module:
        base = base.joinpath(*module.split("."))
    direct = base.with_suffix(".py")
    if direct.is_file():
        return direct
    package = base / "__init__.py"
    if package.is_file():
        return package
    return None


def _doc_comment_above(source: SourceFile, lineno: int) -> bool:
    """True when the line(s) directly above ``lineno`` are ``#:`` comments."""
    index = lineno - 2  # 0-based line above the assignment
    return index >= 0 and source.lines[index].lstrip().startswith("#:")


def _docstring_below(body: List[ast.stmt], index: int) -> bool:
    """True when the statement after ``body[index]`` is a string literal."""
    if index + 1 >= len(body):
        return False
    nxt = body[index + 1]
    return (
        isinstance(nxt, ast.Expr)
        and isinstance(nxt.value, ast.Constant)
        and isinstance(nxt.value.value, str)
    )


def _find_definition(
    project: Project, source: SourceFile, name: str, hops: int = 0
) -> Tuple[Optional[SourceFile], Optional[ast.stmt]]:
    """The (file, node) defining ``name``, following re-export chains.

    The node is a Function/Class/Assign statement, or None with the file
    set when ``name`` is a module re-export; (None, None) when unresolved.
    """
    if hops > _MAX_HOPS:
        return None, None
    body = source.tree.body
    for index, node in enumerate(body):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node.name == name:
                return source, node
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return source, node
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id == name:
                return source, node
    for node in body:
        if not isinstance(node, ast.ImportFrom):
            continue
        for alias in node.names:
            if (alias.asname or alias.name) != name:
                continue
            if node.module is None:
                # ``from . import envvars`` — the name is a module.
                target = _module_path(
                    project.package_root, source.path, node.level, alias.name
                )
                return (project.source(target), None) if target else (None, None)
            target = _module_path(
                project.package_root, source.path, node.level, node.module
            )
            if target is None:
                return None, None
            return _find_definition(project, project.source(target), alias.name, hops + 1)
    return None, None


def _facade_all(tree: ast.Module) -> List[Tuple[str, int]]:
    """(name, facade-line) pairs from the facade's ``__all__`` list."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            return [
                (const.value, const.lineno)
                for const in ast.walk(node.value)
                if isinstance(const, ast.Constant) and isinstance(const.value, str)
            ]
    return []


def _check_class(source: SourceFile, node: ast.ClassDef, findings: List[Finding]) -> None:
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if item.name.startswith("_"):
            continue
        if ast.get_docstring(item) is None:
            findings.append(
                Finding(
                    source.relpath,
                    item.lineno,
                    f"{CHECKER_ID}/missing",
                    f"public method {node.name}.{item.name} of a re-exported "
                    "class has no docstring",
                )
            )


@register(
    CHECKER_ID,
    "every symbol re-exported by repro/__init__.py resolves to a documented definition",
)
def check(project: Project) -> List[Finding]:
    facade_path = project.package_root / "__init__.py"
    if not facade_path.is_file():
        return [
            Finding(
                project.relpath(facade_path),
                1,
                f"{CHECKER_ID}/missing-anchor",
                "expected repro/__init__.py (the public facade) to exist",
            )
        ]
    facade = project.source(facade_path)
    findings: List[Finding] = []
    if ast.get_docstring(facade.tree) is None:
        findings.append(
            Finding(
                facade.relpath,
                1,
                f"{CHECKER_ID}/missing",
                "the facade module itself has no docstring",
            )
        )
    for name, facade_line in _facade_all(facade.tree):
        if name.startswith("__") and name.endswith("__"):
            continue  # dunder metadata such as __version__
        source, node = _find_definition(project, facade, name)
        if source is None:
            findings.append(
                Finding(
                    facade.relpath,
                    facade_line,
                    f"{CHECKER_ID}/unresolved",
                    f"__all__ re-exports {name!r} but its definition cannot "
                    "be resolved from the facade's imports",
                )
            )
            continue
        if node is None:  # a re-exported module
            if ast.get_docstring(source.tree) is None:
                findings.append(
                    Finding(
                        source.relpath,
                        1,
                        f"{CHECKER_ID}/missing",
                        f"re-exported module {name!r} has no module docstring",
                    )
                )
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if ast.get_docstring(node) is None:
                findings.append(
                    Finding(
                        source.relpath,
                        node.lineno,
                        f"{CHECKER_ID}/missing",
                        f"re-exported {name!r} has no docstring",
                    )
                )
            if isinstance(node, ast.ClassDef):
                _check_class(source, node, findings)
            continue
        # A module-level constant: needs a #: doc-comment or a docstring
        # literal attached to the assignment.
        body = source.tree.body
        index = body.index(node)
        if not _doc_comment_above(source, node.lineno) and not _docstring_below(body, index):
            findings.append(
                Finding(
                    source.relpath,
                    node.lineno,
                    f"{CHECKER_ID}/missing",
                    f"re-exported constant {name!r} has neither a '#:' "
                    "doc-comment nor a docstring literal",
                )
            )
    return findings
