"""``env-registry``: ``REPRO_*`` variables exist only via :mod:`repro.envvars`.

The registry module declares every environment variable once (name,
default, description) and is what ``--help`` epilogs and the README
render; this checker is what stops the code from drifting past it:

* ``raw-read`` — an ``os.environ`` / ``os.getenv`` access anywhere under
  ``src/repro`` except ``envvars.py`` itself (call sites must go through
  ``EnvVar.read()``, which also canonicalizes the "blank means unset"
  semantics);
* ``literal-name`` — a string literal spelling a ``REPRO_*`` name outside
  ``envvars.py`` (use ``envvars.<VAR>.name``, so a rename cannot miss a
  site; this also catches reads of variables that were never declared).

Prose mentioning a variable inside a longer docstring sentence does not
trip the literal scan — only a constant that *is exactly* a ``REPRO_*``
name, i.e. something the code could pass to a raw environ lookup.
"""

from __future__ import annotations

import ast
import re
from typing import List, Set

from . import Finding, Project, dotted_name, register

ENV_MODULE = "envvars.py"
_NAME_RE = re.compile(r"REPRO_[A-Z0-9_]+\Z")


def _declared_names(project: Project) -> Set[str]:
    path = project.package_root / ENV_MODULE
    if not path.is_file():
        return set()
    names: Set[str] = set()
    for node in ast.walk(project.source(path).tree):
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and _NAME_RE.match(node.value)
        ):
            names.add(node.value)
    return names


@register(
    "env-registry",
    "every REPRO_* environment variable is declared in and read via repro.envvars",
)
def check(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    registry_path = project.package_root / ENV_MODULE
    if not registry_path.is_file():
        findings.append(
            Finding(
                project.relpath(registry_path),
                1,
                "env-registry/missing-anchor",
                "expected the repro/envvars.py registry module to exist",
            )
        )
        return findings
    declared = _declared_names(project)
    for source in project.package_files():
        if source.path == registry_path.resolve():
            continue
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Attribute):
                dotted = dotted_name(node)
                if dotted in ("os.environ", "os.getenv", "os.putenv"):
                    findings.append(
                        Finding(
                            source.relpath,
                            node.lineno,
                            "env-registry/raw-read",
                            f"{dotted} accessed outside repro/envvars.py; declare "
                            "the variable there and use EnvVar.read()",
                        )
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "os":
                for alias in node.names:
                    if alias.name in ("environ", "getenv"):
                        findings.append(
                            Finding(
                                source.relpath,
                                node.lineno,
                                "env-registry/raw-read",
                                f"'from os import {alias.name}' outside "
                                "repro/envvars.py; use the registry instead",
                            )
                        )
            elif (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and _NAME_RE.match(node.value)
            ):
                hint = (
                    "spell it via the registry (envvars.<VAR>.name)"
                    if node.value in declared
                    else "it is not declared in repro/envvars.py at all"
                )
                findings.append(
                    Finding(
                        source.relpath,
                        node.lineno,
                        "env-registry/literal-name",
                        f"string literal {node.value!r} outside repro/envvars.py; "
                        f"{hint}",
                    )
                )
    return findings
