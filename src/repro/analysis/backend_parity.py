"""``backend-parity``: the NumPy backend always has an exact escape hatch.

The vectorized backend is only correct because every closed-form loop can
refuse configurations outside its assumptions (``raise _Unsupported``) and
fall back to the reference Python loops, and because the parity tests pin
byte-identical reports per engine.  Four statically checkable clauses:

* every ``_run_<engine>`` dispatch inside ``NumPyBackend.run`` happens
  under a ``try`` whose handler catches ``_Unsupported``
  (``unguarded-dispatch``);
* ``run`` actually falls back — it calls ``self._python.run(...)``
  (``no-fallback``);
* each ``_run_<engine>`` entry point can *reach* a ``raise _Unsupported``
  through the module's call/instantiation graph — an entry that can never
  bail out has silently dropped its guard rails (``no-bailout``);
* each engine token appears in ``tests/test_backends.py``, so the parity
  suite exercises it (``untested-engine``).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional

from . import Finding, Project, dotted_name, register, walk_with_parents

BACKEND_PATH = ("sim", "backends", "numpy_backend.py")
TESTS_FILE = "test_backends.py"
EXCEPTION_NAME = "_Unsupported"

#: Engine-token aliases: the registry names the no-prefetch engine "none",
#: while its vectorized loop is ``_run_baseline``.
TOKEN_ALIASES = {"baseline": ("baseline", "none")}


def _catches_unsupported(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True  # bare except catches _Unsupported too
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    for node in types:
        dotted = dotted_name(node)
        if dotted is not None and dotted.split(".")[-1] == EXCEPTION_NAME:
            return True
    return False


def _raises_unsupported(fn: ast.AST) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc
            target = exc.func if isinstance(exc, ast.Call) else exc
            dotted = dotted_name(target)
            if dotted is not None and dotted.split(".")[-1] == EXCEPTION_NAME:
                return True
    return False


def _reaches_unsupported(
    entry: ast.AST,
    functions: Dict[str, ast.AST],
    classes: Dict[str, ast.ClassDef],
    methods: Dict[str, List[ast.AST]],
) -> bool:
    """Can ``entry`` reach a ``raise _Unsupported`` through module code?

    Resolution is by simple name: calls to module functions, instantiations
    of module classes (which pull in every method — ``_run_baseline`` bails
    out inside ``_LaneArrays.__init__``), and attribute calls matching any
    module method name.
    """
    seen: List[ast.AST] = []
    pending: List[ast.AST] = [entry]
    while pending:
        fn = pending.pop()
        if any(existing is fn for existing in seen):
            continue
        seen.append(fn)
        if _raises_unsupported(fn):
            return True
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name):
                name = node.func.id
                if name in functions:
                    pending.append(functions[name])
                if name in classes:
                    pending.extend(
                        member
                        for member in classes[name].body
                        if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
                    )
            elif isinstance(node.func, ast.Attribute):
                pending.extend(methods.get(node.func.attr, []))
    return False


@register(
    "backend-parity",
    "every vectorized entry point is guarded, can bail out, and is parity-tested",
)
def check(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    backend_path = project.package_root.joinpath(*BACKEND_PATH)
    if not backend_path.is_file():
        return [
            Finding(
                project.relpath(backend_path),
                1,
                "backend-parity/missing-anchor",
                "expected sim/backends/numpy_backend.py to exist",
            )
        ]
    source = project.source(backend_path)

    functions: Dict[str, ast.AST] = {}
    classes: Dict[str, ast.ClassDef] = {}
    methods: Dict[str, List[ast.AST]] = {}
    for node in source.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[node.name] = node
        elif isinstance(node, ast.ClassDef):
            classes[node.name] = node
            for member in node.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.setdefault(member.name, []).append(member)

    backend_cls = classes.get("NumPyBackend")
    run_fn: Optional[ast.FunctionDef] = None
    if backend_cls is not None:
        run_fn = next(
            (
                member
                for member in backend_cls.body
                if isinstance(member, ast.FunctionDef) and member.name == "run"
            ),
            None,
        )
    if run_fn is None:
        return [
            Finding(
                source.relpath,
                backend_cls.lineno if backend_cls is not None else 1,
                "backend-parity/missing-anchor",
                "no NumPyBackend.run() method to anchor the parity invariants on",
            )
        ]

    # Clause 1+2: dispatches guarded, exact fallback present.
    entry_calls: Dict[str, ast.Call] = {}
    has_fallback = False
    for node, parents in walk_with_parents(run_fn):
        if not isinstance(node, ast.Call):
            continue
        dotted = dotted_name(node.func)
        name = dotted.split(".")[-1] if dotted else None
        if dotted is not None and dotted.endswith("._python.run"):
            has_fallback = True
            continue
        if name is None or not name.startswith("_run_"):
            continue
        entry_calls.setdefault(name, node)
        guarded = any(
            isinstance(parent, ast.Try)
            and any(_catches_unsupported(handler) for handler in parent.handlers)
            for parent in parents
        )
        if not guarded:
            findings.append(
                Finding(
                    source.relpath,
                    node.lineno,
                    "backend-parity/unguarded-dispatch",
                    f"{name}() is dispatched outside a try/except {EXCEPTION_NAME}: "
                    "an unsupported configuration would crash instead of falling "
                    "back to the exact Python loops",
                )
            )
    if not has_fallback:
        findings.append(
            Finding(
                source.relpath,
                run_fn.lineno,
                "backend-parity/no-fallback",
                "NumPyBackend.run() never calls self._python.run(...): there is "
                "no exact fallback for unsupported configurations",
            )
        )

    # Clause 3+4 per entry point.
    tests_path = project.tests_root / TESTS_FILE
    tests_text = tests_path.read_text(encoding="utf-8") if tests_path.is_file() else None
    if tests_text is None:
        findings.append(
            Finding(
                project.relpath(tests_path),
                1,
                "backend-parity/missing-anchor",
                f"expected tests/{TESTS_FILE} (the parity suite) to exist",
            )
        )
    for name in sorted(entry_calls):
        entry = functions.get(name)
        entry_line = entry.lineno if entry is not None else entry_calls[name].lineno
        if entry is not None and not _reaches_unsupported(
            entry, functions, classes, methods
        ):
            findings.append(
                Finding(
                    source.relpath,
                    entry_line,
                    "backend-parity/no-bailout",
                    f"{name}() can never raise {EXCEPTION_NAME}: the vectorized "
                    "loop has lost its escape hatch for configurations outside "
                    "its closed form",
                )
            )
        if tests_text is not None:
            token = name[len("_run_") :]
            accepted = TOKEN_ALIASES.get(token, (token,))
            if not any(
                re.search(rf"\b{re.escape(alias)}\b", tests_text) for alias in accepted
            ):
                findings.append(
                    Finding(
                        source.relpath,
                        entry_line,
                        "backend-parity/untested-engine",
                        f"engine token {token!r} (from {name}) appears nowhere in "
                        f"tests/{TESTS_FILE}: the parity suite does not pin this "
                        "engine's byte-identical fallback",
                    )
                )
    return findings
