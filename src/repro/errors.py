"""Exception types used across the SHIFT reproduction library."""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of range."""


class TraceError(ReproError):
    """A trace is malformed or used incorrectly."""


class SimulationError(ReproError):
    """The simulation engine was driven into an invalid state."""


class PrefetcherError(ReproError):
    """A prefetcher component was misconfigured or misused."""


class StorageError(ReproError):
    """History-buffer / index-table storage invariants were violated."""


class BackendError(ReproError):
    """A simulation backend is unknown or unavailable in this environment."""
