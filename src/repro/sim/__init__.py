"""Trace-driven simulation of the L1-I hierarchy and fetch prefetchers.

The subsystem has three layers:

* :mod:`repro.sim.cache` — a set-associative, LRU L1-I model plus the small
  FIFO prefetch buffer that stands in for PIF/SHIFT stream storage.
* :mod:`repro.sim.prefetchers` — the engines compared in the paper:
  no-prefetch, next-line, per-core PIF, and shared (optionally virtualized)
  SHIFT, built from spatial-region compaction, a circular history buffer, an
  index table and per-core stream buffers.
* :mod:`repro.sim.engine` / :mod:`repro.sim.timing` — the round-robin
  multi-core simulation loop and the stall-exposure timing model that turns
  per-core miss counts into IPC.
"""

from .backends import (
    Backend,
    available_backends,
    backend_names,
    get_backend,
    resolve_backend_name,
)
from .cache import PrefetchBuffer, SetAssociativeCache
from .engine import CoreResult, SimulationEngine, SimulationResult, simulate
from .llc import LLCStats, SharedLLC
from .prefetchers import (
    ConsolidatedSHIFTPrefetcher,
    HistoryBuffer,
    IndexTable,
    NextLinePrefetcher,
    NullPrefetcher,
    PIFPrefetcher,
    Prefetcher,
    SHIFTPrefetcher,
    SpatialCompactor,
    make_prefetcher,
)
from .timing import CoreTiming, aggregate_ipc, core_timing, system_timing, weighted_speedup

__all__ = [
    "Backend",
    "available_backends",
    "backend_names",
    "get_backend",
    "resolve_backend_name",
    "SetAssociativeCache",
    "PrefetchBuffer",
    "SharedLLC",
    "LLCStats",
    "Prefetcher",
    "NullPrefetcher",
    "NextLinePrefetcher",
    "PIFPrefetcher",
    "SHIFTPrefetcher",
    "ConsolidatedSHIFTPrefetcher",
    "SpatialCompactor",
    "HistoryBuffer",
    "IndexTable",
    "make_prefetcher",
    "SimulationEngine",
    "SimulationResult",
    "CoreResult",
    "simulate",
    "CoreTiming",
    "core_timing",
    "system_timing",
    "aggregate_ipc",
    "weighted_speedup",
]
