"""Stall-exposure timing model.

The paper's timing results come from cycle-accurate simulation; this model
uses the first-order approximation that drives them: a core retires at
``base_ipc`` until an uncovered instruction-fetch miss stalls the front end,
and ``stall_exposure`` of the miss latency reaches retirement (wider cores
hide more of it in the instruction window — Table I / Section 2.3).

With the shared LLC modelled (:mod:`repro.sim.llc`), every demand L1-I miss
is classified: an LLC hit costs the NoC round trip plus an LLC bank access
(:meth:`~repro.config.SystemConfig.llc_demand_latency_cycles`), a memory
miss additionally pays the off-chip access
(:meth:`~repro.config.SystemConfig.memory_demand_latency_cycles`).  Results
from runs without an LLC model (the frozen PR-1 reference) carry no
classification and are charged uniformly at LLC latency — PR-1's demand
charging.  (PR-1's *history* charge is not preserved: it billed half an
LLC bank access per history-block read; a real read of a pinned block
costs a full one.)

For virtualized SHIFT, history records are *real* LLC reads of the pinned
history blocks (one bank access per 64-byte block of 12 records); each read
delays the stream's prefetches by an LLC bank access, which is what
:func:`core_timing` charges per ``history_block_reads``.  The NoC hop to
the bank overlaps with stream consumption and is not charged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import CoreConfig, SystemConfig
from ..errors import SimulationError
from .engine import CoreResult, SimulationResult


@dataclass(frozen=True)
class CoreTiming:
    """Timing summary for one core."""

    core_id: int
    instructions: int
    cycles: float
    base_cycles: float
    stall_cycles: float

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


def core_timing(
    result: CoreResult,
    system: SystemConfig,
    core: Optional[CoreConfig] = None,
) -> CoreTiming:
    """Timing for one core of one simulation run."""
    core_config = core if core is not None else system.core
    if result.instructions <= 0:
        raise SimulationError("core retired no instructions; cannot compute timing")
    base_cycles = result.instructions / core_config.base_ipc
    miss_latency = system.llc_demand_latency_cycles()
    memory_latency = system.memory_demand_latency_cycles()
    # Unclassified misses (no LLC model in the run) charge LLC latency,
    # reproducing the pre-LLC timing for legacy results.
    memory_misses = result.memory_misses
    llc_served = result.misses - memory_misses
    stall_cycles = core_config.stall_exposure * (
        llc_served * miss_latency
        + memory_misses * memory_latency
        + result.late_hits * 0.5 * miss_latency
        + result.history_block_reads * system.llc.hit_latency_cycles
    )
    return CoreTiming(
        core_id=result.core_id,
        instructions=result.instructions,
        cycles=base_cycles + stall_cycles,
        base_cycles=base_cycles,
        stall_cycles=stall_cycles,
    )


def system_timing(
    result: SimulationResult,
    system: Optional[SystemConfig] = None,
) -> List[CoreTiming]:
    """Per-core timing for a whole simulation run."""
    sys_config = system if system is not None else result.system
    return [core_timing(core_result, sys_config) for core_result in result.cores]


def aggregate_ipc(timings: List[CoreTiming]) -> float:
    """Aggregate IPC: total instructions over the slowest core's cycles."""
    if not timings:
        raise SimulationError("no core timings to aggregate")
    makespan = max(t.cycles for t in timings)
    if makespan <= 0:
        raise SimulationError("non-positive makespan")
    return sum(t.instructions for t in timings) / makespan


def weighted_speedup(
    result: SimulationResult,
    baseline: SimulationResult,
    system: Optional[SystemConfig] = None,
) -> float:
    """Mean per-core IPC ratio versus the no-prefetch baseline."""
    sys_config = system if system is not None else result.system
    base_by_core: Dict[int, CoreTiming] = {
        t.core_id: t for t in system_timing(baseline, sys_config)
    }
    ratios = []
    for timing in system_timing(result, sys_config):
        base = base_by_core.get(timing.core_id)
        if base is None:
            raise SimulationError(f"baseline lacks core {timing.core_id}")
        ratios.append(timing.ipc / base.ipc)
    return sum(ratios) / len(ratios)


__all__ = [
    "CoreTiming",
    "core_timing",
    "system_timing",
    "aggregate_ipc",
    "weighted_speedup",
]
