"""The :class:`Backend` interface and the backend registry.

A backend is an execution strategy for the per-run simulation kernel: it
receives the prepared lanes (one per core: trace, L1-I, prefetch buffer,
stats), the per-core in-flight windows, the prefetcher and the optional
shared LLC, and must leave every one of those objects in *exactly* the state
the reference round-robin loop would — backends are allowed to reorder and
batch work only where the reordering is provably unobservable.  Reports are
therefore byte-identical across backends; the parity tests in
``tests/test_backends.py`` enforce this for every engine family.

Selection precedence, implemented by :func:`resolve_backend_name`:

1. an explicit argument (``--backend`` on the CLIs, ``backend=`` in the
   library API);
2. the ``REPRO_BACKEND`` environment variable;
3. the ``python`` default.

Backends with unmet dependencies (``numpy`` without NumPy installed) are
registered but unavailable; requesting one raises :class:`BackendError`
with the reason instead of failing deep inside a run.
"""

from __future__ import annotations

import abc
import importlib.util
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ... import envvars
from ...config import DEFAULT_BACKEND
from ...errors import BackendError

if TYPE_CHECKING:
    from .._fastpath import Lane
    from ..llc import SharedLLC
    from ..prefetchers import Prefetcher


class Backend(abc.ABC):
    """One execution strategy for the simulation kernel."""

    #: Registry name; also what ``--backend`` / ``REPRO_BACKEND`` match.
    name: str = ""

    @abc.abstractmethod
    def run(
        self,
        lanes: "List[Lane]",
        inflight: Dict[int, int],
        prefetcher: "Prefetcher",
        llc: "SharedLLC | None" = None,
    ) -> None:
        """Simulate every lane, mutating stats/buffers/prefetcher/LLC in place.

        Must be observationally identical to
        :meth:`repro.sim.engine.SimulationEngine._run_round_robin`: all
        :class:`~repro.sim.engine.CoreResult` counters, the prefetch-buffer
        contents, the prefetcher's mutable state and the LLC statistics end
        up exactly as the reference loop leaves them.
        """

    def prewarm(self, traces, l1_config) -> None:
        """Precompute trace-pure artifacts for an upcoming :meth:`run`.

        The chunked engine calls this on a helper thread with the *next*
        chunk's trace windows while the current chunk replays, overlapping
        whatever per-trace precomputation the backend can do from the trace
        alone (no cache/buffer/prefetcher state is available — that state
        does not exist yet).  Implementations must be thread-safe and must
        not mutate any run object; the default does nothing.
        """

    def prewarm_pending(self, traces, l1_config) -> bool:
        """Whether :meth:`prewarm` has any work left for these windows.

        A cheap main-thread probe the chunked engine uses to skip spawning
        the helper thread entirely once the backend's memos are warm (the
        steady state of repeated runs).  The default matches the default
        no-op :meth:`prewarm`: never any work.
        """
        return False


#: name -> (factory, availability probe).  The probe keeps optional-dependency
#: backends listed (for error messages and CLI help) without importing them.
_REGISTRY: Dict[str, Tuple[Callable[[], Backend], Callable[[], Optional[str]]]] = {}

#: Instantiated backends are stateless; cache one instance per name.
_INSTANCES: Dict[str, Backend] = {}


def register_backend(
    name: str,
    factory: Callable[[], Backend],
    unavailable_reason: Callable[[], Optional[str]] = lambda: None,
) -> None:
    """Register a backend factory under ``name``.

    ``unavailable_reason`` returns None when the backend can be built here,
    or a human-readable reason (e.g. a missing dependency) otherwise.
    """
    _REGISTRY[name] = (factory, unavailable_reason)


def backend_names() -> Tuple[str, ...]:
    """Every registered backend name, available or not."""
    return tuple(_REGISTRY)


def available_backends() -> Tuple[str, ...]:
    """Names of the backends that can actually run in this environment."""
    return tuple(name for name, (_, reason) in _REGISTRY.items() if reason() is None)


def resolve_backend_name(explicit: Optional[str] = None) -> str:
    """The effective backend name: explicit arg > ``REPRO_BACKEND`` > default."""
    if explicit:
        return explicit
    env = envvars.BACKEND.read()
    return env if env else DEFAULT_BACKEND


def get_backend(backend: "str | Backend | None" = None) -> Backend:
    """Resolve ``backend`` (a name, instance, or None) to a Backend instance."""
    if isinstance(backend, Backend):
        return backend
    name = resolve_backend_name(backend)
    cached = _INSTANCES.get(name)
    if cached is not None:
        return cached
    entry = _REGISTRY.get(name)
    if entry is None:
        raise BackendError(
            f"unknown backend {name!r}; known: {', '.join(backend_names())}"
        )
    factory, reason = entry
    why = reason()
    if why is not None:
        raise BackendError(f"backend {name!r} is unavailable: {why}")
    instance = factory()
    _INSTANCES[name] = instance
    return instance


def _missing_module_reason(module: str) -> Callable[[], Optional[str]]:
    """An availability probe requiring ``module`` to be importable."""

    def probe() -> Optional[str]:
        if importlib.util.find_spec(module) is None:
            return f"requires the {module!r} package, which is not installed"
        return None

    return probe


__all__ = [
    "Backend",
    "register_backend",
    "backend_names",
    "available_backends",
    "resolve_backend_name",
    "get_backend",
]
