"""The pure-Python backend: the specialized loops of :mod:`repro.sim._fastpath`.

This backend is the reference implementation every other backend is pinned
against.  It dispatches on the exact prefetcher type — subclasses may
override ``on_access`` and must fall through to the per-core or round-robin
generic loops — and otherwise runs the inlined per-family loops that
PR 2/3 tuned.
"""

from __future__ import annotations

from typing import Dict

from .. import _fastpath
from ..prefetchers import (
    ConsolidatedSHIFTPrefetcher,
    NextLinePrefetcher,
    NullPrefetcher,
    PIFPrefetcher,
    Prefetcher,
    SHIFTPrefetcher,
)
from .base import Backend


class PythonBackend(Backend):
    """Per-family inlined CPython loops (the PR-2/3 fast paths)."""

    name = "python"

    def run(self, lanes, inflight: Dict[int, int], prefetcher, llc=None) -> None:
        ptype = type(prefetcher)
        if ptype is NullPrefetcher or ptype is Prefetcher:
            _fastpath.run_baseline(lanes, llc)
        elif ptype is NextLinePrefetcher:
            _fastpath.run_next_line(lanes, inflight, prefetcher._degree, llc)
        elif ptype is PIFPrefetcher:
            _fastpath.run_stream_per_core(lanes, inflight, prefetcher, llc)
        elif ptype is SHIFTPrefetcher or ptype is ConsolidatedSHIFTPrefetcher:
            _fastpath.run_stream_shared(lanes, inflight, prefetcher, llc)
        elif not getattr(prefetcher, "shares_state", True):
            _fastpath.run_per_core_generic(lanes, inflight, prefetcher, llc)
        else:
            # The generic loop lives on the engine because it *defines* the
            # round-robin semantics; imported lazily to avoid the module
            # cycle (engine imports backends at load time).
            from ..engine import SimulationEngine

            SimulationEngine._run_round_robin(lanes, inflight, prefetcher, llc)


__all__ = ["PythonBackend"]
