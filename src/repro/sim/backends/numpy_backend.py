"""NumPy-vectorized simulation backend.

The key structural facts this backend exploits, each of which preserves
*exact* equality with the Python reference loops:

* **L1-I evolution is engine-independent.**  Every engine family handles a
  demand access the same way: LRU-touch on a hit, fill-at-MRU otherwise
  (prefetched blocks are promoted into the cache on first use).  The hit/miss
  outcome of every access is therefore a pure function of the address stream,
  and for the 2-way L1-I of Table I it has a closed form — a set's content
  after any access is ``{last address, last differing address}`` — that
  vectorizes as grouped shift/forward-fill passes (:func:`_lane_arrays`).
* **Spatial compaction is trace-pure.**  The PIF compactor's record stream
  depends only on the addresses, so region boundaries are found by a
  vectorized fixpoint (:func:`_compactor_records`) and the region masks by
  one ``bitwise_or.reduceat`` pass.
* **The next-line buffer decouples per block.**  While the FIFO prefetch
  buffer never overflows (true for every suite workload), each block
  address evolves independently: it is inserted by the first eligible
  prefetch since its last consumption and removed by the next non-hit
  access to it.  That turns the whole engine into sorted-array passes
  over all lanes at once (:func:`_solve_next_line`).  The occupancy
  timeline is reconstructed and checked afterwards; a run that *would*
  overflow is discarded untouched and re-executed through the Python
  loops.
* **LLC outcomes factor per set.**  The shared LLC's round-robin access
  order only matters within a set, and a set holding no more distinct
  blocks than it has ways can never evict, so its outcomes reduce to
  first-occurrence detection — fully vectorized, including the final MRU
  stacks.  Only events mapping to *contended* sets (and any run with
  pinned history blocks) replay through an exact per-event LRU pass
  (:func:`_replay_llc`).  Classification and bank counters are order-free
  aggregations either way.

What stays per-event: PIF's stream machinery (index lookups, stream
dispatch and the per-block owner/buffer bookkeeping) is feedback-coupled
through the prefetch buffer, so it runs as an event loop over the non-hit
accesses — but on top of the precomputed hit flags, record stream and L1
contents, which removes the per-access cache and compactor work.

* **SHIFT's shared history splits into epochs.**  Only the trainer lane
  ever writes the shared history, and the compactor feed is trace-pure,
  so the append *schedule* (which round-robin steps append which record)
  is precomputed once per group.  Between appends the history is frozen —
  an epoch — so each consumer lane's replay depends on the other lanes
  only through that schedule, and the round-robin collapses into
  independent per-lane event loops (:func:`_shift_lane_solve`): a lane's
  view of the history at step ``t`` is exactly the appends whose
  visibility step (the trainer's append step, plus one for lanes that
  precede the trainer in round-robin order) has been reached.  SHIFT's
  index capacity equals its history capacity, so ``IndexTable.get``
  reduces to the last *visible* append position per trigger plus the
  history validity-window check (an evicted index entry is always stale
  under that window).  LLC events are re-merged in the exact round-robin
  order by :func:`_replay_llc`.

* **Warm state is a prologue, not a special case.**  The chunked engine
  (:meth:`~repro.sim.engine.SimulationEngine._run_chunked`) resumes every
  chunk after the first from restored checkpoint state.  Each closed form
  above extends to that warm start exactly: the 2-way L1 forward fill is
  seeded by treating each set's restored ``{MRU, LRU}`` pair as virtual
  accesses before the window (:class:`_WarmLaneArrays`); blocks already in
  a prefetch buffer enter the next-line timeline as pseudo-producers
  ordered before every real event; the PIF event loop reads its live
  compactor/history/stream state; and the SHIFT epoch solver treats the
  restored history ring and index as epoch 0's visible prefix (the
  restored ``next_pos`` becomes the append-position base).  Final L1
  contents are materialized back into the lane caches
  (:func:`_write_l1_state`) so the next checkpoint sees them, and the LLC
  replay seeds first-occurrence detection with the restored per-set
  residents.

Because every one of these computations is a deterministic pure function
of (trace, geometry, engine configuration, starting state), the backend
memoizes them across runs keyed by the trace's *content fingerprint*
(carried by the columnar :class:`~repro.workloads.trace.CoreTrace` IR and
persisted in the trace cache's sidecar), extended for warm runs with the
*state digests* of the restored L1/buffer/prefetcher state
(:func:`~repro.sim.cache.digest_state`): the per-lane arrays and
containment tables are shared by all four engine families of an
experiment row, and the solved next-line timelines and PIF/SHIFT lane
solutions are replayed onto each run's objects whenever trace and
digests match.  Content keys mean the memos stay warm across *object*
boundaries too — a sweep that reloads the same entry from the
memory-mapped cache, or regenerates an identical trace, hits directly,
where the previous ``id(addresses)`` scheme (and the strong-reference
tuples it needed to guard against id reuse) could not.  Per-run
parameters — the in-flight window, buffer capacity, the LLC itself — are
applied after the cached pure core, so results are identical whether a
run hits or misses.  Every memo is a bounded LRU: chunked runs mint one
``<parent>:<start>:<stop>`` fingerprint per window, so an unbounded memo
would grow linearly in stream length (``REPRO_NUMPY_MEMO_MAX`` overrides
every cap at once, see :mod:`repro.envvars`).

Fallbacks (always exact, never approximate): custom prefetchers serialize
on their ``on_access`` hook, so they run through the Python backend, as
does any lane with an L1 associativity other than 1 or 2, negative block
addresses, a next-line run whose buffer would overflow, a spatial region
wider than the int64 masks, or a SHIFT group whose index and history
capacities differ.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from ... import envvars
from ...errors import ConfigurationError
from ...workloads.trace import column_fingerprint
from .._fastpath import resolve_stream_roles
from ..prefetchers import (
    ConsolidatedSHIFTPrefetcher,
    NextLinePrefetcher,
    NullPrefetcher,
    PIFPrefetcher,
    Prefetcher,
    SHIFTPrefetcher,
    _expand_offsets,
    _Stream,
)
from .base import Backend
from .python_backend import PythonBackend

#: Boundary-fixpoint iteration cap; the exact Python scan takes over beyond
#: it (each iteration resolves one more missed boundary per segment, so only
#: adversarial traces — long gently-sloping runs — get anywhere near this).
_MAX_FIXPOINT_ITERS = 64


class _Unsupported(Exception):
    """Raised before any mutation when a lane needs the Python loops."""


#: Cross-run memo of per-lane trace facts.  Everything in a _LaneArrays is a
#: pure function of (trace content, L1 geometry) and is engine-independent,
#: so the four engines of one experiment row — and repeated bench runs —
#: share one precompute.  Keys are (content fingerprint, sets, ways), plus
#: the L1 state digest for warm overlays: content addressing needs no
#: identity validation and survives reloads of the same trace from the
#: memory-mapped cache.
#: Cap sizing: a chunked 100k-block 4-core run at a 500-block window mints
#: ~1.6k entries (one base + one warm overlay per lane per chunk), and the
#: bench's chunk-size curve holds three window geometries at once — the
#: caps leave the hotloop's monolithic entries resident underneath that.
_ARRAY_CACHE: "OrderedDict[tuple, _LaneArrays]" = OrderedDict()
_ARRAY_CACHE_MAX = 4096

#: Same idea for the spatial compactor's record stream (trace-pure for a
#: fresh compactor), keyed by (content fingerprint, region size) and shared
#: by PIF's per-core compactors and SHIFT's per-group trainer compactors.
_RECORD_CACHE: "OrderedDict[Tuple[str, int], tuple]" = OrderedDict()
_RECORD_CACHE_MAX = 512

#: Full LLC replay outcomes, keyed by (caller's solution key, LLC geometry,
#: LLC contents).  The solution key pins the event streams exactly, so the
#: memo can skip the merged LRU pass and apply stored counter deltas plus
#: the final stacks of the touched sets.
_LLC_CACHE: "OrderedDict[tuple, tuple]" = OrderedDict()
_LLC_CACHE_MAX = 512

#: One lock guards every memo in this module.  The caches are read and
#: written from the chunked engine's prewarm helper thread concurrently
#: with the replay thread, and worker processes each hold their own copy,
#: so a single coarse lock costs nothing measurable and keeps every
#: get/put atomic.
_MEMO_LOCK = threading.Lock()


def _memo_limit(default: int) -> int:
    """The effective LRU entry cap: ``REPRO_NUMPY_MEMO_MAX`` or the default."""
    raw = envvars.NUMPY_MEMO_MAX.read()
    if raw is None:
        return default
    try:
        limit = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_NUMPY_MEMO_MAX must be a positive integer, got {raw!r}"
        ) from None
    if limit < 1:
        raise ConfigurationError(
            f"REPRO_NUMPY_MEMO_MAX must be a positive integer, got {raw!r}"
        )
    return limit


def _cache_get(cache: "OrderedDict", key):
    with _MEMO_LOCK:
        value = cache.get(key)
        if value is not None:
            cache.move_to_end(key)
        return value


def _cache_put(cache: "OrderedDict", limit: int, key, value) -> None:
    limit = _memo_limit(limit)
    with _MEMO_LOCK:
        cache[key] = value
        cache.move_to_end(key)
        while len(cache) > limit:
            cache.popitem(last=False)


class _LaneArrays:
    """Vectorized per-lane trace facts (all pure functions of the trace).

    ``key`` is the content-addressed memo key (fingerprint, sets, ways):
    every cross-run cache in this module composes its keys from it, so two
    _LaneArrays built from equal-content traces are interchangeable.
    """

    __slots__ = (
        "a",
        "n",
        "setidx",
        "l1_hit",
        "other_after",
        "order",
        "num_sets",
        "key",
        "prev",
        "prevaddr",
    )

    #: Overridden by :class:`_WarmLaneArrays`; lets every consumer branch on
    #: whether the hit mask was derived against restored initial contents.
    warm = False

    def __init__(
        self,
        addresses: "List[int] | np.ndarray",
        num_sets: int,
        assoc: int,
        fingerprint: Optional[str] = None,
    ) -> None:
        if assoc > 2:
            raise _Unsupported("L1 associativity above 2 has no closed form")
        a = np.asarray(addresses, dtype=np.int64)
        if fingerprint is None:
            fingerprint = column_fingerprint(a)
        self.key = (fingerprint, num_sets, assoc)
        n = a.size
        if n and int(a.min()) < 0:
            raise _Unsupported("negative block addresses break the -1 sentinels")
        setidx = a % num_sets
        order = np.argsort(setidx, kind="stable")
        prev_sorted = np.full(n, -1, dtype=np.int64)
        if n > 1:
            same = setidx[order][1:] == setidx[order][:-1]
            prev_sorted[1:][same] = order[:-1][same]
        prev = np.empty(n, dtype=np.int64)
        prev[order] = prev_sorted
        prev_clip = np.maximum(prev, 0)
        prevaddr = np.where(prev >= 0, a[prev_clip], -1)
        if assoc == 1:
            other_after = np.full(n, -1, dtype=np.int64)
            l1_hit = (prev >= 0) & (a == prevaddr)
        else:
            # A 2-way set's co-resident after access j is the previous
            # address when it differs from a[j], else it carries: a grouped
            # forward fill (safe globally because every group's first
            # element has prevaddr == -1 != a and restarts the fill).
            pa_sorted = prevaddr[order]
            cond = pa_sorted != a[order]
            filled = np.maximum.accumulate(np.where(cond, np.arange(n), -1))
            other_after = np.empty(n, dtype=np.int64)
            other_after[order] = pa_sorted[filled] if n else pa_sorted
            other_prev = np.where(prev >= 0, other_after[prev_clip], -1)
            l1_hit = (prev >= 0) & ((a == prevaddr) | (a == other_prev))
        self.a = a
        self.n = n
        self.setidx = setidx
        self.l1_hit = l1_hit
        self.other_after = other_after
        self.order = order
        self.num_sets = num_sets
        self.prev = prev
        self.prevaddr = prevaddr

    def last_in_set_at(self, targets: np.ndarray, times: np.ndarray) -> np.ndarray:
        """Index of the last access at-or-before ``times`` touching each
        target block's set, or -1 (vectorized containment support)."""
        S = self.num_sets
        tset = targets % S
        out = np.full(targets.size, -1, dtype=np.int64)
        sorted_sets = self.setidx[self.order]
        set_range = np.arange(S)
        starts = np.searchsorted(sorted_sets, set_range, side="left")
        ends = np.searchsorted(sorted_sets, set_range, side="right")
        qorder = np.argsort(tset, kind="stable")
        qsets = tset[qorder]
        qstarts = np.searchsorted(qsets, set_range, side="left")
        qends = np.searchsorted(qsets, set_range, side="right")
        for s in range(S):
            q0, q1 = qstarts[s], qends[s]
            if q0 == q1 or starts[s] == ends[s]:
                continue
            occ = self.order[starts[s] : ends[s]]
            sel = qorder[q0:q1]
            pos = np.searchsorted(occ, times[sel], side="right") - 1
            out[sel] = np.where(pos >= 0, occ[np.maximum(pos, 0)], -1)
        return out

    def contains_at(self, targets: np.ndarray, times: np.ndarray) -> np.ndarray:
        """Whether each target block is L1-resident just after ``times``."""
        j = self.last_in_set_at(targets, times)
        jc = np.maximum(j, 0)
        return (j >= 0) & ((self.a[jc] == targets) | (self.other_after[jc] == targets))


class _WarmLaneArrays(_LaneArrays):
    """A restored-L1 overlay on a memoized fresh :class:`_LaneArrays`.

    The closed form's recurrence is uniform — MRU' = x, LRU' = (LRU if x was
    already MRU else old MRU) — so a set's restored ``{MRU, LRU}`` contents
    act exactly like one or two virtual accesses issued before the window.
    Concretely, with per-set initial MRU ``im`` and LRU ``io``:

    * an access with no predecessor in its set compares against ``im``
      (effective previous address) and ``io`` (prior co-resident);
    * the grouped forward fill is seeded so a group's first element
      contributes ``io`` when it re-touches ``im`` (contents unchanged) and
      ``im`` otherwise (``im`` demoted to LRU, whether the access hit
      ``io`` or missed).

    Everything trace-pure (``a``, ``setidx``, ``order``, ``prev``,
    ``prevaddr``) is shared with the fresh base object; only the hit mask
    and co-resident column are rebuilt, and empty initial contents
    reproduce the fresh arrays exactly.
    """

    __slots__ = ("init_m", "init_o")

    warm = True

    def __init__(self, base: _LaneArrays, sets: List[List[int]], state_key: tuple) -> None:
        num_sets = base.num_sets
        self.key = base.key + (state_key,)
        self.a = a = base.a
        self.n = n = base.n
        self.setidx = base.setidx
        self.order = order = base.order
        self.num_sets = num_sets
        self.prev = base.prev
        self.prevaddr = base.prevaddr
        init_m = np.full(num_sets, -1, dtype=np.int64)
        init_o = np.full(num_sets, -1, dtype=np.int64)
        for set_index, lines in enumerate(sets):
            if lines:
                init_m[set_index] = lines[0]
                if len(lines) > 1:
                    init_o[set_index] = lines[1]
        self.init_m = init_m
        self.init_o = init_o
        if n == 0:
            self.l1_hit = base.l1_hit
            self.other_after = base.other_after
            return
        first = base.prev < 0
        pa_eff = np.where(first, init_m[base.setidx], base.prevaddr)
        if base.key[2] == 1:
            self.other_after = base.other_after
            self.l1_hit = a == pa_eff
            return
        a_s = a[order]
        first_s = first[order]
        pa_s = pa_eff[order]
        io_s = init_o[base.setidx][order]
        seed = np.where(first_s & (a_s == pa_s), io_s, pa_s)
        cond = first_s | (pa_s != a_s)
        filled = np.maximum.accumulate(np.where(cond, np.arange(n), -1))
        oa_s = seed[filled]
        other_after = np.empty(n, dtype=np.int64)
        other_after[order] = oa_s
        prior_other_s = np.empty(n, dtype=np.int64)
        prior_other_s[0] = -1
        prior_other_s[1:] = oa_s[:-1]
        prior_other_s = np.where(first_s, io_s, prior_other_s)
        hit_s = (a_s == pa_s) | (a_s == prior_other_s)
        l1_hit = np.empty(n, dtype=bool)
        l1_hit[order] = hit_s
        self.other_after = other_after
        self.l1_hit = l1_hit

    def contains_at(self, targets: np.ndarray, times: np.ndarray) -> np.ndarray:
        """Warm containment: untouched sets answer from the initial contents."""
        j = self.last_in_set_at(targets, times)
        jc = np.maximum(j, 0)
        hit = (j >= 0) & ((self.a[jc] == targets) | (self.other_after[jc] == targets))
        tset = targets % self.num_sets
        initial = (j < 0) & (
            (self.init_m[tset] == targets) | (self.init_o[tset] == targets)
        )
        return hit | initial


def _initial_content(arr: _LaneArrays) -> Tuple[List[int], List[int]]:
    """Per-set initial ``(MRU, LRU)`` columns for the per-event loops."""
    if arr.warm:
        return arr.init_m.tolist(), arr.init_o.tolist()
    return [-1] * arr.num_sets, [-1] * arr.num_sets


def _write_l1_state(cache, arr: _LaneArrays) -> None:
    """Materialize the lane's final L1 contents into the cache object.

    Monolithic runs never read the L1 afterwards, but the chunked engine
    checkpoints it between windows, so every successful vectorized run
    writes back the exact per-set ``[MRU]`` / ``[MRU, LRU]`` stacks.  The
    closed form already knows them: for each touched set they are the last
    access and its co-resident; untouched sets keep their (possibly warm)
    contents.  Derivable from the arrays alone, so cached-solution replays
    reuse it too.
    """
    if arr.n == 0:
        return
    ss = arr.setidx[arr.order]
    last = np.empty(arr.n, dtype=bool)
    last[:-1] = ss[1:] != ss[:-1]
    last[-1] = True
    idx = arr.order[last]
    touched = ss[last].tolist()
    mru = arr.a[idx].tolist()
    lru = arr.other_after[idx].tolist()
    sets = cache._sets
    for set_index, mru_tag, lru_tag in zip(touched, mru, lru):
        sets[set_index] = [mru_tag] if lru_tag < 0 else [mru_tag, lru_tag]


def _trace_columns(addresses) -> Tuple[np.ndarray, str]:
    """A lane's int64 column (zero-copy off the IR) and its fingerprint.

    :class:`~repro.workloads.trace.CoreTrace` lanes hand over their
    columnar buffer and carried digest directly; raw sequences (tests,
    ad-hoc lanes) are converted and hashed here.
    """
    column = getattr(addresses, "array", None)
    if column is not None and hasattr(addresses, "fingerprint"):
        return np.asarray(column, dtype=np.int64), addresses.fingerprint
    a = np.asarray(addresses, dtype=np.int64)
    return a, column_fingerprint(a)


def _lane_arrays_for(lanes) -> List[_LaneArrays]:
    """Precompute every lane (pure, memoized) before anything is mutated.

    A lane whose L1 carries restored contents gets a :class:`_WarmLaneArrays`
    overlay, memoized under the base key extended with the L1 state digest
    (the overlay shares the trace-pure columns with its base entry).
    """
    out = []
    for _core_id, addresses, cache, _buffer, _stats in lanes:
        a, fingerprint = _trace_columns(addresses)
        key = (fingerprint, cache._num_sets, cache._associativity)
        arrays = _cache_get(_ARRAY_CACHE, key)
        if arrays is None:
            arrays = _LaneArrays(a, cache._num_sets, cache._associativity, fingerprint)
            _cache_put(_ARRAY_CACHE, _ARRAY_CACHE_MAX, key, arrays)
        if any(cache._sets):
            warm_key = key + (cache.state_key(),)

            warm = _cache_get(_ARRAY_CACHE, warm_key)
            if warm is None:
                warm = _WarmLaneArrays(arrays, cache._sets, warm_key[-1])
                _cache_put(_ARRAY_CACHE, _ARRAY_CACHE_MAX, warm_key, warm)
            arrays = warm
        out.append(arrays)
    return out


# ---------------------------------------------------------------------------
# Shared LLC replay


def _replay_llc(llc, per_lane, events_key=None) -> None:
    """Replay per-lane LLC event arrays; equals ``_fastpath._replay_llc``.

    ``per_lane`` holds ``(stats, steps, addrs, kinds, seq)`` per lane in
    core-id order.  ``kinds`` is a demand-flag bool array (None = all
    demand); ``seq`` orders events within one (lane, step) — a demand miss
    carries -1 so it precedes the prefetches its access triggered (None
    when a lane never has two events in a step).  Events are sorted once
    into the merged round-robin order (step-major, lane, seq) by a single
    unique-key argsort; hit/miss outcomes come from a flat python LRU pass
    and everything else is an order-free aggregation.

    ``events_key`` (when given) is the caller's solution memo key: it pins
    the event streams exactly, so the whole replay outcome — counter
    deltas, per-lane hit classifications and the final LRU stacks of every
    touched set — is memoized against ``(events_key, LLC state)`` and
    applied in O(touched sets) on repeat runs.
    """
    if llc is None or not per_lane:
        return
    counts = [entry[1].size for entry in per_lane]
    if sum(counts) == 0:
        return
    stats_list = [entry[0] for entry in per_lane]

    def run_flat() -> None:
        steps = np.concatenate([entry[1] for entry in per_lane])
        addrs = np.concatenate([entry[2] for entry in per_lane])
        kinds = np.concatenate(
            [
                entry[3] if entry[3] is not None else np.ones(count, dtype=bool)
                for entry, count in zip(per_lane, counts)
            ]
        )
        seqs = np.concatenate(
            [
                entry[4]
                if entry[4] is not None
                else np.zeros(count, dtype=np.int64)
                for entry, count in zip(per_lane, counts)
            ]
        )
        lane_ids = np.repeat(np.arange(len(per_lane)), counts)
        _replay_llc_flat(llc, stats_list, steps, addrs, kinds, lane_ids, seqs)

    _replay_llc_memo(llc, stats_list, events_key, run_flat)


def _replay_llc_memo(llc, stats_list, events_key, run_flat) -> None:
    """Run (or skip) an LLC replay through the :data:`_LLC_CACHE` memo.

    ``run_flat`` performs the actual replay (mutating ``llc`` and the
    per-lane stats).  With ``events_key`` None this just calls it; otherwise
    the outcome is keyed on ``(events_key, LLC geometry, LLC contents)``:
    on a hit the stored counter deltas and final stacks of the touched sets
    are applied in O(touched sets), on a miss the replay runs once and its
    effect is diffed against the captured pre-state and stored.
    """
    if events_key is None:
        run_flat()
        return
    key = (
        events_key,
        llc._num_sets,
        llc._banks,
        tuple(llc._avail),
        tuple(sorted(llc._pinned)),
        tuple(tuple(lines) for lines in llc._sets),
    )
    cached = _cache_get(_LLC_CACHE, key)
    if cached is not None:
        counter_delta, bank_delta, lane_delta, changed = cached
        llc.demand_hits += counter_delta[0]
        llc.demand_misses += counter_delta[1]
        llc.prefetch_hits += counter_delta[2]
        llc.prefetch_misses += counter_delta[3]
        banks = llc.bank_accesses
        for bank, delta in enumerate(bank_delta):
            banks[bank] += delta
        for stats, (hits, misses) in zip(stats_list, lane_delta):
            stats.llc_hits += hits
            stats.memory_misses += misses
        sets = llc._sets
        for set_index, stack in changed:
            sets[set_index] = list(stack)
        return
    pre_counters = (
        llc.demand_hits,
        llc.demand_misses,
        llc.prefetch_hits,
        llc.prefetch_misses,
    )
    pre_banks = list(llc.bank_accesses)
    pre_lane = [(stats.llc_hits, stats.memory_misses) for stats in stats_list]
    pre_sets = [list(lines) for lines in llc._sets]
    run_flat()
    value = (
        (
            llc.demand_hits - pre_counters[0],
            llc.demand_misses - pre_counters[1],
            llc.prefetch_hits - pre_counters[2],
            llc.prefetch_misses - pre_counters[3],
        ),
        tuple(now - was for now, was in zip(llc.bank_accesses, pre_banks)),
        tuple(
            (stats.llc_hits - hits, stats.memory_misses - misses)
            for stats, (hits, misses) in zip(stats_list, pre_lane)
        ),
        tuple(
            (set_index, tuple(lines))
            for set_index, (lines, old) in enumerate(zip(llc._sets, pre_sets))
            if lines != old
        ),
    )
    _cache_put(_LLC_CACHE, _LLC_CACHE_MAX, key, value)


def _replay_llc_flat(llc, stats_list, steps, addrs, kinds, lane_ids, seqs) -> None:
    """Flat-array form of :func:`_replay_llc` (events in any order)."""
    total = steps.size
    if total == 0:
        return
    num_lanes = len(stats_list)
    seq_span = int(seqs.max()) + 2
    merged_key = (steps * num_lanes + lane_ids) * seq_span + (seqs + 1)
    num_sets = llc._num_sets
    sidx = addrs % num_sets
    bank_counts = np.bincount(sidx % llc._banks, minlength=llc._banks)
    for bank, count in enumerate(bank_counts):
        llc.bank_accesses[bank] += int(count)
    if llc._pinned:
        # Pinned history blocks always hit and live outside the LRU stacks
        # (``_access`` returns before touching the set), so their events
        # peel off as unconditional hits; the per-set decomposition below
        # then applies to the rest with the post-pinning capacities.
        pinned = np.fromiter(llc._pinned, dtype=np.int64, count=len(llc._pinned))
        is_pinned = np.isin(addrs, pinned)
        if is_pinned.any():
            _aggregate_llc(
                llc,
                stats_list,
                np.ones(int(np.count_nonzero(is_pinned)), dtype=bool),
                kinds[is_pinned],
                lane_ids[is_pinned],
            )
            keep = ~is_pinned
            addrs = addrs[keep]
            kinds = kinds[keep]
            lane_ids = lane_ids[keep]
            merged_key = merged_key[keep]
            sidx = sidx[keep]
            total = addrs.size
            if total == 0:
                return
    # Group events into (set, address) pairs.  A set holding at most
    # capacity-many distinct addresses (``_avail``: the ways left after any
    # pinning, == associativity otherwise) can never evict, so its outcomes
    # are pure: the merged-order-first event of each pair misses, the rest
    # hit, and the final MRU order is by last occurrence.  Only events in
    # *contended* sets (more distinct addresses than ways) need the exact
    # LRU loop — per-set independence makes the split sound.
    capacity = np.asarray(llc._avail, dtype=np.int64)
    # Restored warm residents (chunked resumes) shift both classifications:
    # a resident pair's first event hits rather than misses, and a set is
    # contended when |residents ∪ touched| exceeds its ways (an untouched
    # resident still occupies a way under every new fill).
    res_set_list: List[int] = []
    res_addr_list: List[int] = []
    for set_index, lines in enumerate(llc._sets):
        for tag in lines:
            res_set_list.append(set_index)
            res_addr_list.append(tag)
    addr_base = int(addrs.max()) + 1
    if res_addr_list:
        addr_base = max(addr_base, max(res_addr_list) + 1)
    pair_key = sidx * np.int64(addr_base) + addrs
    order2 = np.argsort(pair_key)
    sorted_pairs = pair_key[order2]
    run_start = np.empty(total, dtype=bool)
    run_start[0] = True
    run_start[1:] = sorted_pairs[1:] != sorted_pairs[:-1]
    runs = np.flatnonzero(run_start)
    segid = np.cumsum(run_start) - 1
    pair_set = sidx[order2][runs]
    mk2 = merged_key[order2]
    first_mk = np.minimum.reduceat(mk2, runs)
    if res_addr_list:
        res_set = np.asarray(res_set_list, dtype=np.int64)
        res_key = res_set * np.int64(addr_base) + np.asarray(res_addr_list, np.int64)
        pair_resident = np.isin(sorted_pairs[runs], res_key)
        new_counts = np.bincount(pair_set[~pair_resident], minlength=num_sets)
        res_counts = np.bincount(res_set, minlength=num_sets)
        contended_sets = (new_counts + res_counts) > capacity
        hit2 = (mk2 != first_mk[segid]) | pair_resident[segid]
    else:
        contended_sets = np.bincount(pair_set, minlength=num_sets) > capacity
        hit2 = mk2 != first_mk[segid]
    pair_contended = contended_sets[pair_set]
    if not pair_contended.any():
        _aggregate_llc(llc, stats_list, hit2, kinds[order2], lane_ids[order2])
        _write_llc_state(llc, mk2, runs, pair_set, addrs[order2][runs], None)
        return
    elem_contended = pair_contended[segid]
    vec = ~elem_contended
    _aggregate_llc(llc, stats_list, hit2[vec], kinds[order2][vec], lane_ids[order2][vec])
    _write_llc_state(llc, mk2, runs, pair_set, addrs[order2][runs], ~pair_contended)
    contended_events = contended_sets[sidx]
    corder = np.argsort(merged_key[contended_events])
    caddr = addrs[contended_events][corder]
    chit = _llc_set_loop(llc, caddr.tolist(), (caddr % num_sets).tolist())
    _aggregate_llc(
        llc,
        stats_list,
        chit,
        kinds[contended_events][corder],
        lane_ids[contended_events][corder],
    )


def _aggregate_llc(llc, stats_list, hit, kind, lane) -> None:
    """Order-free counter rollup for one (sub)set of replayed events."""
    demand_hit = kind & hit
    demand_miss = kind & ~hit
    llc.demand_hits += int(np.count_nonzero(demand_hit))
    llc.demand_misses += int(np.count_nonzero(demand_miss))
    llc.prefetch_hits += int(np.count_nonzero(~kind & hit))
    llc.prefetch_misses += int(np.count_nonzero(~kind & ~hit))
    num_lanes = len(stats_list)
    lane_hits = np.bincount(lane[demand_hit], minlength=num_lanes)
    lane_misses = np.bincount(lane[demand_miss], minlength=num_lanes)
    for lane_index, stats in enumerate(stats_list):
        stats.llc_hits += int(lane_hits[lane_index])
        stats.memory_misses += int(lane_misses[lane_index])


def _write_llc_state(llc, mk2, runs, pair_set, pair_addr, pair_mask) -> None:
    """Materialize uncontended sets' final LRU stacks (MRU-first = last
    occurrence in merged order, most recent first).

    Warm residents a set carried into the window that were never touched
    keep their relative order *below* every touched address: each touched
    address is moved/filled at MRU at least once, which pushes every
    untouched line down without reordering them.
    """
    last_mk = np.maximum.reduceat(mk2, runs)
    if pair_mask is not None:
        pair_set = pair_set[pair_mask]
        pair_addr = pair_addr[pair_mask]
        last_mk = last_mk[pair_mask]
    state_order = np.lexsort((-last_mk, pair_set))
    set_list = pair_set[state_order].tolist()
    addr_list = pair_addr[state_order].tolist()
    sets = llc._sets
    num_pairs = len(set_list)
    start = 0
    while start < num_pairs:
        set_index = set_list[start]
        end = start + 1
        while end < num_pairs and set_list[end] == set_index:
            end += 1
        stack = addr_list[start:end]
        old = sets[set_index]
        if old:
            touched = set(stack)
            stack += [tag for tag in old if tag not in touched]
        sets[set_index] = stack
        start = end


def _llc_set_loop(llc, addr_list: List[int], sidx_list: List[int]) -> np.ndarray:
    """Flat LLC LRU replay in merged order; returns per-event hit flags."""
    sets = llc._sets
    pinned = llc._pinned
    out: List[bool] = []
    append = out.append
    if pinned:
        avail = llc._avail
        for addr, set_index in zip(addr_list, sidx_list):
            if addr in pinned:
                append(True)
                continue
            lines = sets[set_index]
            if addr in lines:
                if lines[0] != addr:
                    lines.remove(addr)
                    lines.insert(0, addr)
                append(True)
            else:
                lines.insert(0, addr)
                if len(lines) > avail[set_index]:
                    lines.pop()
                append(False)
    else:
        assoc = llc._associativity
        for addr, set_index in zip(addr_list, sidx_list):
            lines = sets[set_index]
            if addr in lines:
                if lines[0] != addr:
                    lines.remove(addr)
                    lines.insert(0, addr)
                append(True)
            else:
                lines.insert(0, addr)
                if len(lines) > assoc:
                    lines.pop()
                append(False)
    return np.fromiter(out, dtype=bool, count=len(out))


# ---------------------------------------------------------------------------
# Baseline (no prefetcher)


def _run_baseline(lanes, llc) -> None:
    arrays = _lane_arrays_for(lanes)
    per_lane = []
    for (_core_id, _addresses, cache, _buffer, stats), arr in zip(lanes, arrays):
        hits = int(np.count_nonzero(arr.l1_hit))
        stats.demand_hits = hits
        stats.misses = arr.n - hits
        _write_l1_state(cache, arr)
        if llc is not None:
            miss_steps = np.flatnonzero(~arr.l1_hit)
            per_lane.append((stats, miss_steps, arr.a[miss_steps], None, None))
    events_key = ("baseline",) + tuple(arr.key for arr in arrays)
    _replay_llc(llc, per_lane, events_key)


# ---------------------------------------------------------------------------
# Next-line


def _sort_rank(keys) -> np.ndarray:
    """Argsort by lexicographic (major-first) non-negative integer keys.

    Packs the keys into one int64 composite when the value ranges fit
    (unique composites, so the fast default sort applies); falls back to
    ``np.lexsort`` otherwise.
    """
    combo = keys[0].astype(np.int64, copy=True)
    limit = int(combo.max()) + 1 if combo.size else 1
    for key in keys[1:]:
        span = int(key.max()) + 1 if key.size else 1
        limit *= span
        if limit >= 2**62:
            return np.lexsort(tuple(reversed(keys)))
        combo *= span
        combo += key
    return np.argsort(combo)


#: Cell budget for the dense (lane, time, set) last-access table; above it
#: the per-lane searchsorted path is used instead.
_DENSE_TABLE_CELLS = 16_000_000

#: Cross-run memo of dense containment tables (trace-pure, ~10 MB each).
_TABLE_CACHE: "OrderedDict[tuple, tuple]" = OrderedDict()
_TABLE_CACHE_MAX = 4


def _dense_table(arrays):
    """The cached (lane, time, set) last-access table plus padded per-lane
    address/co-resident matrices, or None when over the cell budget (or for
    warm lanes, whose untouched-set queries need the initial contents that
    only the per-lane ``contains_at`` overlay consults)."""
    num_lanes = len(arrays)
    max_n = max(arr.n for arr in arrays)
    num_sets = arrays[0].num_sets
    if (
        any(arr.warm for arr in arrays)
        or any(arr.num_sets != num_sets for arr in arrays)
        or num_lanes * max_n * num_sets > _DENSE_TABLE_CELLS
    ):
        return None
    key = tuple(arr.key for arr in arrays)
    value = _cache_get(_TABLE_CACHE, key)
    if value is not None:
        return value
    table = np.full((num_lanes, max_n, num_sets), -1, dtype=np.int32)
    lane_sizes = [arr.n for arr in arrays]
    positions = np.concatenate([np.arange(n) for n in lane_sizes])
    lane_rep = np.repeat(np.arange(num_lanes), lane_sizes)
    table[lane_rep, positions, np.concatenate([arr.setidx for arr in arrays])] = positions
    np.maximum.accumulate(table, axis=1, out=table)
    lane_addr = np.full((num_lanes, max_n), -1, dtype=np.int64)
    lane_other = np.full((num_lanes, max_n), -1, dtype=np.int64)
    for index, arr in enumerate(arrays):
        lane_addr[index, : arr.n] = arr.a
        lane_other[index, : arr.n] = arr.other_after
    value = (num_sets, table, lane_addr, lane_other)
    _cache_put(_TABLE_CACHE, _TABLE_CACHE_MAX, key, value)
    return value


def _contains_batch(arrays, lane_of, targets, times) -> np.ndarray:
    """L1 residency of ``targets`` just after access ``times`` on their lanes.

    Dense path: one (lane, time, set) last-access table built with a single
    ``maximum.accumulate`` pass serves every query with one gather.
    """
    dense = _dense_table(arrays)
    if dense is not None:
        num_sets, table, lane_addr, lane_other = dense
        last = table[lane_of, times, targets % num_sets].astype(np.int64)
        last_c = np.maximum(last, 0)
        return (last >= 0) & (
            (lane_addr[lane_of, last_c] == targets) | (lane_other[lane_of, last_c] == targets)
        )
    out = np.empty(targets.size, dtype=bool)
    for index, arr in enumerate(arrays):
        mask = lane_of == index
        if mask.any():
            out[mask] = arr.contains_at(targets[mask], times[mask])
    return out


#: Cross-run memo of solved next-line timelines (pure in trace + degree +
#: restored per-lane buffer state).
_NEXT_LINE_CACHE: "OrderedDict[tuple, _NextLineSolution]" = OrderedDict()
_NEXT_LINE_CACHE_MAX = 256


class _NextLineSolution:
    """The trace-pure core of a next-line run: which non-hit accesses were
    served by an in-flight prefetch (and when it was issued), which
    prefetches were actually inserted, the buffer's occupancy peaks, the
    final buffer contents and the LLC event stream.  Everything that
    depends on per-run parameters — the in-flight window classification and
    the capacity check — is applied per run in :func:`_run_next_line`."""

    __slots__ = (
        "cons_counts",
        "served",
        "stamp",
        "cons_step",
        "cons_lane",
        "lane_miss",
        "lane_issued",
        "peaks",
        "peak_lanes",
        "leftover",
        "ev_step",
        "ev_addr",
        "ev_lane",
        "ev_kind",
        "ev_seq",
    )


def _solve_next_line(arrays, degree: int, warm_items) -> _NextLineSolution:
    """Solve the per-(lane, block) timelines; ``warm_items`` carries each
    lane's restored buffer as ``[(block, issue_stamp), ...]`` FIFO lists.

    A warm block behaves exactly like a producer ordered before every real
    event of the window (it was inserted by a previous chunk): it is
    unconditionally "eligible", it serves its block's first consumer with
    its restored (possibly negative, already rebased) stamp, and if never
    consumed it survives as leftover ahead of this window's inserts.  Warm
    entries never count as issued prefetches and never touch the LLC —
    both happened when they were originally issued.
    """
    num_lanes = len(arrays)
    solution = _NextLineSolution()
    nonhits = [np.flatnonzero(~arr.l1_hit) for arr in arrays]
    cons_counts = [nh.size for nh in nonhits]
    total_cons = sum(cons_counts)
    solution.cons_counts = cons_counts
    warm_counts = [len(items) for items in warm_items]
    total_warm = sum(warm_counts)
    if total_cons == 0:
        empty = np.empty(0, dtype=np.int64)
        solution.served = np.empty(0, dtype=bool)
        solution.stamp = solution.cons_step = solution.cons_lane = empty
        solution.lane_miss = solution.lane_issued = np.zeros(num_lanes, dtype=np.int64)
        solution.peaks = solution.peak_lanes = empty
        solution.leftover = [
            (lane_index, block, stamp)
            for lane_index, items in enumerate(warm_items)
            for block, stamp in items
        ]
        solution.ev_step = solution.ev_addr = solution.ev_lane = solution.ev_seq = empty
        solution.ev_kind = np.empty(0, dtype=bool)
        return solution
    cons_t = np.concatenate(nonhits)
    cons_x = np.concatenate([arr.a[nh] for arr, nh in zip(arrays, nonhits)])
    cons_lane = np.repeat(np.arange(num_lanes), cons_counts)
    # Prefetch attempts: every non-hit access tries blocks x+1 .. x+degree;
    # an attempt is eligible unless the block is already L1-resident.  The
    # attempt arrays inherit (lane, t, delta) order from the consumers.
    deltas = np.arange(1, degree + 1, dtype=np.int64)
    attempt_y = (cons_x[:, None] + deltas[None, :]).reshape(-1)
    attempt_t = np.repeat(cons_t, degree)
    attempt_lane = np.repeat(cons_lane, degree)
    attempt_delta = np.tile(deltas, total_cons)
    eligible = ~_contains_batch(arrays, attempt_lane, attempt_y, attempt_t)
    prod_y = attempt_y[eligible]
    prod_t = attempt_t[eligible]
    prod_lane = attempt_lane[eligible]
    prod_delta = attempt_delta[eligible]
    # Per-(lane, block) timelines: consumers (non-hit accesses to the
    # block) and eligible producers, time-ordered.  Every consumer pops,
    # and between two consumers only the first producer actually inserts
    # (re-prefetches of an in-flight block are no-ops), so a consumer is
    # served exactly by the first producer in its epoch (= # consumers
    # before it in the block's timeline).
    num_prod = prod_y.size
    # Warm buffer entries enter the sort with time key 0 (real events shift
    # by one) so each orders before everything in its block's timeline; the
    # true stamps ride along separately since they may be negative.
    warm_lane = np.repeat(np.arange(num_lanes), warm_counts)
    warm_y = np.asarray(
        [block for items in warm_items for block, _stamp in items], dtype=np.int64
    )
    warm_stamp = np.asarray(
        [stamp for items in warm_items for _block, stamp in items], dtype=np.int64
    )
    ent_lane = np.concatenate([cons_lane, prod_lane, warm_lane])
    ent_y = np.concatenate([cons_x, prod_y, warm_y])
    ent_tkey = np.concatenate(
        [cons_t + 1, prod_t + 1, np.zeros(total_warm, dtype=np.int64)]
    )
    ent_stamp = np.concatenate([cons_t, prod_t, warm_stamp])
    ent_delta = np.concatenate(
        [
            np.zeros(total_cons, dtype=np.int64),
            prod_delta,
            np.zeros(total_warm, dtype=np.int64),
        ]
    )
    order = _sort_rank((ent_lane, ent_y, ent_tkey, ent_delta))
    g_prod = order >= total_cons
    group_key = ent_lane[order] * np.int64(int(ent_y.max()) + 1) + ent_y[order]
    size = order.size
    group_start = np.empty(size, dtype=bool)
    group_start[0] = True
    group_start[1:] = group_key[1:] != group_key[:-1]
    segid = np.cumsum(group_start) - 1
    num_segs = int(segid[-1]) + 1
    is_cons = ~g_prod
    before = np.cumsum(is_cons) - is_cons  # consumers strictly before, global
    base = before[np.flatnonzero(group_start)]
    epoch = before - base[segid]
    epoch_span = max(int(arr.n) for arr in arrays) + 2
    if num_segs * epoch_span >= 2**62:
        raise _Unsupported("trace too large for composite epoch keys")
    key = segid * np.int64(epoch_span) + epoch
    prod_pos = np.flatnonzero(g_prod)
    prod_key = key[prod_pos]
    first = np.ones(prod_pos.size, dtype=bool)
    first[1:] = prod_key[1:] != prod_key[:-1]
    succ_pos = prod_pos[first]
    succ_key = key[succ_pos]
    cons_pos = np.flatnonzero(is_cons)
    orig_cons = order[cons_pos]
    cons_step = cons_t[orig_cons]
    if succ_key.size:
        idx = np.searchsorted(succ_key, key[cons_pos])
        idx_c = np.minimum(idx, succ_key.size - 1)
        served = (idx < succ_key.size) & (succ_key[idx_c] == key[cons_pos])
        stamp = ent_stamp[order[succ_pos]][idx_c]
    else:
        served = np.zeros(cons_pos.size, dtype=bool)
        stamp = np.zeros(cons_pos.size, dtype=np.int64)
    solution.served = served
    solution.stamp = stamp
    solution.cons_step = cons_step
    solution.cons_lane = cons_lane[orig_cons]
    miss = ~served
    # Map producers back to the original (lane, t, delta)-ordered domain:
    # buffer ops are then already time-sorted per lane, so the occupancy
    # reconstruction needs no further sort.
    served_orig = np.zeros(total_cons, dtype=bool)
    served_orig[orig_cons] = served
    # The successful-producer domain spans real producers then warm entries
    # (a warm entry is always its block's epoch-0 first producer); buffer
    # inserts and LLC traffic only come from the real ones.
    succ_orig = np.zeros(num_prod + total_warm, dtype=bool)
    succ_orig[order[succ_pos] - total_cons] = True
    pop_idx = np.flatnonzero(served_orig)
    ins_idx = np.flatnonzero(succ_orig[:num_prod])
    if ins_idx.size:
        # Occupancy peaks only after an insert.  For each insert, the
        # buffer level is (# warm blocks restored at chunk start) +
        # (# earlier-or-equal inserts) - (# earlier pops) within its lane;
        # pops at the same access precede the insert.  Warm blocks never
        # raise the peak on their own (the restored buffer fit by
        # construction), so they only contribute the initial level.
        t_span = np.int64(epoch_span)
        prio_span = np.int64(degree + 2)
        ins_lane = prod_lane[ins_idx]
        pop_lane = cons_lane[pop_idx]
        ins_key = (ins_lane * t_span + prod_t[ins_idx]) * prio_span + prod_delta[ins_idx]
        pop_key = (pop_lane * t_span + cons_t[pop_idx]) * prio_span
        pops_before = np.searchsorted(pop_key, ins_key)
        ins_base = np.zeros(num_lanes + 1, dtype=np.int64)
        np.cumsum(np.bincount(ins_lane, minlength=num_lanes), out=ins_base[1:])
        pop_base = np.zeros(num_lanes + 1, dtype=np.int64)
        np.cumsum(np.bincount(pop_lane, minlength=num_lanes), out=pop_base[1:])
        warm_base = np.asarray(warm_counts, dtype=np.int64)
        level = (
            warm_base[ins_lane]
            + (np.arange(ins_key.size) - ins_base[ins_lane] + 1)
            - (pops_before - pop_base[ins_lane])
        )
        lane_starts = np.flatnonzero(
            np.concatenate([[True], ins_lane[1:] != ins_lane[:-1]])
        )
        solution.peaks = np.maximum.reduceat(level, lane_starts)
        solution.peak_lanes = ins_lane[lane_starts]
    else:
        solution.peaks = np.empty(0, dtype=np.int64)
        solution.peak_lanes = np.empty(0, dtype=np.int64)
    solution.lane_miss = np.bincount(solution.cons_lane[miss], minlength=num_lanes)
    solution.lane_issued = np.bincount(prod_lane[ins_idx], minlength=num_lanes)
    # Blocks still buffered at the end: successful producers in the epoch
    # after their block's last consumer.  Surviving warm entries keep their
    # FIFO seniority ahead of this window's inserts (insertion order).
    cons_per_seg = np.bincount(segid[cons_pos], minlength=num_segs)
    leftover = epoch[succ_pos] == cons_per_seg[segid[succ_pos]]
    if leftover.any():
        left_orig = order[succ_pos[leftover]] - total_cons
        warm_sel = left_orig >= num_prod
        warm_left = np.sort(left_orig[warm_sel] - num_prod)
        real_left = np.sort(left_orig[~warm_sel])
        solution.leftover = [
            (int(warm_lane[i]), int(warm_y[i]), int(warm_stamp[i]))
            for i in warm_left.tolist()
        ] + list(
            zip(
                prod_lane[real_left].tolist(),
                prod_y[real_left].tolist(),
                prod_t[real_left].tolist(),
            )
        )
    else:
        solution.leftover = []
    # LLC events with their within-step recording rank: the demand miss
    # (seq -1) precedes the prefetches its access triggers (delta order).
    num_miss = int(np.count_nonzero(miss))
    solution.ev_step = np.concatenate([cons_step[miss], prod_t[ins_idx]])
    solution.ev_addr = np.concatenate([cons_x[orig_cons][miss], prod_y[ins_idx]])
    solution.ev_lane = np.concatenate([solution.cons_lane[miss], prod_lane[ins_idx]])
    solution.ev_kind = np.concatenate(
        [np.ones(num_miss, dtype=bool), np.zeros(ins_idx.size, dtype=bool)]
    )
    solution.ev_seq = np.concatenate(
        [np.full(num_miss, -1, dtype=np.int64), prod_delta[ins_idx]]
    )
    return solution


def _next_line_solution(arrays, degree: int, warm_items, buffer_sig) -> _NextLineSolution:
    key = (tuple(arr.key for arr in arrays), degree, buffer_sig)
    solution = _cache_get(_NEXT_LINE_CACHE, key)
    if solution is None:
        solution = _solve_next_line(arrays, degree, warm_items)
        _cache_put(_NEXT_LINE_CACHE, _NEXT_LINE_CACHE_MAX, key, solution)
    return solution


def _run_next_line(lanes, inflight: Dict[int, int], degree: int, llc) -> bool:
    """Batch-vectorized next-line over all lanes; returns False (with
    nothing mutated) when any lane's buffer would overflow."""
    arrays = _lane_arrays_for(lanes)
    warm_items = [list(lane[3]._blocks.items()) for lane in lanes]
    buffer_sig = tuple(lane[3].state_key() for lane in lanes)
    num_lanes = len(lanes)
    solution = _next_line_solution(arrays, degree, warm_items, buffer_sig)
    capacities = np.asarray([lane[3]._capacity for lane in lanes], dtype=np.int64)
    if solution.peaks.size and (solution.peaks > capacities[solution.peak_lanes]).any():
        return False
    inflight_per_lane = np.asarray([inflight[lane[0]] for lane in lanes], dtype=np.int64)
    timely = solution.served & (
        (solution.cons_step - solution.stamp) >= inflight_per_lane[solution.cons_lane]
    )
    late = solution.served & ~timely
    lane_timely = np.bincount(solution.cons_lane[timely], minlength=num_lanes)
    lane_late = np.bincount(solution.cons_lane[late], minlength=num_lanes)
    for index, (lane, arr) in enumerate(zip(lanes, arrays)):
        stats = lane[4]
        stats.demand_hits = arr.n - solution.cons_counts[index]
        stats.misses = int(solution.lane_miss[index])
        stats.prefetch_hits = int(lane_timely[index])
        stats.late_hits = int(lane_late[index])
        stats.prefetches_issued = int(solution.lane_issued[index])
        _write_l1_state(lane[2], arr)
    buffers = [lane[3]._blocks for lane in lanes]
    for blocks in buffers:
        blocks.clear()
    for lane_index, block, issued_at in solution.leftover:
        buffers[lane_index][block] = issued_at
    if llc is not None and solution.ev_step.size:
        stats_list = [lane[4] for lane in lanes]
        _replay_llc_memo(
            llc,
            stats_list,
            ("next_line", tuple(arr.key for arr in arrays), degree, buffer_sig),
            lambda: _replay_llc_flat(
                llc,
                stats_list,
                solution.ev_step,
                solution.ev_addr,
                solution.ev_kind,
                solution.ev_lane,
                solution.ev_seq,
            ),
        )
    return True


# ---------------------------------------------------------------------------
# PIF


def _compactor_records(
    a: np.ndarray,
    region_blocks: int,
    init_trigger: Optional[int],
    init_mask: int,
) -> Tuple[List[int], List[int], List[int], int, int]:
    """The SpatialCompactor's record stream over ``a``, vectorized.

    Returns ``(positions, triggers, masks, final_trigger, final_mask)``:
    record ``k`` is emitted while feeding ``a[positions[k]]`` (before the
    access is otherwise processed), and the final open region is the
    compactor's post-run state.
    """
    if init_trigger is not None:
        work = np.concatenate([np.asarray([init_trigger], dtype=np.int64), a])
        shift = 1
    else:
        work = a
        shift = 0
    n = work.size
    # Certain boundaries: |delta| >= region size cannot stay in any region.
    delta = np.diff(work)
    certain = np.flatnonzero((delta <= -region_blocks) | (delta >= region_blocks)) + 1
    bounds = np.concatenate([np.zeros(1, dtype=np.int64), certain])
    arange = np.arange(n)
    for _ in range(_MAX_FIXPOINT_ITERS):
        indicator = np.zeros(n, dtype=np.int64)
        indicator[bounds] = 1
        seg = np.cumsum(indicator) - 1
        offsets = work - work[bounds[seg]]
        violation = (offsets < 0) | (offsets >= region_blocks)
        violation[bounds] = False
        vpos = np.flatnonzero(violation)
        if vpos.size == 0:
            break
        # The first violation of each segment is a true boundary; later
        # positions are re-judged against it next iteration.
        vseg = seg[vpos]
        first = np.ones(vpos.size, dtype=bool)
        first[1:] = vseg[1:] != vseg[:-1]
        bounds = np.unique(np.concatenate([bounds, vpos[first]]))
    else:
        return _compactor_records_python(a, region_blocks, init_trigger, init_mask)
    bits = np.zeros(n, dtype=np.int64)
    positive = offsets > 0
    bits[positive] = np.left_shift(np.int64(1), offsets[positive] - 1)
    masks = np.bitwise_or.reduceat(bits, bounds)
    masks[0] |= init_mask
    rec_pos = (bounds[1:] - shift).tolist()
    rec_trigger = work[bounds[:-1]].tolist()
    rec_mask = masks[:-1].tolist()
    return rec_pos, rec_trigger, rec_mask, int(work[bounds[-1]]), int(masks[-1])


def _compactor_records_python(a, region_blocks, init_trigger, init_mask):
    """Exact scalar scan, for traces where the fixpoint will not converge."""
    trigger = init_trigger
    mask = init_mask if init_trigger is not None else 0
    rec_pos: List[int] = []
    rec_trigger: List[int] = []
    rec_mask: List[int] = []
    for position, address in enumerate(a.tolist()):
        if trigger is None:
            trigger = address
            mask = 0
            continue
        offset = address - trigger
        if 0 <= offset < region_blocks:
            if offset:
                mask |= 1 << (offset - 1)
        else:
            rec_pos.append(position)
            rec_trigger.append(trigger)
            rec_mask.append(mask)
            trigger = address
            mask = 0
    return rec_pos, rec_trigger, rec_mask, trigger, mask


def _records_for(arr: _LaneArrays, compactor, region_blocks: int):
    """Compactor record stream for one lane, memoized per starting state.

    The stream is pure in (trace content, region size, open-region seed);
    warm compactors — chunked resumes — just key on their carried trigger
    and mask, which the prepend-virtual-access path already consumes.
    """
    key = (arr.key[0], region_blocks, compactor._trigger, compactor._mask)
    records = _cache_get(_RECORD_CACHE, key)
    if records is None:
        records = _compactor_records(
            arr.a, region_blocks, compactor._trigger, compactor._mask
        )
        _cache_put(_RECORD_CACHE, _RECORD_CACHE_MAX, key, records)
    return records


#: Cross-run memo of solved PIF lanes.  A PIF run is a pure function of
#: (trace, PIF configuration, starting state) — the state entering the key
#: as the prefetcher/buffer digests, so fresh and warm (chunk-resume) runs
#: share the machinery — and the counters, the LLC event stream and the
#: prefetcher's final state are captured once and replayed onto later
#: runs' objects; only the in-flight classification (stats-only) is
#: applied per run.  Sweeps that revisit a trace with an unchanged PIF
#: configuration (e.g. the LLC-capacity axis) hit this directly.
_PIF_CACHE: "OrderedDict[tuple, list]" = OrderedDict()
_PIF_CACHE_MAX = 256


class _PIFLaneSolution:
    """Everything one PIF lane run produces from a digested starting state."""

    __slots__ = (
        "misses",
        "issued",
        "evicted",
        "dispatches",
        "record_reads",
        "ages",
        "records",
        "next_pos",
        "index_items",
        "final_trigger",
        "final_mask",
        "buffer_items",
        "streams",
        "owner_items",
        "d_steps",
        "d_addrs",
        "p_steps",
        "p_addrs",
    )


def _apply_pif_solution(lane, arr: _LaneArrays, solution: _PIFLaneSolution, prefetcher, inflight_c):
    """Replay a captured lane solution onto the per-run objects.

    The solution stores *absolute* final state, so every container is
    cleared before being set: an ``update`` on warm state would keep an
    existing key's old OrderedDict position and corrupt FIFO/LRU order
    (for fresh objects the clears are no-ops).
    """
    core_id, _addresses, _cache, buffer, stats = lane
    engine = prefetcher._streams[core_id]
    history = prefetcher._histories[core_id]
    index = prefetcher._indices[core_id]
    compactor = prefetcher._compactors[core_id]
    history._records[:] = solution.records
    history._next_pos = solution.next_pos
    index._entries.clear()
    index._entries.update(solution.index_items)
    compactor._trigger = solution.final_trigger
    compactor._mask = solution.final_mask
    buffer._blocks.clear()
    buffer._blocks.update(solution.buffer_items)
    buffer.evicted_unused = solution.evicted
    streams = [_Stream(0) for _ in solution.streams]
    for stream, (next_pos, outstanding) in zip(streams, solution.streams):
        stream.next_pos = next_pos
        stream.outstanding = set(outstanding)
    engine._streams[:] = streams
    engine._owner.clear()
    engine._owner.update(
        (block, streams[slot]) for block, slot in solution.owner_items
    )
    engine.dispatches = solution.dispatches
    engine.record_reads = solution.record_reads
    buffer_hits = solution.ages.size
    timely = int(np.count_nonzero(solution.ages >= inflight_c))
    stats.demand_hits = arr.n - solution.misses - buffer_hits
    stats.prefetch_hits = timely
    stats.late_hits = buffer_hits - timely
    stats.misses = solution.misses
    stats.prefetches_issued = solution.issued


def _pif_events_entry(lane, num_demand, num_pf, steps, addrs):
    return (
        lane[4],
        steps,
        addrs,
        np.concatenate([np.ones(num_demand, dtype=bool), np.zeros(num_pf, dtype=bool)]),
        np.concatenate(
            [np.full(num_demand, -1, dtype=np.int64), np.arange(num_pf, dtype=np.int64)]
        ),
    )


def _run_pif(lanes, inflight: Dict[int, int], prefetcher: PIFPrefetcher, llc) -> None:
    config = prefetcher._config
    region_blocks = config.spatial_region.region_blocks
    if region_blocks > 62:
        raise _Unsupported("region masks beyond int64 need the Python loops")
    arrays = _lane_arrays_for(lanes)
    cache_key = (
        tuple(arr.key for arr in arrays),
        tuple(lane[0] for lane in lanes),
        tuple(lane[3]._capacity for lane in lanes),
        region_blocks,
        config.stream_buffer.num_streams,
        config.stream_buffer.lookahead_records,
        config.stream_buffer.capacity_records,
        config.history_entries,
        config.index_entries,
        prefetcher.state_key(),
        tuple(lane[3].state_key() for lane in lanes),
    )
    per_lane = []
    solutions = _cache_get(_PIF_CACHE, cache_key)
    if solutions is not None:
        for lane, arr, solution in zip(lanes, arrays, solutions):
            _apply_pif_solution(lane, arr, solution, prefetcher, inflight[lane[0]])
            _write_l1_state(lane[2], arr)
            if llc is not None:
                per_lane.append(
                    _pif_events_entry(
                        lane,
                        solution.d_steps.size,
                        solution.p_steps.size,
                        np.concatenate([solution.d_steps, solution.p_steps]),
                        np.concatenate([solution.d_addrs, solution.p_addrs]),
                    )
                )
        _replay_llc(llc, per_lane, ("pif", cache_key))
        return
    all_records = [
        _records_for(arr, prefetcher._compactors[lane[0]], region_blocks)
        for lane, arr in zip(lanes, arrays)
    ]
    offsets_table = _expand_offsets(region_blocks)
    num_streams = config.stream_buffer.num_streams
    lookahead = config.stream_buffer.lookahead_records
    outstanding_cap = config.stream_buffer.capacity_records * region_blocks
    solutions = []
    for lane, arr, records in zip(lanes, arrays, all_records):
        solution, events = _pif_lane(
            lane,
            arr,
            records,
            prefetcher,
            inflight[lane[0]],
            True,
            offsets_table,
            num_streams,
            lookahead,
            outstanding_cap,
            capture=True,
        )
        solutions.append(solution)
        _write_l1_state(lane[2], arr)
        if llc is not None:
            demand_steps, demand_addrs, pf_steps, pf_addrs = events
            per_lane.append(
                _pif_events_entry(
                    lane,
                    len(demand_steps),
                    len(pf_steps),
                    np.asarray(demand_steps + pf_steps, dtype=np.int64),
                    np.asarray(demand_addrs + pf_addrs, dtype=np.int64),
                )
            )
    _cache_put(_PIF_CACHE, _PIF_CACHE_MAX, cache_key, solutions)
    _replay_llc(llc, per_lane, ("pif", cache_key))


def _pif_lane(
    lane,
    arr: _LaneArrays,
    compactor_records,
    prefetcher: PIFPrefetcher,
    inflight_c: int,
    track_llc: bool,
    offsets_table,
    num_streams: int,
    lookahead: int,
    outstanding_cap: int,
    capture: bool = False,
):
    """Event loop over one PIF core: exact mirror of the Python fast path,
    with the per-access cache and compactor work replaced by the
    precomputed hit flags, record stream and 2-way set contents."""
    core_id, _addresses, cache, buffer, stats = lane
    engine = prefetcher._streams[core_id]
    history = prefetcher._histories[core_id]
    index = prefetcher._indices[core_id]
    compactor = prefetcher._compactors[core_id]
    records = history._records
    hist_cap = history._capacity
    next_pos = history._next_pos
    index_entries = index._entries
    index_capacity = index._capacity
    index_get = index_entries.get
    index_move_to_end = index_entries.move_to_end
    index_popitem = index_entries.popitem
    streams = engine._streams
    owner = engine._owner
    owner_pop = owner.pop
    dispatches = engine.dispatches
    record_reads = engine.record_reads
    bmap = buffer._blocks
    bcap = buffer._capacity
    bpop = bmap.pop
    bpopitem = bmap.popitem
    blen = len(bmap)
    num_sets = cache._num_sets
    # L1 set contents after the latest fill: {content_m[s], content_o[s]},
    # seeded with any restored warm contents.  Hits never change a 2-way
    # set's *membership*, so updates happen only on non-hit accesses, from
    # the precomputed co-resident array.
    content_m, content_o = _initial_content(arr)
    a_list = arr.a.tolist()
    hit_list = arr.l1_hit.tolist()
    other_list = arr.other_after.tolist()
    set_list = arr.setidx.tolist()
    rec_pos, rec_trigger, rec_mask, final_trigger, final_mask = compactor_records
    rec_count = len(rec_pos)
    rec_index = 0
    next_rec = rec_pos[0] if rec_count else -1
    demand_steps: List[int] = []
    demand_addrs: List[int] = []
    pf_steps: List[int] = []
    pf_addrs: List[int] = []
    add_dstep = demand_steps.append
    add_daddr = demand_addrs.append
    add_pstep = pf_steps.append
    add_paddr = pf_addrs.append
    #: Prefetch-buffer hit ages (step - issue step); classified against the
    #: in-flight window after the loop — the split is stats-only.
    ages: List[int] = []
    add_age = ages.append
    misses = 0
    issued = 0
    # Evictions accumulate on top of any restored count: the absolute final
    # value is what the capture stores and the checkpoint serializes.
    evicted = buffer.evicted_unused
    for step, address, hit in zip(range(arr.n), a_list, hit_list):
        if step == next_rec:
            trigger = rec_trigger[rec_index]
            records[next_pos % hist_cap] = (trigger, rec_mask[rec_index])
            if trigger in index_entries:
                index_entries[trigger] = next_pos
                index_move_to_end(trigger)
            else:
                index_entries[trigger] = next_pos
                if len(index_entries) > index_capacity:
                    index_popitem(last=False)
            next_pos += 1
            rec_index += 1
            next_rec = rec_pos[rec_index] if rec_index < rec_count else -1
        if hit:
            is_miss = False
        else:
            issued_at = bpop(address, None)
            if issued_at is not None:
                blen -= 1
                add_age(step - issued_at)
                is_miss = False
            else:
                misses += 1
                is_miss = True
                if track_llc:
                    add_dstep(step)
                    add_daddr(address)
            set_index = set_list[step]
            content_m[set_index] = address
            content_o[set_index] = other_list[step]
        if is_miss:
            # StreamEngine.on_miss, as in the Python fast path.
            stale = owner_pop(address, None)
            if stale is not None:
                stale.outstanding.discard(address)
            pos = index_get(address)
            if pos is not None and 0 <= pos < next_pos and pos >= next_pos - hist_cap:
                stream = _Stream(pos)
                if len(streams) >= num_streams:
                    retired = streams.pop(0)
                    for block in retired.outstanding:
                        owner_pop(block, None)
                    retired.outstanding.clear()
                streams.append(stream)
                dispatches += 1
                blocks: List[int] = []
                spos = pos
                for _ in range(lookahead):
                    if spos < 0 or spos >= next_pos or spos < next_pos - hist_cap:
                        break
                    record = records[spos % hist_cap]
                    if record is None:
                        break
                    spos += 1
                    record_reads += 1
                    rec_t, rec_m = record
                    blocks.append(rec_t)
                    for offset in offsets_table[rec_m]:
                        blocks.append(rec_t + offset)
                stream.next_pos = spos
                outstanding = stream.outstanding
                for block in blocks:
                    if block not in owner:
                        owner[block] = stream
                        outstanding.add(block)
                        if block != address:
                            block_set = block % num_sets
                            if (
                                block != content_m[block_set]
                                and block != content_o[block_set]
                                and block not in bmap
                            ):
                                bmap[block] = step
                                blen += 1
                                issued += 1
                                if track_llc:
                                    add_pstep(step)
                                    add_paddr(block)
                                if blen > bcap:
                                    bpopitem(last=False)
                                    blen -= 1
                                    evicted += 1
        else:
            # StreamEngine.on_consume, as in the Python fast path.
            stream = owner_pop(address, None)
            if stream is not None:
                outstanding = stream.outstanding
                outstanding.discard(address)
                if len(outstanding) < outstanding_cap:
                    spos = stream.next_pos
                    if 0 <= spos < next_pos and spos >= next_pos - hist_cap:
                        record = records[spos % hist_cap]
                        if record is not None:
                            stream.next_pos = spos + 1
                            record_reads += 1
                            rec_t, rec_m = record
                            if rec_t not in owner:
                                owner[rec_t] = stream
                                outstanding.add(rec_t)
                                block_set = rec_t % num_sets
                                if (
                                    rec_t != content_m[block_set]
                                    and rec_t != content_o[block_set]
                                    and rec_t not in bmap
                                ):
                                    bmap[rec_t] = step
                                    blen += 1
                                    issued += 1
                                    if track_llc:
                                        add_pstep(step)
                                        add_paddr(rec_t)
                                    if blen > bcap:
                                        bpopitem(last=False)
                                        blen -= 1
                                        evicted += 1
                            for offset in offsets_table[rec_m]:
                                block = rec_t + offset
                                if block not in owner:
                                    owner[block] = stream
                                    outstanding.add(block)
                                    block_set = block % num_sets
                                    if (
                                        block != content_m[block_set]
                                        and block != content_o[block_set]
                                        and block not in bmap
                                    ):
                                        bmap[block] = step
                                        blen += 1
                                        issued += 1
                                        if track_llc:
                                            add_pstep(step)
                                            add_paddr(block)
                                        if blen > bcap:
                                            bpopitem(last=False)
                                            blen -= 1
                                            evicted += 1
    ages_arr = np.asarray(ages, dtype=np.int64)
    buffer_hits = ages_arr.size
    timely = int(np.count_nonzero(ages_arr >= inflight_c))
    stats.demand_hits = arr.n - misses - buffer_hits
    stats.prefetch_hits = timely
    stats.late_hits = buffer_hits - timely
    stats.misses = misses
    stats.prefetches_issued = issued
    buffer.evicted_unused = evicted
    history._next_pos = next_pos
    compactor._trigger = final_trigger
    compactor._mask = final_mask
    engine.dispatches = dispatches
    engine.record_reads = record_reads
    solution = None
    if capture:
        solution = _PIFLaneSolution()
        solution.misses = misses
        solution.issued = issued
        solution.evicted = evicted
        solution.dispatches = dispatches
        solution.record_reads = record_reads
        solution.ages = ages_arr
        solution.records = list(records)
        solution.next_pos = next_pos
        solution.index_items = list(index_entries.items())
        solution.final_trigger = final_trigger
        solution.final_mask = final_mask
        solution.buffer_items = list(bmap.items())
        slot_of = {id(stream): slot for slot, stream in enumerate(streams)}
        solution.streams = [
            (stream.next_pos, list(stream.outstanding)) for stream in streams
        ]
        solution.owner_items = [
            (block, slot_of[id(stream)]) for block, stream in owner.items()
        ]
        solution.d_steps = np.asarray(demand_steps, dtype=np.int64)
        solution.d_addrs = np.asarray(demand_addrs, dtype=np.int64)
        solution.p_steps = np.asarray(pf_steps, dtype=np.int64)
        solution.p_addrs = np.asarray(pf_addrs, dtype=np.int64)
    return solution, (demand_steps, demand_addrs, pf_steps, pf_addrs)


# ---------------------------------------------------------------------------
# SHIFT / consolidated SHIFT (shared history, epoch-split)


#: Cross-run memo of solved SHIFT runs.  A SHIFT run is a pure function of
#: (traces, group structure, SHIFT configuration, starting state) — the
#: state entering the key as the prefetcher/buffer digests: the per-lane
#: counters and LLC event streams plus each group's final
#: history/index/compactor state are captured once and replayed onto later
#: runs' objects — the same contract as ``_PIF_CACHE``, extended with the
#: shared-group write-back.  Only the in-flight classification
#: (stats-only) is applied per run.
_SHIFT_CACHE: "OrderedDict[tuple, tuple]" = OrderedDict()
_SHIFT_CACHE_MAX = 512


class _ShiftLaneSolution:
    """Everything one fresh-state SHIFT stream lane run produces."""

    __slots__ = (
        "misses",
        "issued",
        "evicted",
        "dispatches",
        "record_reads",
        "llc_reads",
        "ages",
        "buffer_items",
        "streams",
        "owner_items",
        "d_steps",
        "d_addrs",
        "p_steps",
        "p_addrs",
    )


class _ShiftGroupState:
    """One shared-history group's append schedule for a solved run.

    Stored as the *delta* against the starting state the solution was
    keyed on (the appended records and the final open compactor region),
    so applying it to a live group costs O(appends) — not O(capacity) —
    per chunk.  The memo key pins the starting state exactly, which makes
    replaying the same appends equivalent to storing the final state.

    ``applied`` caches the absolute post-apply (ring, write position,
    index items) captured by the first replay of this schedule: the
    starting state is pinned, so later cache hits assign the final state
    wholesale in C-speed bulk copies instead of re-running the put loop.
    """

    __slots__ = (
        "base_pos",
        "rec_trigger",
        "rec_mask",
        "final_trigger",
        "final_mask",
        "applied",
    )

    def __init__(self, base_pos, rec_trigger, rec_mask, final_trigger, final_mask):
        self.base_pos = base_pos
        self.rec_trigger = rec_trigger
        self.rec_mask = rec_mask
        self.final_trigger = final_trigger
        self.final_mask = final_mask
        self.applied = None


def _run_shift(lanes, inflight: Dict[int, int], prefetcher, llc) -> None:
    config = prefetcher._config
    region_blocks = config.spatial_region.region_blocks
    if region_blocks > 62:
        raise _Unsupported("region masks beyond int64 need the Python loops")
    groups, roles = resolve_stream_roles(lanes, prefetcher)
    for group in groups:
        if group.index._capacity != group.history._capacity:
            # The latest-put closed form relies on index evictions always
            # being stale under the history validity window, which needs
            # index capacity == history capacity (true for every SHIFT
            # construction; guarded for safety).
            raise _Unsupported("index/history capacity mismatch")
    arrays = _lane_arrays_for(lanes)
    records_per_block = config.records_per_llc_block if config.virtualized else 0
    group_sig = tuple(
        (group.core_ids, group.trainer_core, group.history._capacity) for group in groups
    )
    cache_key = (
        tuple(arr.key for arr in arrays),
        tuple(lane[0] for lane in lanes),
        tuple(lane[3]._capacity for lane in lanes),
        region_blocks,
        config.stream_buffer.num_streams,
        config.stream_buffer.lookahead_records,
        config.stream_buffer.capacity_records,
        records_per_block,
        group_sig,
        prefetcher.state_key(),
        tuple(lane[3].state_key() for lane in lanes),
    )
    solved = _cache_get(_SHIFT_CACHE, cache_key)
    if solved is None:
        solved = _solve_shift(
            lanes, arrays, roles, groups, region_blocks, config, records_per_block
        )
        _cache_put(_SHIFT_CACHE, _SHIFT_CACHE_MAX, cache_key, solved)
    _apply_shift_solution(
        lanes, arrays, roles, groups, solved, inflight, llc, cache_key
    )


def _solve_shift(lanes, arrays, roles, groups, region_blocks, config, records_per_block):
    """Solve a SHIFT run without touching any run object.

    Warm (chunk-resume) runs are handled by treating the restored shared
    state as epoch 0's visible prefix: each group's restored ``next_pos``
    becomes the base append position, its history ring and index entries
    seed the per-lane solvers, and the chunk's appends stack on top at
    absolute positions ``base + k``.  Fresh state makes all of that empty
    and reduces to the original construction.
    """
    offsets_table = _expand_offsets(region_blocks)
    num_streams = config.stream_buffer.num_streams
    lookahead = config.stream_buffer.lookahead_records
    outstanding_cap = config.stream_buffer.capacity_records * region_blocks
    # Each group's append schedule comes from its trainer lane's compactor
    # record stream: the trainer feeds the compactor once per round-robin
    # step, so record k is appended at global step rec_step[k].  A group
    # whose trainer core has no live lane appends nothing and keeps its
    # carried compactor state.
    group_records = [
        ([], [], [], group.compactor._trigger, group.compactor._mask)
        for group in groups
    ]
    for lane, arr, role in zip(lanes, arrays, roles):
        if role is not None and role[2]:
            group_records[role[0]] = _records_for(
                arr, groups[role[0]].compactor, region_blocks
            )
    group_bases = [group.history._next_pos for group in groups]
    group_rings = [list(group.history._records) for group in groups]
    group_latest = [dict(group.index._entries) for group in groups]
    lane_solutions = []
    for lane, arr, role in zip(lanes, arrays, roles):
        if role is None:
            lane_solutions.append(None)
            continue
        group_index, engine, _is_trainer = role
        group = groups[group_index]
        rec_step, rec_trigger, rec_mask = group_records[group_index][:3]
        delta = 0 if lane[0] >= group.trainer_core else 1
        slot_of = {id(stream): slot for slot, stream in enumerate(engine._streams)}
        lane_solutions.append(
            _shift_lane_solve(
                arr,
                rec_step,
                rec_trigger,
                rec_mask,
                delta,
                group.history._capacity,
                offsets_table,
                num_streams,
                lookahead,
                outstanding_cap,
                records_per_block,
                lane[3]._capacity,
                group_bases[group_index],
                group_rings[group_index],
                group_latest[group_index],
                [
                    (stream.next_pos, list(stream.outstanding), stream.last_llc_block)
                    for stream in engine._streams
                ],
                [
                    (block, slot_of[id(stream)])
                    for block, stream in engine._owner.items()
                ],
                (engine.dispatches, engine.record_reads, engine.llc_block_reads),
                list(lane[3]._blocks.items()),
                lane[3].evicted_unused,
            )
        )
    group_states = [
        _ShiftGroupState(
            base_pos, records[1], records[2], records[3], records[4]
        )
        for group, records, base_pos in zip(groups, group_records, group_bases)
    ]
    return lane_solutions, group_states


def _shift_lane_solve(
    arr: _LaneArrays,
    rec_step,
    rec_trigger,
    rec_mask,
    delta: int,
    hist_cap: int,
    offsets_table,
    num_streams: int,
    lookahead: int,
    outstanding_cap: int,
    records_per_llc_block: int,
    buffer_cap: int,
    base_pos: int,
    init_ring,
    init_latest,
    init_streams,
    init_owner,
    init_counters,
    init_buffer,
    init_evicted: int,
) -> _ShiftLaneSolution:
    """Event loop over one SHIFT lane against the precomputed append schedule.

    The shared history is written only by the trainer lane, at the
    precomputed steps ``rec_step`` — between appends it is frozen (an
    epoch), so this lane's replay is independent of every other lane given
    the schedule.  The append at trainer step ``t`` becomes visible to this
    lane at step ``t`` when the lane runs at-or-after the trainer in the
    round-robin core order (``delta == 0``) and at ``t + 1`` otherwise;
    ``visible`` counts the visible *absolute* append positions and stands
    in for the live ``history._next_pos``.  ``latest`` (last visible
    append position per trigger) replaces ``IndexTable.get`` exactly:
    SHIFT's index capacity equals the history capacity, so any
    FIFO-evicted index entry already fails the validity window
    ``visible - hist_cap <= pos < visible``.

    Warm resumes enter through ``base_pos`` (the restored ``next_pos``)
    and the ``init_*`` snapshots: restored appends live at absolute
    positions below ``base_pos`` and are read from ``init_ring`` (every
    position inside the validity window is populated by construction);
    this chunk's appends live at ``base_pos + k`` and are read from the
    schedule arrays.  Nothing here mutates the live run objects — the
    caller replays the returned solution.
    """
    streams: List[_Stream] = []
    for next_pos, outstanding, last_llc_block in init_streams:
        stream = _Stream(0)
        stream.next_pos = next_pos
        stream.outstanding = set(outstanding)
        stream.last_llc_block = last_llc_block
        streams.append(stream)
    owner: Dict[int, _Stream] = {
        block: streams[slot] for block, slot in init_owner
    }
    owner_pop = owner.pop
    latest: Dict[int, int] = dict(init_latest)
    latest_get = latest.get
    bmap: "OrderedDict[int, int]" = OrderedDict(init_buffer)
    bpop = bmap.pop
    bpopitem = bmap.popitem
    blen = len(bmap)
    num_sets = arr.num_sets
    content_m, content_o = _initial_content(arr)
    a_list = arr.a.tolist()
    hit_list = arr.l1_hit.tolist()
    other_list = arr.other_after.tolist()
    set_list = arr.setidx.tolist()
    total = len(rec_step)
    appended = 0
    visible = base_pos
    next_vis = rec_step[0] + delta if total else -1
    dispatches, record_reads, llc_reads = init_counters
    demand_steps: List[int] = []
    demand_addrs: List[int] = []
    pf_steps: List[int] = []
    pf_addrs: List[int] = []
    add_dstep = demand_steps.append
    add_daddr = demand_addrs.append
    add_pstep = pf_steps.append
    add_paddr = pf_addrs.append
    ages: List[int] = []
    add_age = ages.append
    misses = 0
    issued = 0
    evicted = init_evicted
    for step, address, hit in zip(range(arr.n), a_list, hit_list):
        if step == next_vis:
            while appended < total and rec_step[appended] + delta <= step:
                latest[rec_trigger[appended]] = base_pos + appended
                appended += 1
            visible = base_pos + appended
            next_vis = rec_step[appended] + delta if appended < total else -1
        if hit:
            is_miss = False
        else:
            issued_at = bpop(address, None)
            if issued_at is not None:
                blen -= 1
                add_age(step - issued_at)
                is_miss = False
            else:
                misses += 1
                is_miss = True
                add_dstep(step)
                add_daddr(address)
            set_index = set_list[step]
            content_m[set_index] = address
            content_o[set_index] = other_list[step]
        if is_miss:
            # StreamEngine.on_miss against the visible slice of the history.
            stale = owner_pop(address, None)
            if stale is not None:
                stale.outstanding.discard(address)
            pos = latest_get(address)
            if pos is not None and pos >= visible - hist_cap:
                stream = _Stream(pos)
                if len(streams) >= num_streams:
                    retired = streams.pop(0)
                    for block in retired.outstanding:
                        owner_pop(block, None)
                    retired.outstanding.clear()
                streams.append(stream)
                dispatches += 1
                blocks: List[int] = []
                spos = pos
                for _ in range(lookahead):
                    if spos < 0 or spos >= visible or spos < visible - hist_cap:
                        break
                    if records_per_llc_block:
                        llc_block = spos // records_per_llc_block
                        if llc_block != stream.last_llc_block:
                            stream.last_llc_block = llc_block
                            llc_reads += 1
                    spos += 1
                    record_reads += 1
                    if spos > base_pos:
                        rec_t = rec_trigger[spos - 1 - base_pos]
                        rec_m = rec_mask[spos - 1 - base_pos]
                    else:
                        rec_t, rec_m = init_ring[(spos - 1) % hist_cap]
                    blocks.append(rec_t)
                    for offset in offsets_table[rec_m]:
                        blocks.append(rec_t + offset)
                stream.next_pos = spos
                outstanding = stream.outstanding
                for block in blocks:
                    if block not in owner:
                        owner[block] = stream
                        outstanding.add(block)
                        if block != address:
                            block_set = block % num_sets
                            if (
                                block != content_m[block_set]
                                and block != content_o[block_set]
                                and block not in bmap
                            ):
                                bmap[block] = step
                                blen += 1
                                issued += 1
                                add_pstep(step)
                                add_paddr(block)
                                if blen > buffer_cap:
                                    bpopitem(last=False)
                                    blen -= 1
                                    evicted += 1
        else:
            # StreamEngine.on_consume against the visible slice.
            stream = owner_pop(address, None)
            if stream is not None:
                outstanding = stream.outstanding
                outstanding.discard(address)
                if len(outstanding) < outstanding_cap:
                    spos = stream.next_pos
                    if 0 <= spos < visible and spos >= visible - hist_cap:
                        if records_per_llc_block:
                            llc_block = spos // records_per_llc_block
                            if llc_block != stream.last_llc_block:
                                stream.last_llc_block = llc_block
                                llc_reads += 1
                        stream.next_pos = spos + 1
                        record_reads += 1
                        if spos >= base_pos:
                            rec_t = rec_trigger[spos - base_pos]
                            rec_m = rec_mask[spos - base_pos]
                        else:
                            rec_t, rec_m = init_ring[spos % hist_cap]
                        if rec_t not in owner:
                            owner[rec_t] = stream
                            outstanding.add(rec_t)
                            block_set = rec_t % num_sets
                            if (
                                rec_t != content_m[block_set]
                                and rec_t != content_o[block_set]
                                and rec_t not in bmap
                            ):
                                bmap[rec_t] = step
                                blen += 1
                                issued += 1
                                add_pstep(step)
                                add_paddr(rec_t)
                                if blen > buffer_cap:
                                    bpopitem(last=False)
                                    blen -= 1
                                    evicted += 1
                        for offset in offsets_table[rec_m]:
                            block = rec_t + offset
                            if block not in owner:
                                owner[block] = stream
                                outstanding.add(block)
                                block_set = block % num_sets
                                if (
                                    block != content_m[block_set]
                                    and block != content_o[block_set]
                                    and block not in bmap
                                ):
                                    bmap[block] = step
                                    blen += 1
                                    issued += 1
                                    add_pstep(step)
                                    add_paddr(block)
                                    if blen > buffer_cap:
                                        bpopitem(last=False)
                                        blen -= 1
                                        evicted += 1
    solution = _ShiftLaneSolution()
    solution.misses = misses
    solution.issued = issued
    solution.evicted = evicted
    solution.dispatches = dispatches
    solution.record_reads = record_reads
    solution.llc_reads = llc_reads
    solution.ages = np.asarray(ages, dtype=np.int64)
    solution.buffer_items = list(bmap.items())
    slot_of = {id(stream): slot for slot, stream in enumerate(streams)}
    solution.streams = [
        (stream.next_pos, list(stream.outstanding), stream.last_llc_block)
        for stream in streams
    ]
    solution.owner_items = [
        (block, slot_of[id(stream)]) for block, stream in owner.items()
    ]
    solution.d_steps = np.asarray(demand_steps, dtype=np.int64)
    solution.d_addrs = np.asarray(demand_addrs, dtype=np.int64)
    solution.p_steps = np.asarray(pf_steps, dtype=np.int64)
    solution.p_addrs = np.asarray(pf_addrs, dtype=np.int64)
    return solution


def _apply_shift_solution(
    lanes, arrays, roles, groups, solved, inflight, llc, cache_key
) -> None:
    """Replay a solved SHIFT run onto this run's objects.

    Per-lane solutions store *absolute* final state, so lane containers
    are cleared before being set (an ``update`` on warm state would keep
    an existing key's old OrderedDict position); for fresh objects the
    clears are no-ops.  Group state is applied as the solved append-
    schedule delta (see :class:`_ShiftGroupState`).
    """
    lane_solutions, group_states = solved
    per_lane = []
    for lane, arr, role, solution in zip(lanes, arrays, roles, lane_solutions):
        core_id, _addresses, cache, buffer, stats = lane
        _write_l1_state(cache, arr)
        if role is None:
            # Passive lane (core outside every group): a pure baseline lane.
            hits = int(np.count_nonzero(arr.l1_hit))
            stats.demand_hits = hits
            stats.misses = arr.n - hits
            if llc is not None:
                miss_steps = np.flatnonzero(~arr.l1_hit)
                per_lane.append((stats, miss_steps, arr.a[miss_steps], None, None))
            continue
        _group_index, engine, _is_trainer = role
        buffer._blocks.clear()
        buffer._blocks.update(solution.buffer_items)
        buffer.evicted_unused = solution.evicted
        streams = [_Stream(0) for _ in solution.streams]
        for stream, (next_pos, outstanding, last_llc_block) in zip(
            streams, solution.streams
        ):
            stream.next_pos = next_pos
            stream.outstanding = set(outstanding)
            stream.last_llc_block = last_llc_block
        engine._streams[:] = streams
        engine._owner.clear()
        engine._owner.update(
            (block, streams[slot]) for block, slot in solution.owner_items
        )
        engine.dispatches = solution.dispatches
        engine.record_reads = solution.record_reads
        engine.llc_block_reads = solution.llc_reads
        inflight_c = inflight[core_id]
        buffer_hits = solution.ages.size
        timely = int(np.count_nonzero(solution.ages >= inflight_c))
        stats.demand_hits = arr.n - solution.misses - buffer_hits
        stats.prefetch_hits = timely
        stats.late_hits = buffer_hits - timely
        stats.misses = solution.misses
        stats.prefetches_issued = solution.issued
        if llc is not None:
            per_lane.append(
                _pif_events_entry(
                    lane,
                    solution.d_steps.size,
                    solution.p_steps.size,
                    np.concatenate([solution.d_steps, solution.p_steps]),
                    np.concatenate([solution.d_addrs, solution.p_addrs]),
                )
            )
    for group, state in zip(groups, group_states):
        history = group.history
        entries = group.index._entries
        if state.applied is not None:
            # Pinned starting state + same schedule = same final state:
            # bulk-assign the snapshot captured by the first replay.
            ring_final, next_pos, index_items = state.applied
            history._records[:] = ring_final
            history._next_pos = next_pos
            entries.clear()
            entries.update(index_items)
            group.compactor._trigger = state.final_trigger
            group.compactor._mask = state.final_mask
            continue
        # Exact trainer-loop replay (HistoryBuffer.append + IndexTable.put)
        # of the solved append schedule onto the live group: O(appends) per
        # chunk, and identical to storing the final state because the memo
        # key pins the starting state the schedule was solved against.
        rec_trigger, rec_mask = state.rec_trigger, state.rec_mask
        total = len(rec_trigger)
        base_pos, cap = state.base_pos, history._capacity
        ring = history._records
        for pos in range(max(0, total - cap), total):
            ring[(base_pos + pos) % cap] = (rec_trigger[pos], rec_mask[pos])
        history._next_pos = base_pos + total
        for pos in range(total):
            trigger = rec_trigger[pos]
            if trigger in entries:
                entries[trigger] = base_pos + pos
                entries.move_to_end(trigger)
            else:
                entries[trigger] = base_pos + pos
                if len(entries) > cap:
                    entries.popitem(last=False)
        group.compactor._trigger = state.final_trigger
        group.compactor._mask = state.final_mask
        state.applied = (
            tuple(ring),
            history._next_pos,
            tuple(entries.items()),
        )
    _replay_llc(llc, per_lane, ("shift", cache_key))


# ---------------------------------------------------------------------------
# Backend


class NumPyBackend(Backend):
    """Batch-vectorized loops for the built-in engine families.

    SHIFT's shared-history round-robin is split into epochs at its
    precomputed history-append boundaries; custom prefetchers run through
    the Python backend, as do configurations outside the vectorized
    loops' closed forms — the results are identical either way.
    """

    name = "numpy"

    def __init__(self) -> None:
        self._python = PythonBackend()

    def run(self, lanes, inflight: Dict[int, int], prefetcher, llc=None) -> None:
        ptype = type(prefetcher)
        try:
            if ptype is NullPrefetcher or ptype is Prefetcher:
                _run_baseline(lanes, llc)
                return
            if ptype is NextLinePrefetcher:
                if _run_next_line(lanes, inflight, prefetcher._degree, llc):
                    return
                # The buffer would overflow: the per-block decoupling no
                # longer holds.  Nothing was mutated; replay in Python.
            elif ptype is PIFPrefetcher:
                _run_pif(lanes, inflight, prefetcher, llc)
                return
            elif ptype is SHIFTPrefetcher or ptype is ConsolidatedSHIFTPrefetcher:
                _run_shift(lanes, inflight, prefetcher, llc)
                return
        except _Unsupported:
            pass
        self._python.run(lanes, inflight, prefetcher, llc)

    def prewarm(self, traces, l1_config) -> None:
        """Precompute trace-pure per-lane arrays for upcoming windows.

        The chunked engine calls this on a helper thread with chunk
        ``k+1``'s trace windows while chunk ``k`` replays, overlapping the
        fingerprint/argsort/forward-fill work with the event loops.  Only
        the fresh (state-independent) arrays can be built ahead of time —
        warm overlays need the not-yet-known chunk-``k`` final state, but
        they are thin derivations on top of these.  Best-effort: anything
        unsupported simply stays cold and is handled at run time.
        """
        for trace in traces:
            try:
                a, fingerprint = _trace_columns(trace)
                key = (fingerprint, l1_config.num_sets, l1_config.associativity)
                if _cache_get(_ARRAY_CACHE, key) is None:
                    arrays = _LaneArrays(
                        a, l1_config.num_sets, l1_config.associativity, fingerprint
                    )
                    _cache_put(_ARRAY_CACHE, _ARRAY_CACHE_MAX, key, arrays)
            except _Unsupported:
                continue

    def prewarm_pending(self, traces, l1_config) -> bool:
        """True when any window's base arrays are not yet memoized.

        Fingerprinting a window is microseconds (one SHA-256 over the
        column view) against the ~hundred-microsecond cost of spawning and
        joining the prewarm thread, so the chunked engine probes this
        before every boundary and skips the thread in the warm steady
        state.
        """
        for trace in traces:
            try:
                _a, fingerprint = _trace_columns(trace)
            except _Unsupported:
                continue
            key = (fingerprint, l1_config.num_sets, l1_config.associativity)
            if _cache_get(_ARRAY_CACHE, key) is None:
                return True
        return False


__all__ = ["NumPyBackend"]
