"""NumPy-vectorized simulation backend.

The key structural facts this backend exploits, each of which preserves
*exact* equality with the Python reference loops:

* **L1-I evolution is engine-independent.**  Every engine family handles a
  demand access the same way: LRU-touch on a hit, fill-at-MRU otherwise
  (prefetched blocks are promoted into the cache on first use).  The hit/miss
  outcome of every access is therefore a pure function of the address stream,
  and for the 2-way L1-I of Table I it has a closed form — a set's content
  after any access is ``{last address, last differing address}`` — that
  vectorizes as grouped shift/forward-fill passes (:func:`_lane_arrays`).
* **Spatial compaction is trace-pure.**  The PIF compactor's record stream
  depends only on the addresses, so region boundaries are found by a
  vectorized fixpoint (:func:`_compactor_records`) and the region masks by
  one ``bitwise_or.reduceat`` pass.
* **The next-line buffer decouples per block.**  While the FIFO prefetch
  buffer never overflows (true for every suite workload), each block
  address evolves independently: it is inserted by the first eligible
  prefetch since its last consumption and removed by the next non-hit
  access to it.  That turns the whole engine into sorted-array passes
  over all lanes at once (:func:`_solve_next_line`).  The occupancy
  timeline is reconstructed and checked afterwards; a run that *would*
  overflow is discarded untouched and re-executed through the Python
  loops.
* **LLC outcomes factor per set.**  The shared LLC's round-robin access
  order only matters within a set, and a set holding no more distinct
  blocks than it has ways can never evict, so its outcomes reduce to
  first-occurrence detection — fully vectorized, including the final MRU
  stacks.  Only events mapping to *contended* sets (and any run with
  pinned history blocks) replay through an exact per-event LRU pass
  (:func:`_replay_llc`).  Classification and bank counters are order-free
  aggregations either way.

What stays per-event: PIF's stream machinery (index lookups, stream
dispatch and the per-block owner/buffer bookkeeping) is feedback-coupled
through the prefetch buffer, so it runs as an event loop over the non-hit
accesses — but on top of the precomputed hit flags, record stream and L1
contents, which removes the per-access cache and compactor work.

* **SHIFT's shared history splits into epochs.**  Only the trainer lane
  ever writes the shared history, and the compactor feed is trace-pure,
  so the append *schedule* (which round-robin steps append which record)
  is precomputed once per group.  Between appends the history is frozen —
  an epoch — so each consumer lane's replay depends on the other lanes
  only through that schedule, and the round-robin collapses into
  independent per-lane event loops (:func:`_shift_lane_solve`): a lane's
  view of the history at step ``t`` is exactly the appends whose
  visibility step (the trainer's append step, plus one for lanes that
  precede the trainer in round-robin order) has been reached.  SHIFT's
  index capacity equals its history capacity, so ``IndexTable.get``
  reduces to the last *visible* append position per trigger plus the
  history validity-window check (an evicted index entry is always stale
  under that window).  LLC events are re-merged in the exact round-robin
  order by :func:`_replay_llc`.

Because every one of these computations is a deterministic pure function
of (trace, geometry, engine configuration), the backend memoizes them
across runs keyed by the trace's *content fingerprint* (carried by the
columnar :class:`~repro.workloads.trace.CoreTrace` IR and persisted in the
trace cache's sidecar): the per-lane arrays and containment tables are
shared by all four engine families of an experiment row, and the solved
next-line timelines and fresh-state PIF lane solutions are replayed onto
each run's fresh objects.  Content keys mean the memos stay warm across
*object* boundaries too — a sweep that reloads the same entry from the
memory-mapped cache, or regenerates an identical trace, hits directly,
where the previous ``id(addresses)`` scheme (and the strong-reference
tuples it needed to guard against id reuse) could not.  Per-run
parameters — the in-flight window, buffer capacity, the LLC itself — are
applied after the cached pure core, so results are identical whether a
run hits or misses.

Fallbacks (always exact, never approximate): custom prefetchers serialize
on their ``on_access`` hook, so they run through the Python backend, as
does any lane with an L1 associativity other than 1 or 2, negative block
addresses, a pre-populated prefetch buffer, a next-line run whose buffer
would overflow, or a SHIFT run resumed from non-fresh shared state (the
epoch solver's append schedule assumes an empty history).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...workloads.trace import column_fingerprint
from .._fastpath import resolve_stream_roles
from ..prefetchers import (
    ConsolidatedSHIFTPrefetcher,
    NextLinePrefetcher,
    NullPrefetcher,
    PIFPrefetcher,
    Prefetcher,
    SHIFTPrefetcher,
    _expand_offsets,
    _Stream,
)
from .base import Backend
from .python_backend import PythonBackend

#: Boundary-fixpoint iteration cap; the exact Python scan takes over beyond
#: it (each iteration resolves one more missed boundary per segment, so only
#: adversarial traces — long gently-sloping runs — get anywhere near this).
_MAX_FIXPOINT_ITERS = 64


class _Unsupported(Exception):
    """Raised before any mutation when a lane needs the Python loops."""


def _require_fresh_l1(lanes) -> None:
    """Route warm-L1 lanes to the Python loops before anything is touched.

    Every vectorized solution here (the closed-form 2-way L1 hit mask, the
    fresh-compactor record memos, the epoch-split SHIFT solver) assumes the
    run starts from empty caches.  The chunked engine resumes runs against
    restored warm state: only its first chunk is fresh, so later chunks
    must take the exact Python loops.  Raising before ``_lane_arrays_for``
    also keeps the content-keyed memos from filling up with one entry per
    chunk window.
    """
    for lane in lanes:
        if any(lane[2]._sets):
            raise _Unsupported("resumed warm-L1 state needs the Python loops")


#: Cross-run memo of per-lane trace facts.  Everything in a _LaneArrays is a
#: pure function of (trace content, L1 geometry) and is engine-independent,
#: so the four engines of one experiment row — and repeated bench runs —
#: share one precompute.  Keys are (content fingerprint, sets, ways):
#: content addressing needs no identity validation and survives reloads of
#: the same trace from the memory-mapped cache.
_ARRAY_CACHE: "Dict[Tuple[str, int, int], _LaneArrays]" = {}
_ARRAY_CACHE_MAX = 64

#: Same idea for the spatial compactor's record stream (trace-pure for a
#: fresh compactor), keyed by (content fingerprint, region size) and shared
#: by PIF's per-core compactors and SHIFT's per-group trainer compactors.
_RECORD_CACHE: "Dict[Tuple[str, int], tuple]" = {}
_RECORD_CACHE_MAX = 32


def _cache_put(cache: Dict, limit: int, key, value) -> None:
    if len(cache) >= limit:
        cache.pop(next(iter(cache)))
    cache[key] = value


class _LaneArrays:
    """Vectorized per-lane trace facts (all pure functions of the trace).

    ``key`` is the content-addressed memo key (fingerprint, sets, ways):
    every cross-run cache in this module composes its keys from it, so two
    _LaneArrays built from equal-content traces are interchangeable.
    """

    __slots__ = ("a", "n", "setidx", "l1_hit", "other_after", "order", "num_sets", "key")

    def __init__(
        self,
        addresses: "List[int] | np.ndarray",
        num_sets: int,
        assoc: int,
        fingerprint: Optional[str] = None,
    ) -> None:
        if assoc > 2:
            raise _Unsupported("L1 associativity above 2 has no closed form")
        a = np.asarray(addresses, dtype=np.int64)
        if fingerprint is None:
            fingerprint = column_fingerprint(a)
        self.key = (fingerprint, num_sets, assoc)
        n = a.size
        if n and int(a.min()) < 0:
            raise _Unsupported("negative block addresses break the -1 sentinels")
        setidx = a % num_sets
        order = np.argsort(setidx, kind="stable")
        prev_sorted = np.full(n, -1, dtype=np.int64)
        if n > 1:
            same = setidx[order][1:] == setidx[order][:-1]
            prev_sorted[1:][same] = order[:-1][same]
        prev = np.empty(n, dtype=np.int64)
        prev[order] = prev_sorted
        prev_clip = np.maximum(prev, 0)
        prevaddr = np.where(prev >= 0, a[prev_clip], -1)
        if assoc == 1:
            other_after = np.full(n, -1, dtype=np.int64)
            l1_hit = (prev >= 0) & (a == prevaddr)
        else:
            # A 2-way set's co-resident after access j is the previous
            # address when it differs from a[j], else it carries: a grouped
            # forward fill (safe globally because every group's first
            # element has prevaddr == -1 != a and restarts the fill).
            pa_sorted = prevaddr[order]
            cond = pa_sorted != a[order]
            filled = np.maximum.accumulate(np.where(cond, np.arange(n), -1))
            other_after = np.empty(n, dtype=np.int64)
            other_after[order] = pa_sorted[filled] if n else pa_sorted
            other_prev = np.where(prev >= 0, other_after[prev_clip], -1)
            l1_hit = (prev >= 0) & ((a == prevaddr) | (a == other_prev))
        self.a = a
        self.n = n
        self.setidx = setidx
        self.l1_hit = l1_hit
        self.other_after = other_after
        self.order = order
        self.num_sets = num_sets

    def last_in_set_at(self, targets: np.ndarray, times: np.ndarray) -> np.ndarray:
        """Index of the last access at-or-before ``times`` touching each
        target block's set, or -1 (vectorized containment support)."""
        S = self.num_sets
        tset = targets % S
        out = np.full(targets.size, -1, dtype=np.int64)
        sorted_sets = self.setidx[self.order]
        set_range = np.arange(S)
        starts = np.searchsorted(sorted_sets, set_range, side="left")
        ends = np.searchsorted(sorted_sets, set_range, side="right")
        qorder = np.argsort(tset, kind="stable")
        qsets = tset[qorder]
        qstarts = np.searchsorted(qsets, set_range, side="left")
        qends = np.searchsorted(qsets, set_range, side="right")
        for s in range(S):
            q0, q1 = qstarts[s], qends[s]
            if q0 == q1:
                continue
            occ = self.order[starts[s] : ends[s]]
            sel = qorder[q0:q1]
            pos = np.searchsorted(occ, times[sel], side="right") - 1
            out[sel] = np.where(pos >= 0, occ[np.maximum(pos, 0)], -1)
        return out

    def contains_at(self, targets: np.ndarray, times: np.ndarray) -> np.ndarray:
        """Whether each target block is L1-resident just after ``times``."""
        j = self.last_in_set_at(targets, times)
        jc = np.maximum(j, 0)
        return (j >= 0) & ((self.a[jc] == targets) | (self.other_after[jc] == targets))


def _trace_columns(addresses) -> Tuple[np.ndarray, str]:
    """A lane's int64 column (zero-copy off the IR) and its fingerprint.

    :class:`~repro.workloads.trace.CoreTrace` lanes hand over their
    columnar buffer and carried digest directly; raw sequences (tests,
    ad-hoc lanes) are converted and hashed here.
    """
    column = getattr(addresses, "array", None)
    if column is not None and hasattr(addresses, "fingerprint"):
        return np.asarray(column, dtype=np.int64), addresses.fingerprint
    a = np.asarray(addresses, dtype=np.int64)
    return a, column_fingerprint(a)


def _lane_arrays_for(lanes) -> List[_LaneArrays]:
    """Precompute every lane (pure, memoized) before anything is mutated."""
    out = []
    for _core_id, addresses, cache, _buffer, _stats in lanes:
        a, fingerprint = _trace_columns(addresses)
        key = (fingerprint, cache._num_sets, cache._associativity)
        arrays = _ARRAY_CACHE.get(key)
        if arrays is None:
            arrays = _LaneArrays(a, cache._num_sets, cache._associativity, fingerprint)
            _cache_put(_ARRAY_CACHE, _ARRAY_CACHE_MAX, key, arrays)
        out.append(arrays)
    return out


# ---------------------------------------------------------------------------
# Shared LLC replay


def _replay_llc(llc, per_lane) -> None:
    """Replay per-lane LLC event arrays; equals ``_fastpath._replay_llc``.

    ``per_lane`` holds ``(stats, steps, addrs, kinds, seq)`` per lane in
    core-id order.  ``kinds`` is a demand-flag bool array (None = all
    demand); ``seq`` orders events within one (lane, step) — a demand miss
    carries -1 so it precedes the prefetches its access triggered (None
    when a lane never has two events in a step).  Events are sorted once
    into the merged round-robin order (step-major, lane, seq) by a single
    unique-key argsort; hit/miss outcomes come from a flat python LRU pass
    and everything else is an order-free aggregation.
    """
    if llc is None or not per_lane:
        return
    counts = [entry[1].size for entry in per_lane]
    if sum(counts) == 0:
        return
    steps = np.concatenate([entry[1] for entry in per_lane])
    addrs = np.concatenate([entry[2] for entry in per_lane])
    kinds = np.concatenate(
        [
            entry[3] if entry[3] is not None else np.ones(count, dtype=bool)
            for entry, count in zip(per_lane, counts)
        ]
    )
    seqs = np.concatenate(
        [
            entry[4] if entry[4] is not None else np.zeros(count, dtype=np.int64)
            for entry, count in zip(per_lane, counts)
        ]
    )
    lane_ids = np.repeat(np.arange(len(per_lane)), counts)
    _replay_llc_flat(
        llc, [entry[0] for entry in per_lane], steps, addrs, kinds, lane_ids, seqs
    )


def _replay_llc_flat(llc, stats_list, steps, addrs, kinds, lane_ids, seqs) -> None:
    """Flat-array form of :func:`_replay_llc` (events in any order)."""
    total = steps.size
    if total == 0:
        return
    num_lanes = len(stats_list)
    seq_span = int(seqs.max()) + 2
    merged_key = (steps * num_lanes + lane_ids) * seq_span + (seqs + 1)
    num_sets = llc._num_sets
    sidx = addrs % num_sets
    bank_counts = np.bincount(sidx % llc._banks, minlength=llc._banks)
    for bank, count in enumerate(bank_counts):
        llc.bank_accesses[bank] += int(count)
    if llc._pinned:
        # Pinned history blocks always hit and live outside the LRU stacks
        # (``_access`` returns before touching the set), so their events
        # peel off as unconditional hits; the per-set decomposition below
        # then applies to the rest with the post-pinning capacities.
        pinned = np.fromiter(llc._pinned, dtype=np.int64, count=len(llc._pinned))
        is_pinned = np.isin(addrs, pinned)
        if is_pinned.any():
            _aggregate_llc(
                llc,
                stats_list,
                np.ones(int(np.count_nonzero(is_pinned)), dtype=bool),
                kinds[is_pinned],
                lane_ids[is_pinned],
            )
            keep = ~is_pinned
            addrs = addrs[keep]
            kinds = kinds[keep]
            lane_ids = lane_ids[keep]
            merged_key = merged_key[keep]
            sidx = sidx[keep]
            total = addrs.size
            if total == 0:
                return
    # Group events into (set, address) pairs.  A set holding at most
    # capacity-many distinct addresses (``_avail``: the ways left after any
    # pinning, == associativity otherwise) can never evict, so its outcomes
    # are pure: the merged-order-first event of each pair misses, the rest
    # hit, and the final MRU order is by last occurrence.  Only events in
    # *contended* sets (more distinct addresses than ways) need the exact
    # LRU loop — per-set independence makes the split sound.
    capacity = np.asarray(llc._avail, dtype=np.int64)
    pair_key = sidx * np.int64(int(addrs.max()) + 1) + addrs
    order2 = np.argsort(pair_key)
    sorted_pairs = pair_key[order2]
    run_start = np.empty(total, dtype=bool)
    run_start[0] = True
    run_start[1:] = sorted_pairs[1:] != sorted_pairs[:-1]
    runs = np.flatnonzero(run_start)
    segid = np.cumsum(run_start) - 1
    pair_set = sidx[order2][runs]
    contended_sets = np.bincount(pair_set, minlength=num_sets) > capacity
    mk2 = merged_key[order2]
    first_mk = np.minimum.reduceat(mk2, runs)
    hit2 = mk2 != first_mk[segid]
    pair_contended = contended_sets[pair_set]
    if not pair_contended.any():
        _aggregate_llc(llc, stats_list, hit2, kinds[order2], lane_ids[order2])
        _write_llc_state(llc, mk2, runs, pair_set, addrs[order2][runs], None)
        return
    elem_contended = pair_contended[segid]
    vec = ~elem_contended
    _aggregate_llc(llc, stats_list, hit2[vec], kinds[order2][vec], lane_ids[order2][vec])
    _write_llc_state(llc, mk2, runs, pair_set, addrs[order2][runs], ~pair_contended)
    contended_events = contended_sets[sidx]
    corder = np.argsort(merged_key[contended_events])
    caddr = addrs[contended_events][corder]
    chit = _llc_set_loop(llc, caddr.tolist(), (caddr % num_sets).tolist())
    _aggregate_llc(
        llc,
        stats_list,
        chit,
        kinds[contended_events][corder],
        lane_ids[contended_events][corder],
    )


def _aggregate_llc(llc, stats_list, hit, kind, lane) -> None:
    """Order-free counter rollup for one (sub)set of replayed events."""
    demand_hit = kind & hit
    demand_miss = kind & ~hit
    llc.demand_hits += int(np.count_nonzero(demand_hit))
    llc.demand_misses += int(np.count_nonzero(demand_miss))
    llc.prefetch_hits += int(np.count_nonzero(~kind & hit))
    llc.prefetch_misses += int(np.count_nonzero(~kind & ~hit))
    num_lanes = len(stats_list)
    lane_hits = np.bincount(lane[demand_hit], minlength=num_lanes)
    lane_misses = np.bincount(lane[demand_miss], minlength=num_lanes)
    for lane_index, stats in enumerate(stats_list):
        stats.llc_hits += int(lane_hits[lane_index])
        stats.memory_misses += int(lane_misses[lane_index])


def _write_llc_state(llc, mk2, runs, pair_set, pair_addr, pair_mask) -> None:
    """Materialize uncontended sets' final LRU stacks (MRU-first = last
    occurrence in merged order, most recent first)."""
    last_mk = np.maximum.reduceat(mk2, runs)
    if pair_mask is not None:
        pair_set = pair_set[pair_mask]
        pair_addr = pair_addr[pair_mask]
        last_mk = last_mk[pair_mask]
    state_order = np.lexsort((-last_mk, pair_set))
    set_list = pair_set[state_order].tolist()
    addr_list = pair_addr[state_order].tolist()
    sets = llc._sets
    num_pairs = len(set_list)
    start = 0
    while start < num_pairs:
        set_index = set_list[start]
        end = start + 1
        while end < num_pairs and set_list[end] == set_index:
            end += 1
        sets[set_index] = addr_list[start:end]
        start = end


def _llc_set_loop(llc, addr_list: List[int], sidx_list: List[int]) -> np.ndarray:
    """Flat LLC LRU replay in merged order; returns per-event hit flags."""
    sets = llc._sets
    pinned = llc._pinned
    out: List[bool] = []
    append = out.append
    if pinned:
        avail = llc._avail
        for addr, set_index in zip(addr_list, sidx_list):
            if addr in pinned:
                append(True)
                continue
            lines = sets[set_index]
            if addr in lines:
                if lines[0] != addr:
                    lines.remove(addr)
                    lines.insert(0, addr)
                append(True)
            else:
                lines.insert(0, addr)
                if len(lines) > avail[set_index]:
                    lines.pop()
                append(False)
    else:
        assoc = llc._associativity
        for addr, set_index in zip(addr_list, sidx_list):
            lines = sets[set_index]
            if addr in lines:
                if lines[0] != addr:
                    lines.remove(addr)
                    lines.insert(0, addr)
                append(True)
            else:
                lines.insert(0, addr)
                if len(lines) > assoc:
                    lines.pop()
                append(False)
    return np.fromiter(out, dtype=bool, count=len(out))


# ---------------------------------------------------------------------------
# Baseline (no prefetcher)


def _run_baseline(lanes, llc) -> None:
    arrays = _lane_arrays_for(lanes)
    per_lane = []
    for (_core_id, _addresses, _cache, _buffer, stats), arr in zip(lanes, arrays):
        hits = int(np.count_nonzero(arr.l1_hit))
        stats.demand_hits = hits
        stats.misses = arr.n - hits
        if llc is not None:
            miss_steps = np.flatnonzero(~arr.l1_hit)
            per_lane.append((stats, miss_steps, arr.a[miss_steps], None, None))
    _replay_llc(llc, per_lane)


# ---------------------------------------------------------------------------
# Next-line


def _sort_rank(keys) -> np.ndarray:
    """Argsort by lexicographic (major-first) non-negative integer keys.

    Packs the keys into one int64 composite when the value ranges fit
    (unique composites, so the fast default sort applies); falls back to
    ``np.lexsort`` otherwise.
    """
    combo = keys[0].astype(np.int64, copy=True)
    limit = int(combo.max()) + 1 if combo.size else 1
    for key in keys[1:]:
        span = int(key.max()) + 1 if key.size else 1
        limit *= span
        if limit >= 2**62:
            return np.lexsort(tuple(reversed(keys)))
        combo *= span
        combo += key
    return np.argsort(combo)


#: Cell budget for the dense (lane, time, set) last-access table; above it
#: the per-lane searchsorted path is used instead.
_DENSE_TABLE_CELLS = 16_000_000

#: Cross-run memo of dense containment tables (trace-pure, ~10 MB each).
_TABLE_CACHE: Dict[tuple, tuple] = {}
_TABLE_CACHE_MAX = 4


def _dense_table(arrays):
    """The cached (lane, time, set) last-access table plus padded per-lane
    address/co-resident matrices, or None when over the cell budget."""
    num_lanes = len(arrays)
    max_n = max(arr.n for arr in arrays)
    num_sets = arrays[0].num_sets
    if (
        any(arr.num_sets != num_sets for arr in arrays)
        or num_lanes * max_n * num_sets > _DENSE_TABLE_CELLS
    ):
        return None
    key = tuple(arr.key for arr in arrays)
    value = _TABLE_CACHE.get(key)
    if value is not None:
        return value
    table = np.full((num_lanes, max_n, num_sets), -1, dtype=np.int32)
    lane_sizes = [arr.n for arr in arrays]
    positions = np.concatenate([np.arange(n) for n in lane_sizes])
    lane_rep = np.repeat(np.arange(num_lanes), lane_sizes)
    table[lane_rep, positions, np.concatenate([arr.setidx for arr in arrays])] = positions
    np.maximum.accumulate(table, axis=1, out=table)
    lane_addr = np.full((num_lanes, max_n), -1, dtype=np.int64)
    lane_other = np.full((num_lanes, max_n), -1, dtype=np.int64)
    for index, arr in enumerate(arrays):
        lane_addr[index, : arr.n] = arr.a
        lane_other[index, : arr.n] = arr.other_after
    value = (num_sets, table, lane_addr, lane_other)
    _cache_put(_TABLE_CACHE, _TABLE_CACHE_MAX, key, value)
    return value


def _contains_batch(arrays, lane_of, targets, times) -> np.ndarray:
    """L1 residency of ``targets`` just after access ``times`` on their lanes.

    Dense path: one (lane, time, set) last-access table built with a single
    ``maximum.accumulate`` pass serves every query with one gather.
    """
    dense = _dense_table(arrays)
    if dense is not None:
        num_sets, table, lane_addr, lane_other = dense
        last = table[lane_of, times, targets % num_sets].astype(np.int64)
        last_c = np.maximum(last, 0)
        return (last >= 0) & (
            (lane_addr[lane_of, last_c] == targets) | (lane_other[lane_of, last_c] == targets)
        )
    out = np.empty(targets.size, dtype=bool)
    for index, arr in enumerate(arrays):
        mask = lane_of == index
        if mask.any():
            out[mask] = arr.contains_at(targets[mask], times[mask])
    return out


#: Cross-run memo of solved next-line timelines (pure in trace + degree).
_NEXT_LINE_CACHE: Dict[tuple, tuple] = {}
_NEXT_LINE_CACHE_MAX = 4


class _NextLineSolution:
    """The trace-pure core of a next-line run: which non-hit accesses were
    served by an in-flight prefetch (and when it was issued), which
    prefetches were actually inserted, the buffer's occupancy peaks, the
    final buffer contents and the LLC event stream.  Everything that
    depends on per-run parameters — the in-flight window classification and
    the capacity check — is applied per run in :func:`_run_next_line`."""

    __slots__ = (
        "cons_counts",
        "served",
        "stamp",
        "cons_step",
        "cons_lane",
        "lane_miss",
        "lane_issued",
        "peaks",
        "peak_lanes",
        "leftover",
        "ev_step",
        "ev_addr",
        "ev_lane",
        "ev_kind",
        "ev_seq",
    )


def _solve_next_line(arrays, degree: int) -> _NextLineSolution:
    num_lanes = len(arrays)
    solution = _NextLineSolution()
    nonhits = [np.flatnonzero(~arr.l1_hit) for arr in arrays]
    cons_counts = [nh.size for nh in nonhits]
    total_cons = sum(cons_counts)
    solution.cons_counts = cons_counts
    if total_cons == 0:
        empty = np.empty(0, dtype=np.int64)
        solution.served = np.empty(0, dtype=bool)
        solution.stamp = solution.cons_step = solution.cons_lane = empty
        solution.lane_miss = solution.lane_issued = np.zeros(num_lanes, dtype=np.int64)
        solution.peaks = solution.peak_lanes = empty
        solution.leftover = []
        solution.ev_step = solution.ev_addr = solution.ev_lane = solution.ev_seq = empty
        solution.ev_kind = np.empty(0, dtype=bool)
        return solution
    cons_t = np.concatenate(nonhits)
    cons_x = np.concatenate([arr.a[nh] for arr, nh in zip(arrays, nonhits)])
    cons_lane = np.repeat(np.arange(num_lanes), cons_counts)
    # Prefetch attempts: every non-hit access tries blocks x+1 .. x+degree;
    # an attempt is eligible unless the block is already L1-resident.  The
    # attempt arrays inherit (lane, t, delta) order from the consumers.
    deltas = np.arange(1, degree + 1, dtype=np.int64)
    attempt_y = (cons_x[:, None] + deltas[None, :]).reshape(-1)
    attempt_t = np.repeat(cons_t, degree)
    attempt_lane = np.repeat(cons_lane, degree)
    attempt_delta = np.tile(deltas, total_cons)
    eligible = ~_contains_batch(arrays, attempt_lane, attempt_y, attempt_t)
    prod_y = attempt_y[eligible]
    prod_t = attempt_t[eligible]
    prod_lane = attempt_lane[eligible]
    prod_delta = attempt_delta[eligible]
    # Per-(lane, block) timelines: consumers (non-hit accesses to the
    # block) and eligible producers, time-ordered.  Every consumer pops,
    # and between two consumers only the first producer actually inserts
    # (re-prefetches of an in-flight block are no-ops), so a consumer is
    # served exactly by the first producer in its epoch (= # consumers
    # before it in the block's timeline).
    num_prod = prod_y.size
    ent_lane = np.concatenate([cons_lane, prod_lane])
    ent_y = np.concatenate([cons_x, prod_y])
    ent_t = np.concatenate([cons_t, prod_t])
    ent_delta = np.concatenate([np.zeros(total_cons, dtype=np.int64), prod_delta])
    order = _sort_rank((ent_lane, ent_y, ent_t, ent_delta))
    g_prod = order >= total_cons
    group_key = ent_lane[order] * np.int64(int(ent_y.max()) + 1) + ent_y[order]
    size = order.size
    group_start = np.empty(size, dtype=bool)
    group_start[0] = True
    group_start[1:] = group_key[1:] != group_key[:-1]
    segid = np.cumsum(group_start) - 1
    num_segs = int(segid[-1]) + 1
    is_cons = ~g_prod
    before = np.cumsum(is_cons) - is_cons  # consumers strictly before, global
    base = before[np.flatnonzero(group_start)]
    epoch = before - base[segid]
    epoch_span = max(int(arr.n) for arr in arrays) + 1
    if num_segs * epoch_span >= 2**62:
        raise _Unsupported("trace too large for composite epoch keys")
    key = segid * np.int64(epoch_span) + epoch
    prod_pos = np.flatnonzero(g_prod)
    prod_key = key[prod_pos]
    first = np.ones(prod_pos.size, dtype=bool)
    first[1:] = prod_key[1:] != prod_key[:-1]
    succ_pos = prod_pos[first]
    succ_key = key[succ_pos]
    cons_pos = np.flatnonzero(is_cons)
    orig_cons = order[cons_pos]
    cons_step = cons_t[orig_cons]
    if succ_key.size:
        idx = np.searchsorted(succ_key, key[cons_pos])
        idx_c = np.minimum(idx, succ_key.size - 1)
        served = (idx < succ_key.size) & (succ_key[idx_c] == key[cons_pos])
        stamp = ent_t[order[succ_pos]][idx_c]
    else:
        served = np.zeros(cons_pos.size, dtype=bool)
        stamp = np.zeros(cons_pos.size, dtype=np.int64)
    solution.served = served
    solution.stamp = stamp
    solution.cons_step = cons_step
    solution.cons_lane = cons_lane[orig_cons]
    miss = ~served
    # Map producers back to the original (lane, t, delta)-ordered domain:
    # buffer ops are then already time-sorted per lane, so the occupancy
    # reconstruction needs no further sort.
    served_orig = np.zeros(total_cons, dtype=bool)
    served_orig[orig_cons] = served
    succ_orig = np.zeros(num_prod, dtype=bool)
    succ_orig[order[succ_pos] - total_cons] = True
    pop_idx = np.flatnonzero(served_orig)
    ins_idx = np.flatnonzero(succ_orig)
    if ins_idx.size:
        # Occupancy peaks only after an insert.  For each insert, the
        # buffer level is (# earlier-or-equal inserts) - (# earlier pops)
        # within its lane; pops at the same access precede the insert.
        t_span = np.int64(epoch_span)
        prio_span = np.int64(degree + 2)
        ins_lane = prod_lane[ins_idx]
        pop_lane = cons_lane[pop_idx]
        ins_key = (ins_lane * t_span + prod_t[ins_idx]) * prio_span + prod_delta[ins_idx]
        pop_key = (pop_lane * t_span + cons_t[pop_idx]) * prio_span
        pops_before = np.searchsorted(pop_key, ins_key)
        ins_base = np.zeros(num_lanes + 1, dtype=np.int64)
        np.cumsum(np.bincount(ins_lane, minlength=num_lanes), out=ins_base[1:])
        pop_base = np.zeros(num_lanes + 1, dtype=np.int64)
        np.cumsum(np.bincount(pop_lane, minlength=num_lanes), out=pop_base[1:])
        level = (
            np.arange(ins_key.size) - ins_base[ins_lane] + 1
        ) - (pops_before - pop_base[ins_lane])
        lane_starts = np.flatnonzero(
            np.concatenate([[True], ins_lane[1:] != ins_lane[:-1]])
        )
        solution.peaks = np.maximum.reduceat(level, lane_starts)
        solution.peak_lanes = ins_lane[lane_starts]
    else:
        solution.peaks = np.empty(0, dtype=np.int64)
        solution.peak_lanes = np.empty(0, dtype=np.int64)
    solution.lane_miss = np.bincount(solution.cons_lane[miss], minlength=num_lanes)
    solution.lane_issued = np.bincount(prod_lane[ins_idx], minlength=num_lanes)
    # Blocks still buffered at the end: successful producers in the epoch
    # after their block's last consumer; original order is insertion order.
    cons_per_seg = np.bincount(segid[cons_pos], minlength=num_segs)
    leftover = epoch[succ_pos] == cons_per_seg[segid[succ_pos]]
    if leftover.any():
        left_idx = np.sort(order[succ_pos[leftover]] - total_cons)
        solution.leftover = list(
            zip(
                prod_lane[left_idx].tolist(),
                prod_y[left_idx].tolist(),
                prod_t[left_idx].tolist(),
            )
        )
    else:
        solution.leftover = []
    # LLC events with their within-step recording rank: the demand miss
    # (seq -1) precedes the prefetches its access triggers (delta order).
    num_miss = int(np.count_nonzero(miss))
    solution.ev_step = np.concatenate([cons_step[miss], prod_t[ins_idx]])
    solution.ev_addr = np.concatenate([cons_x[orig_cons][miss], prod_y[ins_idx]])
    solution.ev_lane = np.concatenate([solution.cons_lane[miss], prod_lane[ins_idx]])
    solution.ev_kind = np.concatenate(
        [np.ones(num_miss, dtype=bool), np.zeros(ins_idx.size, dtype=bool)]
    )
    solution.ev_seq = np.concatenate(
        [np.full(num_miss, -1, dtype=np.int64), prod_delta[ins_idx]]
    )
    return solution


def _next_line_solution(arrays, degree: int) -> _NextLineSolution:
    key = (tuple(arr.key for arr in arrays), degree)
    solution = _NEXT_LINE_CACHE.get(key)
    if solution is None:
        solution = _solve_next_line(arrays, degree)
        _cache_put(_NEXT_LINE_CACHE, _NEXT_LINE_CACHE_MAX, key, solution)
    return solution


def _run_next_line(lanes, inflight: Dict[int, int], degree: int, llc) -> bool:
    """Batch-vectorized next-line over all lanes; returns False (with
    nothing mutated) when any lane's buffer would overflow."""
    arrays = _lane_arrays_for(lanes)
    for lane in lanes:
        if len(lane[3]._blocks):
            raise _Unsupported("pre-populated prefetch buffer")
    num_lanes = len(lanes)
    solution = _next_line_solution(arrays, degree)
    capacities = np.asarray([lane[3]._capacity for lane in lanes], dtype=np.int64)
    if solution.peaks.size and (solution.peaks > capacities[solution.peak_lanes]).any():
        return False
    inflight_per_lane = np.asarray([inflight[lane[0]] for lane in lanes], dtype=np.int64)
    timely = solution.served & (
        (solution.cons_step - solution.stamp) >= inflight_per_lane[solution.cons_lane]
    )
    late = solution.served & ~timely
    lane_timely = np.bincount(solution.cons_lane[timely], minlength=num_lanes)
    lane_late = np.bincount(solution.cons_lane[late], minlength=num_lanes)
    for index, (lane, arr) in enumerate(zip(lanes, arrays)):
        stats = lane[4]
        stats.demand_hits = arr.n - solution.cons_counts[index]
        stats.misses = int(solution.lane_miss[index])
        stats.prefetch_hits = int(lane_timely[index])
        stats.late_hits = int(lane_late[index])
        stats.prefetches_issued = int(solution.lane_issued[index])
        lane[3].evicted_unused = 0
    buffers = [lane[3]._blocks for lane in lanes]
    for lane_index, block, issued_at in solution.leftover:
        buffers[lane_index][block] = issued_at
    if llc is not None:
        _replay_llc_flat(
            llc,
            [lane[4] for lane in lanes],
            solution.ev_step,
            solution.ev_addr,
            solution.ev_kind,
            solution.ev_lane,
            solution.ev_seq,
        )
    return True


# ---------------------------------------------------------------------------
# PIF


def _compactor_records(
    a: np.ndarray,
    region_blocks: int,
    init_trigger: Optional[int],
    init_mask: int,
) -> Tuple[List[int], List[int], List[int], int, int]:
    """The SpatialCompactor's record stream over ``a``, vectorized.

    Returns ``(positions, triggers, masks, final_trigger, final_mask)``:
    record ``k`` is emitted while feeding ``a[positions[k]]`` (before the
    access is otherwise processed), and the final open region is the
    compactor's post-run state.
    """
    if init_trigger is not None:
        work = np.concatenate([np.asarray([init_trigger], dtype=np.int64), a])
        shift = 1
    else:
        work = a
        shift = 0
    n = work.size
    # Certain boundaries: |delta| >= region size cannot stay in any region.
    delta = np.diff(work)
    certain = np.flatnonzero((delta <= -region_blocks) | (delta >= region_blocks)) + 1
    bounds = np.concatenate([np.zeros(1, dtype=np.int64), certain])
    arange = np.arange(n)
    for _ in range(_MAX_FIXPOINT_ITERS):
        indicator = np.zeros(n, dtype=np.int64)
        indicator[bounds] = 1
        seg = np.cumsum(indicator) - 1
        offsets = work - work[bounds[seg]]
        violation = (offsets < 0) | (offsets >= region_blocks)
        violation[bounds] = False
        vpos = np.flatnonzero(violation)
        if vpos.size == 0:
            break
        # The first violation of each segment is a true boundary; later
        # positions are re-judged against it next iteration.
        vseg = seg[vpos]
        first = np.ones(vpos.size, dtype=bool)
        first[1:] = vseg[1:] != vseg[:-1]
        bounds = np.unique(np.concatenate([bounds, vpos[first]]))
    else:
        return _compactor_records_python(a, region_blocks, init_trigger, init_mask)
    bits = np.zeros(n, dtype=np.int64)
    positive = offsets > 0
    bits[positive] = np.left_shift(np.int64(1), offsets[positive] - 1)
    masks = np.bitwise_or.reduceat(bits, bounds)
    masks[0] |= init_mask
    rec_pos = (bounds[1:] - shift).tolist()
    rec_trigger = work[bounds[:-1]].tolist()
    rec_mask = masks[:-1].tolist()
    return rec_pos, rec_trigger, rec_mask, int(work[bounds[-1]]), int(masks[-1])


def _compactor_records_python(a, region_blocks, init_trigger, init_mask):
    """Exact scalar scan, for traces where the fixpoint will not converge."""
    trigger = init_trigger
    mask = init_mask if init_trigger is not None else 0
    rec_pos: List[int] = []
    rec_trigger: List[int] = []
    rec_mask: List[int] = []
    for position, address in enumerate(a.tolist()):
        if trigger is None:
            trigger = address
            mask = 0
            continue
        offset = address - trigger
        if 0 <= offset < region_blocks:
            if offset:
                mask |= 1 << (offset - 1)
        else:
            rec_pos.append(position)
            rec_trigger.append(trigger)
            rec_mask.append(mask)
            trigger = address
            mask = 0
    return rec_pos, rec_trigger, rec_mask, trigger, mask


def _records_for(arr: _LaneArrays, compactor, region_blocks: int):
    """Compactor record stream for one lane, memoized for fresh compactors."""
    fresh = compactor._trigger is None and compactor._mask == 0
    key = (arr.key[0], region_blocks)
    if fresh:
        records = _RECORD_CACHE.get(key)
        if records is not None:
            return records
    records = _compactor_records(arr.a, region_blocks, compactor._trigger, compactor._mask)
    if fresh:
        _cache_put(_RECORD_CACHE, _RECORD_CACHE_MAX, key, records)
    return records


#: Cross-run memo of solved PIF lanes.  A PIF run from fresh state is a
#: pure function of (trace, PIF configuration), so the counters, the LLC
#: event stream and the prefetcher's final state are captured once and
#: replayed onto the fresh objects of later runs; only the in-flight
#: classification (stats-only) is applied per run.  Sweeps that revisit a
#: trace with an unchanged PIF configuration (e.g. the LLC-capacity axis)
#: hit this directly.
_PIF_CACHE: Dict[tuple, tuple] = {}
_PIF_CACHE_MAX = 4


class _PIFLaneSolution:
    """Everything one fresh-state PIF lane run produces."""

    __slots__ = (
        "misses",
        "issued",
        "evicted",
        "dispatches",
        "record_reads",
        "ages",
        "records",
        "next_pos",
        "index_items",
        "final_trigger",
        "final_mask",
        "buffer_items",
        "streams",
        "owner_items",
        "d_steps",
        "d_addrs",
        "p_steps",
        "p_addrs",
    )


def _pif_state_is_fresh(prefetcher: PIFPrefetcher, lanes) -> bool:
    """True when nothing has touched the prefetcher or the lane buffers."""
    return (
        all(h._next_pos == 0 for h in prefetcher._histories)
        and all(not i._entries for i in prefetcher._indices)
        and all(c._trigger is None and c._mask == 0 for c in prefetcher._compactors)
        and all(
            not s._streams and not s._owner and s.dispatches == 0 and s.record_reads == 0
            for s in prefetcher._streams
        )
        and all(not lane[3]._blocks and lane[3].evicted_unused == 0 for lane in lanes)
    )


def _apply_pif_solution(lane, arr: _LaneArrays, solution: _PIFLaneSolution, prefetcher, inflight_c):
    """Replay a captured lane solution onto fresh per-run objects."""
    core_id, _addresses, _cache, buffer, stats = lane
    engine = prefetcher._streams[core_id]
    history = prefetcher._histories[core_id]
    index = prefetcher._indices[core_id]
    compactor = prefetcher._compactors[core_id]
    history._records[:] = solution.records
    history._next_pos = solution.next_pos
    index._entries.update(solution.index_items)
    compactor._trigger = solution.final_trigger
    compactor._mask = solution.final_mask
    buffer._blocks.update(solution.buffer_items)
    buffer.evicted_unused = solution.evicted
    streams = [_Stream(0) for _ in solution.streams]
    for stream, (next_pos, outstanding) in zip(streams, solution.streams):
        stream.next_pos = next_pos
        stream.outstanding = set(outstanding)
    engine._streams.extend(streams)
    engine._owner.update(
        (block, streams[slot]) for block, slot in solution.owner_items
    )
    engine.dispatches = solution.dispatches
    engine.record_reads = solution.record_reads
    buffer_hits = solution.ages.size
    timely = int(np.count_nonzero(solution.ages >= inflight_c))
    stats.demand_hits = arr.n - solution.misses - buffer_hits
    stats.prefetch_hits = timely
    stats.late_hits = buffer_hits - timely
    stats.misses = solution.misses
    stats.prefetches_issued = solution.issued


def _pif_events_entry(lane, num_demand, num_pf, steps, addrs):
    return (
        lane[4],
        steps,
        addrs,
        np.concatenate([np.ones(num_demand, dtype=bool), np.zeros(num_pf, dtype=bool)]),
        np.concatenate(
            [np.full(num_demand, -1, dtype=np.int64), np.arange(num_pf, dtype=np.int64)]
        ),
    )


def _run_pif(lanes, inflight: Dict[int, int], prefetcher: PIFPrefetcher, llc) -> None:
    config = prefetcher._config
    region_blocks = config.spatial_region.region_blocks
    if region_blocks > 62:
        raise _Unsupported("region masks beyond int64 need the Python loops")
    arrays = _lane_arrays_for(lanes)
    fresh = _pif_state_is_fresh(prefetcher, lanes)
    cache_key = (
        tuple(arr.key for arr in arrays),
        tuple(lane[0] for lane in lanes),
        tuple(lane[3]._capacity for lane in lanes),
        region_blocks,
        config.stream_buffer.num_streams,
        config.stream_buffer.lookahead_records,
        config.stream_buffer.capacity_records,
        config.history_entries,
        config.index_entries,
    )
    per_lane = []
    if fresh:
        solutions = _PIF_CACHE.get(cache_key)
        if solutions is not None:
            for lane, arr, solution in zip(lanes, arrays, solutions):
                _apply_pif_solution(lane, arr, solution, prefetcher, inflight[lane[0]])
                if llc is not None:
                    per_lane.append(
                        _pif_events_entry(
                            lane,
                            solution.d_steps.size,
                            solution.p_steps.size,
                            np.concatenate([solution.d_steps, solution.p_steps]),
                            np.concatenate([solution.d_addrs, solution.p_addrs]),
                        )
                    )
            _replay_llc(llc, per_lane)
            return
    all_records = [
        _records_for(arr, prefetcher._compactors[lane[0]], region_blocks)
        for lane, arr in zip(lanes, arrays)
    ]
    offsets_table = _expand_offsets(region_blocks)
    num_streams = config.stream_buffer.num_streams
    lookahead = config.stream_buffer.lookahead_records
    outstanding_cap = config.stream_buffer.capacity_records * region_blocks
    solutions = []
    for lane, arr, records in zip(lanes, arrays, all_records):
        solution, events = _pif_lane(
            lane,
            arr,
            records,
            prefetcher,
            inflight[lane[0]],
            llc is not None or fresh,
            offsets_table,
            num_streams,
            lookahead,
            outstanding_cap,
            capture=fresh,
        )
        solutions.append(solution)
        if llc is not None:
            demand_steps, demand_addrs, pf_steps, pf_addrs = events
            per_lane.append(
                _pif_events_entry(
                    lane,
                    len(demand_steps),
                    len(pf_steps),
                    np.asarray(demand_steps + pf_steps, dtype=np.int64),
                    np.asarray(demand_addrs + pf_addrs, dtype=np.int64),
                )
            )
    if fresh:
        _cache_put(_PIF_CACHE, _PIF_CACHE_MAX, cache_key, solutions)
    _replay_llc(llc, per_lane)


def _pif_lane(
    lane,
    arr: _LaneArrays,
    compactor_records,
    prefetcher: PIFPrefetcher,
    inflight_c: int,
    track_llc: bool,
    offsets_table,
    num_streams: int,
    lookahead: int,
    outstanding_cap: int,
    capture: bool = False,
):
    """Event loop over one PIF core: exact mirror of the Python fast path,
    with the per-access cache and compactor work replaced by the
    precomputed hit flags, record stream and 2-way set contents."""
    core_id, _addresses, cache, buffer, stats = lane
    engine = prefetcher._streams[core_id]
    history = prefetcher._histories[core_id]
    index = prefetcher._indices[core_id]
    compactor = prefetcher._compactors[core_id]
    records = history._records
    hist_cap = history._capacity
    next_pos = history._next_pos
    index_entries = index._entries
    index_capacity = index._capacity
    index_get = index_entries.get
    index_move_to_end = index_entries.move_to_end
    index_popitem = index_entries.popitem
    streams = engine._streams
    owner = engine._owner
    owner_pop = owner.pop
    dispatches = engine.dispatches
    record_reads = engine.record_reads
    bmap = buffer._blocks
    bcap = buffer._capacity
    bpop = bmap.pop
    bpopitem = bmap.popitem
    blen = len(bmap)
    num_sets = cache._num_sets
    # L1 set contents after the latest fill: {content_m[s], content_o[s]}.
    # Hits never change a 2-way set's *membership*, so updates happen only
    # on non-hit accesses, from the precomputed co-resident array.
    content_m = [-1] * num_sets
    content_o = [-1] * num_sets
    a_list = arr.a.tolist()
    hit_list = arr.l1_hit.tolist()
    other_list = arr.other_after.tolist()
    set_list = arr.setidx.tolist()
    rec_pos, rec_trigger, rec_mask, final_trigger, final_mask = compactor_records
    rec_count = len(rec_pos)
    rec_index = 0
    next_rec = rec_pos[0] if rec_count else -1
    demand_steps: List[int] = []
    demand_addrs: List[int] = []
    pf_steps: List[int] = []
    pf_addrs: List[int] = []
    add_dstep = demand_steps.append
    add_daddr = demand_addrs.append
    add_pstep = pf_steps.append
    add_paddr = pf_addrs.append
    #: Prefetch-buffer hit ages (step - issue step); classified against the
    #: in-flight window after the loop — the split is stats-only.
    ages: List[int] = []
    add_age = ages.append
    misses = 0
    issued = evicted = 0
    for step, address, hit in zip(range(arr.n), a_list, hit_list):
        if step == next_rec:
            trigger = rec_trigger[rec_index]
            records[next_pos % hist_cap] = (trigger, rec_mask[rec_index])
            if trigger in index_entries:
                index_entries[trigger] = next_pos
                index_move_to_end(trigger)
            else:
                index_entries[trigger] = next_pos
                if len(index_entries) > index_capacity:
                    index_popitem(last=False)
            next_pos += 1
            rec_index += 1
            next_rec = rec_pos[rec_index] if rec_index < rec_count else -1
        if hit:
            is_miss = False
        else:
            issued_at = bpop(address, None)
            if issued_at is not None:
                blen -= 1
                add_age(step - issued_at)
                is_miss = False
            else:
                misses += 1
                is_miss = True
                if track_llc:
                    add_dstep(step)
                    add_daddr(address)
            set_index = set_list[step]
            content_m[set_index] = address
            content_o[set_index] = other_list[step]
        if is_miss:
            # StreamEngine.on_miss, as in the Python fast path.
            stale = owner_pop(address, None)
            if stale is not None:
                stale.outstanding.discard(address)
            pos = index_get(address)
            if pos is not None and 0 <= pos < next_pos and pos >= next_pos - hist_cap:
                stream = _Stream(pos)
                if len(streams) >= num_streams:
                    retired = streams.pop(0)
                    for block in retired.outstanding:
                        owner_pop(block, None)
                    retired.outstanding.clear()
                streams.append(stream)
                dispatches += 1
                blocks: List[int] = []
                spos = pos
                for _ in range(lookahead):
                    if spos < 0 or spos >= next_pos or spos < next_pos - hist_cap:
                        break
                    record = records[spos % hist_cap]
                    if record is None:
                        break
                    spos += 1
                    record_reads += 1
                    rec_t, rec_m = record
                    blocks.append(rec_t)
                    for offset in offsets_table[rec_m]:
                        blocks.append(rec_t + offset)
                stream.next_pos = spos
                outstanding = stream.outstanding
                for block in blocks:
                    if block not in owner:
                        owner[block] = stream
                        outstanding.add(block)
                        if block != address:
                            block_set = block % num_sets
                            if (
                                block != content_m[block_set]
                                and block != content_o[block_set]
                                and block not in bmap
                            ):
                                bmap[block] = step
                                blen += 1
                                issued += 1
                                if track_llc:
                                    add_pstep(step)
                                    add_paddr(block)
                                if blen > bcap:
                                    bpopitem(last=False)
                                    blen -= 1
                                    evicted += 1
        else:
            # StreamEngine.on_consume, as in the Python fast path.
            stream = owner_pop(address, None)
            if stream is not None:
                outstanding = stream.outstanding
                outstanding.discard(address)
                if len(outstanding) < outstanding_cap:
                    spos = stream.next_pos
                    if 0 <= spos < next_pos and spos >= next_pos - hist_cap:
                        record = records[spos % hist_cap]
                        if record is not None:
                            stream.next_pos = spos + 1
                            record_reads += 1
                            rec_t, rec_m = record
                            if rec_t not in owner:
                                owner[rec_t] = stream
                                outstanding.add(rec_t)
                                block_set = rec_t % num_sets
                                if (
                                    rec_t != content_m[block_set]
                                    and rec_t != content_o[block_set]
                                    and rec_t not in bmap
                                ):
                                    bmap[rec_t] = step
                                    blen += 1
                                    issued += 1
                                    if track_llc:
                                        add_pstep(step)
                                        add_paddr(rec_t)
                                    if blen > bcap:
                                        bpopitem(last=False)
                                        blen -= 1
                                        evicted += 1
                            for offset in offsets_table[rec_m]:
                                block = rec_t + offset
                                if block not in owner:
                                    owner[block] = stream
                                    outstanding.add(block)
                                    block_set = block % num_sets
                                    if (
                                        block != content_m[block_set]
                                        and block != content_o[block_set]
                                        and block not in bmap
                                    ):
                                        bmap[block] = step
                                        blen += 1
                                        issued += 1
                                        if track_llc:
                                            add_pstep(step)
                                            add_paddr(block)
                                        if blen > bcap:
                                            bpopitem(last=False)
                                            blen -= 1
                                            evicted += 1
    ages_arr = np.asarray(ages, dtype=np.int64)
    buffer_hits = ages_arr.size
    timely = int(np.count_nonzero(ages_arr >= inflight_c))
    stats.demand_hits = arr.n - misses - buffer_hits
    stats.prefetch_hits = timely
    stats.late_hits = buffer_hits - timely
    stats.misses = misses
    stats.prefetches_issued = issued
    buffer.evicted_unused = evicted
    history._next_pos = next_pos
    compactor._trigger = final_trigger
    compactor._mask = final_mask
    engine.dispatches = dispatches
    engine.record_reads = record_reads
    solution = None
    if capture:
        solution = _PIFLaneSolution()
        solution.misses = misses
        solution.issued = issued
        solution.evicted = evicted
        solution.dispatches = dispatches
        solution.record_reads = record_reads
        solution.ages = ages_arr
        solution.records = list(records)
        solution.next_pos = next_pos
        solution.index_items = list(index_entries.items())
        solution.final_trigger = final_trigger
        solution.final_mask = final_mask
        solution.buffer_items = list(bmap.items())
        slot_of = {id(stream): slot for slot, stream in enumerate(streams)}
        solution.streams = [
            (stream.next_pos, list(stream.outstanding)) for stream in streams
        ]
        solution.owner_items = [
            (block, slot_of[id(stream)]) for block, stream in owner.items()
        ]
        solution.d_steps = np.asarray(demand_steps, dtype=np.int64)
        solution.d_addrs = np.asarray(demand_addrs, dtype=np.int64)
        solution.p_steps = np.asarray(pf_steps, dtype=np.int64)
        solution.p_addrs = np.asarray(pf_addrs, dtype=np.int64)
    return solution, (demand_steps, demand_addrs, pf_steps, pf_addrs)


# ---------------------------------------------------------------------------
# SHIFT / consolidated SHIFT (shared history, epoch-split)


#: Cross-run memo of solved SHIFT runs.  A SHIFT run from fresh shared
#: state is a pure function of (traces, group structure, SHIFT
#: configuration): the per-lane counters and LLC event streams plus each
#: group's final history/index/compactor state are captured once and
#: replayed onto the fresh objects of later runs — the same contract as
#: ``_PIF_CACHE``, extended with the shared-group write-back.  Only the
#: in-flight classification (stats-only) is applied per run.
_SHIFT_CACHE: Dict[tuple, tuple] = {}
_SHIFT_CACHE_MAX = 4


class _ShiftLaneSolution:
    """Everything one fresh-state SHIFT stream lane run produces."""

    __slots__ = (
        "misses",
        "issued",
        "evicted",
        "dispatches",
        "record_reads",
        "llc_reads",
        "ages",
        "buffer_items",
        "streams",
        "owner_items",
        "d_steps",
        "d_addrs",
        "p_steps",
        "p_addrs",
    )


class _ShiftGroupState:
    """One shared-history group's final state after a fresh-state run."""

    __slots__ = ("records", "next_pos", "index_items", "final_trigger", "final_mask")

    def __init__(self, records, next_pos, index_items, final_trigger, final_mask):
        self.records = records
        self.next_pos = next_pos
        self.index_items = index_items
        self.final_trigger = final_trigger
        self.final_mask = final_mask


def _shift_state_is_fresh(groups, roles, lanes) -> bool:
    """True when nothing has touched the shared state or the lane buffers."""
    for group in groups:
        if group.history._next_pos or group.index._entries:
            return False
        if group.compactor._trigger is not None or group.compactor._mask:
            return False
    for lane, role in zip(lanes, roles):
        if lane[3]._blocks or lane[3].evicted_unused:
            return False
        if role is None:
            continue
        engine = role[1]
        if (
            engine._streams
            or engine._owner
            or engine.dispatches
            or engine.record_reads
            or engine.llc_block_reads
        ):
            return False
    return True


def _run_shift(lanes, inflight: Dict[int, int], prefetcher, llc) -> None:
    config = prefetcher._config
    region_blocks = config.spatial_region.region_blocks
    if region_blocks > 62:
        raise _Unsupported("region masks beyond int64 need the Python loops")
    groups, roles = resolve_stream_roles(lanes, prefetcher)
    for group in groups:
        if group.index._capacity != group.history._capacity:
            # The latest-put closed form relies on index evictions always
            # being stale under the history validity window, which needs
            # index capacity == history capacity (true for every SHIFT
            # construction; guarded for safety).
            raise _Unsupported("index/history capacity mismatch")
    arrays = _lane_arrays_for(lanes)
    if not _shift_state_is_fresh(groups, roles, lanes):
        raise _Unsupported("resumed shared-history state needs the Python loops")
    records_per_block = config.records_per_llc_block if config.virtualized else 0
    group_sig = tuple(
        (group.core_ids, group.trainer_core, group.history._capacity) for group in groups
    )
    cache_key = (
        tuple(arr.key for arr in arrays),
        tuple(lane[0] for lane in lanes),
        tuple(lane[3]._capacity for lane in lanes),
        region_blocks,
        config.stream_buffer.num_streams,
        config.stream_buffer.lookahead_records,
        config.stream_buffer.capacity_records,
        records_per_block,
        group_sig,
    )
    solved = _SHIFT_CACHE.get(cache_key)
    if solved is None:
        solved = _solve_shift(
            lanes, arrays, roles, groups, region_blocks, config, records_per_block
        )
        _cache_put(_SHIFT_CACHE, _SHIFT_CACHE_MAX, cache_key, solved)
    _apply_shift_solution(lanes, arrays, roles, groups, solved, inflight, llc)


def _solve_shift(lanes, arrays, roles, groups, region_blocks, config, records_per_block):
    """Solve a fresh-state SHIFT run without touching any run object."""
    offsets_table = _expand_offsets(region_blocks)
    num_streams = config.stream_buffer.num_streams
    lookahead = config.stream_buffer.lookahead_records
    outstanding_cap = config.stream_buffer.capacity_records * region_blocks
    # Each group's append schedule comes from its trainer lane's compactor
    # record stream: the trainer feeds the compactor once per round-robin
    # step, so record k is appended at global step rec_step[k].  A group
    # whose trainer core has no trace never appends.
    empty = ([], [], [], None, 0)
    group_records = [empty] * len(groups)
    for lane, arr, role in zip(lanes, arrays, roles):
        if role is not None and role[2]:
            group_records[role[0]] = _records_for(
                arr, groups[role[0]].compactor, region_blocks
            )
    lane_solutions = []
    for lane, arr, role in zip(lanes, arrays, roles):
        if role is None:
            lane_solutions.append(None)
            continue
        group_index, _engine, _is_trainer = role
        group = groups[group_index]
        rec_step, rec_trigger, rec_mask = group_records[group_index][:3]
        delta = 0 if lane[0] >= group.trainer_core else 1
        lane_solutions.append(
            _shift_lane_solve(
                arr,
                rec_step,
                rec_trigger,
                rec_mask,
                delta,
                group.history._capacity,
                offsets_table,
                num_streams,
                lookahead,
                outstanding_cap,
                records_per_block,
                lane[3]._capacity,
            )
        )
    group_states = []
    for group, records in zip(groups, group_records):
        rec_step, rec_trigger, rec_mask, final_trigger, final_mask = records
        total = len(rec_step)
        cap = group.history._capacity
        ring: List[Optional[tuple]] = [None] * cap
        for pos in range(max(0, total - cap), total):
            ring[pos % cap] = (rec_trigger[pos], rec_mask[pos])
        # Exact IndexTable.put replay, for the final FIFO/move-to-end order.
        entries: "OrderedDict[int, int]" = OrderedDict()
        for pos in range(total):
            trigger = rec_trigger[pos]
            if trigger in entries:
                entries[trigger] = pos
                entries.move_to_end(trigger)
            else:
                entries[trigger] = pos
                if len(entries) > cap:
                    entries.popitem(last=False)
        group_states.append(
            _ShiftGroupState(ring, total, list(entries.items()), final_trigger, final_mask)
        )
    return lane_solutions, group_states


def _shift_lane_solve(
    arr: _LaneArrays,
    rec_step,
    rec_trigger,
    rec_mask,
    delta: int,
    hist_cap: int,
    offsets_table,
    num_streams: int,
    lookahead: int,
    outstanding_cap: int,
    records_per_llc_block: int,
    buffer_cap: int,
) -> _ShiftLaneSolution:
    """Event loop over one SHIFT lane against the precomputed append schedule.

    The shared history is written only by the trainer lane, at the
    precomputed steps ``rec_step`` — between appends it is frozen (an
    epoch), so this lane's replay is independent of every other lane given
    the schedule.  The append at trainer step ``t`` becomes visible to this
    lane at step ``t`` when the lane runs at-or-after the trainer in the
    round-robin core order (``delta == 0``) and at ``t + 1`` otherwise;
    ``visible`` counts the visible appends and stands in for the live
    ``history._next_pos``.  ``latest`` (last visible append position per
    trigger) replaces ``IndexTable.get`` exactly: SHIFT's index capacity
    equals the history capacity, so any FIFO-evicted index entry already
    fails the validity window ``visible - hist_cap <= pos < visible``.
    """
    streams: List[_Stream] = []
    owner: Dict[int, _Stream] = {}
    owner_pop = owner.pop
    latest: Dict[int, int] = {}
    latest_get = latest.get
    bmap: "OrderedDict[int, int]" = OrderedDict()
    bpop = bmap.pop
    bpopitem = bmap.popitem
    blen = 0
    num_sets = arr.num_sets
    content_m = [-1] * num_sets
    content_o = [-1] * num_sets
    a_list = arr.a.tolist()
    hit_list = arr.l1_hit.tolist()
    other_list = arr.other_after.tolist()
    set_list = arr.setidx.tolist()
    total = len(rec_step)
    visible = 0
    next_vis = rec_step[0] + delta if total else -1
    dispatches = record_reads = llc_reads = 0
    demand_steps: List[int] = []
    demand_addrs: List[int] = []
    pf_steps: List[int] = []
    pf_addrs: List[int] = []
    add_dstep = demand_steps.append
    add_daddr = demand_addrs.append
    add_pstep = pf_steps.append
    add_paddr = pf_addrs.append
    ages: List[int] = []
    add_age = ages.append
    misses = 0
    issued = evicted = 0
    for step, address, hit in zip(range(arr.n), a_list, hit_list):
        if step == next_vis:
            while visible < total and rec_step[visible] + delta <= step:
                latest[rec_trigger[visible]] = visible
                visible += 1
            next_vis = rec_step[visible] + delta if visible < total else -1
        if hit:
            is_miss = False
        else:
            issued_at = bpop(address, None)
            if issued_at is not None:
                blen -= 1
                add_age(step - issued_at)
                is_miss = False
            else:
                misses += 1
                is_miss = True
                add_dstep(step)
                add_daddr(address)
            set_index = set_list[step]
            content_m[set_index] = address
            content_o[set_index] = other_list[step]
        if is_miss:
            # StreamEngine.on_miss against the visible slice of the history.
            stale = owner_pop(address, None)
            if stale is not None:
                stale.outstanding.discard(address)
            pos = latest_get(address)
            if pos is not None and pos >= visible - hist_cap:
                stream = _Stream(pos)
                if len(streams) >= num_streams:
                    retired = streams.pop(0)
                    for block in retired.outstanding:
                        owner_pop(block, None)
                    retired.outstanding.clear()
                streams.append(stream)
                dispatches += 1
                blocks: List[int] = []
                spos = pos
                for _ in range(lookahead):
                    if spos < 0 or spos >= visible or spos < visible - hist_cap:
                        break
                    if records_per_llc_block:
                        llc_block = spos // records_per_llc_block
                        if llc_block != stream.last_llc_block:
                            stream.last_llc_block = llc_block
                            llc_reads += 1
                    spos += 1
                    record_reads += 1
                    rec_t = rec_trigger[spos - 1]
                    blocks.append(rec_t)
                    for offset in offsets_table[rec_mask[spos - 1]]:
                        blocks.append(rec_t + offset)
                stream.next_pos = spos
                outstanding = stream.outstanding
                for block in blocks:
                    if block not in owner:
                        owner[block] = stream
                        outstanding.add(block)
                        if block != address:
                            block_set = block % num_sets
                            if (
                                block != content_m[block_set]
                                and block != content_o[block_set]
                                and block not in bmap
                            ):
                                bmap[block] = step
                                blen += 1
                                issued += 1
                                add_pstep(step)
                                add_paddr(block)
                                if blen > buffer_cap:
                                    bpopitem(last=False)
                                    blen -= 1
                                    evicted += 1
        else:
            # StreamEngine.on_consume against the visible slice.
            stream = owner_pop(address, None)
            if stream is not None:
                outstanding = stream.outstanding
                outstanding.discard(address)
                if len(outstanding) < outstanding_cap:
                    spos = stream.next_pos
                    if 0 <= spos < visible and spos >= visible - hist_cap:
                        if records_per_llc_block:
                            llc_block = spos // records_per_llc_block
                            if llc_block != stream.last_llc_block:
                                stream.last_llc_block = llc_block
                                llc_reads += 1
                        stream.next_pos = spos + 1
                        record_reads += 1
                        rec_t = rec_trigger[spos]
                        rec_m = rec_mask[spos]
                        if rec_t not in owner:
                            owner[rec_t] = stream
                            outstanding.add(rec_t)
                            block_set = rec_t % num_sets
                            if (
                                rec_t != content_m[block_set]
                                and rec_t != content_o[block_set]
                                and rec_t not in bmap
                            ):
                                bmap[rec_t] = step
                                blen += 1
                                issued += 1
                                add_pstep(step)
                                add_paddr(rec_t)
                                if blen > buffer_cap:
                                    bpopitem(last=False)
                                    blen -= 1
                                    evicted += 1
                        for offset in offsets_table[rec_m]:
                            block = rec_t + offset
                            if block not in owner:
                                owner[block] = stream
                                outstanding.add(block)
                                block_set = block % num_sets
                                if (
                                    block != content_m[block_set]
                                    and block != content_o[block_set]
                                    and block not in bmap
                                ):
                                    bmap[block] = step
                                    blen += 1
                                    issued += 1
                                    add_pstep(step)
                                    add_paddr(block)
                                    if blen > buffer_cap:
                                        bpopitem(last=False)
                                        blen -= 1
                                        evicted += 1
    solution = _ShiftLaneSolution()
    solution.misses = misses
    solution.issued = issued
    solution.evicted = evicted
    solution.dispatches = dispatches
    solution.record_reads = record_reads
    solution.llc_reads = llc_reads
    solution.ages = np.asarray(ages, dtype=np.int64)
    solution.buffer_items = list(bmap.items())
    slot_of = {id(stream): slot for slot, stream in enumerate(streams)}
    solution.streams = [
        (stream.next_pos, list(stream.outstanding), stream.last_llc_block)
        for stream in streams
    ]
    solution.owner_items = [
        (block, slot_of[id(stream)]) for block, stream in owner.items()
    ]
    solution.d_steps = np.asarray(demand_steps, dtype=np.int64)
    solution.d_addrs = np.asarray(demand_addrs, dtype=np.int64)
    solution.p_steps = np.asarray(pf_steps, dtype=np.int64)
    solution.p_addrs = np.asarray(pf_addrs, dtype=np.int64)
    return solution


def _apply_shift_solution(lanes, arrays, roles, groups, solved, inflight, llc) -> None:
    """Replay a solved SHIFT run onto this run's fresh objects."""
    lane_solutions, group_states = solved
    per_lane = []
    for lane, arr, role, solution in zip(lanes, arrays, roles, lane_solutions):
        core_id, _addresses, _cache, buffer, stats = lane
        if role is None:
            # Passive lane (core outside every group): a pure baseline lane.
            hits = int(np.count_nonzero(arr.l1_hit))
            stats.demand_hits = hits
            stats.misses = arr.n - hits
            if llc is not None:
                miss_steps = np.flatnonzero(~arr.l1_hit)
                per_lane.append((stats, miss_steps, arr.a[miss_steps], None, None))
            continue
        _group_index, engine, _is_trainer = role
        buffer._blocks.update(solution.buffer_items)
        buffer.evicted_unused = solution.evicted
        streams = [_Stream(0) for _ in solution.streams]
        for stream, (next_pos, outstanding, last_llc_block) in zip(
            streams, solution.streams
        ):
            stream.next_pos = next_pos
            stream.outstanding = set(outstanding)
            stream.last_llc_block = last_llc_block
        engine._streams.extend(streams)
        engine._owner.update(
            (block, streams[slot]) for block, slot in solution.owner_items
        )
        engine.dispatches = solution.dispatches
        engine.record_reads = solution.record_reads
        engine.llc_block_reads = solution.llc_reads
        inflight_c = inflight[core_id]
        buffer_hits = solution.ages.size
        timely = int(np.count_nonzero(solution.ages >= inflight_c))
        stats.demand_hits = arr.n - solution.misses - buffer_hits
        stats.prefetch_hits = timely
        stats.late_hits = buffer_hits - timely
        stats.misses = solution.misses
        stats.prefetches_issued = solution.issued
        if llc is not None:
            per_lane.append(
                _pif_events_entry(
                    lane,
                    solution.d_steps.size,
                    solution.p_steps.size,
                    np.concatenate([solution.d_steps, solution.p_steps]),
                    np.concatenate([solution.d_addrs, solution.p_addrs]),
                )
            )
    for group, state in zip(groups, group_states):
        group.history._records[:] = state.records
        group.history._next_pos = state.next_pos
        group.index._entries.update(state.index_items)
        group.compactor._trigger = state.final_trigger
        group.compactor._mask = state.final_mask
    _replay_llc(llc, per_lane)


# ---------------------------------------------------------------------------
# Backend


class NumPyBackend(Backend):
    """Batch-vectorized loops for the built-in engine families.

    SHIFT's shared-history round-robin is split into epochs at its
    precomputed history-append boundaries; custom prefetchers run through
    the Python backend, as do configurations outside the vectorized
    loops' closed forms — the results are identical either way.
    """

    name = "numpy"

    def __init__(self) -> None:
        self._python = PythonBackend()

    def run(self, lanes, inflight: Dict[int, int], prefetcher, llc=None) -> None:
        ptype = type(prefetcher)
        try:
            _require_fresh_l1(lanes)
            if ptype is NullPrefetcher or ptype is Prefetcher:
                _run_baseline(lanes, llc)
                return
            if ptype is NextLinePrefetcher:
                if _run_next_line(lanes, inflight, prefetcher._degree, llc):
                    return
                # The buffer would overflow: the per-block decoupling no
                # longer holds.  Nothing was mutated; replay in Python.
            elif ptype is PIFPrefetcher:
                _run_pif(lanes, inflight, prefetcher, llc)
                return
            elif ptype is SHIFTPrefetcher or ptype is ConsolidatedSHIFTPrefetcher:
                _run_shift(lanes, inflight, prefetcher, llc)
                return
        except _Unsupported:
            pass
        self._python.run(lanes, inflight, prefetcher, llc)


__all__ = ["NumPyBackend"]
