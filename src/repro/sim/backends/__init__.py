"""Pluggable execution backends for the simulation kernel.

The simulation *semantics* live in :mod:`repro.sim.prefetchers`,
:mod:`repro.sim.cache` and :mod:`repro.sim.llc`; a backend is purely an
execution strategy for replaying the traces through them.  Two ship here:

* ``python`` — the per-family inlined CPython loops of
  :mod:`repro.sim._fastpath` (the reference implementation);
* ``numpy`` — batch-vectorized array passes for the state-private engine
  families (baseline, next-line, PIF), falling back per-event — and, for
  SHIFT's shared-history round-robin, entirely — to the Python loops.

Backends never change results: every counter, the prefetcher's mutable
state, the prefetch-buffer contents and the LLC statistics are exactly
those of the reference round-robin loop, so experiment reports are
byte-identical across backends (``tests/test_backends.py`` pins this).
Selection is ``--backend`` / ``backend=`` > ``REPRO_BACKEND`` > ``python``.
"""

from .base import (
    Backend,
    available_backends,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend_name,
)
from .base import _missing_module_reason
from .python_backend import PythonBackend

register_backend("python", PythonBackend)


def _numpy_backend() -> Backend:
    from .numpy_backend import NumPyBackend

    return NumPyBackend()


register_backend("numpy", _numpy_backend, _missing_module_reason("numpy"))

__all__ = [
    "Backend",
    "PythonBackend",
    "available_backends",
    "backend_names",
    "get_backend",
    "register_backend",
    "resolve_backend_name",
]
