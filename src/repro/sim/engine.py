"""The multi-core trace-driven simulation loop.

Cores are stepped round-robin, one access per core per step, which keeps
shared structures (the SHIFT history and index) warming up concurrently with
the consumers — a sequential per-core loop would let the trainer finish its
whole trace before any other core issues a lookup, which is both unrealistic
and unfairly favourable.

For engines whose state is entirely per-core (the baseline, next-line and
PIF) the interleaving is unobservable: core ``c``'s ``k``-th access always
happens at global step ``k`` whichever order lanes are visited.  How the
replay is *executed* is delegated to a :class:`~repro.sim.backends.Backend`
(``backend=`` / ``--backend`` / ``REPRO_BACKEND``): the ``python`` backend
runs the sequential per-core loops of :mod:`repro.sim._fastpath` with the
cache, buffer and stream operations inlined, the ``numpy`` backend replaces
them with array passes where the structure allows.  Shared-history engines
(SHIFT) keep the round-robin order via per-lane generators on every
backend.  Results are bit-identical across all paths; the regression tests
pin them to the frozen PR-1 loop in :mod:`repro.sim._legacy` and the
backends to each other.

Backends must leave the :class:`CoreResult` counters, the prefetch-buffer
contents, the prefetcher's mutable state, the LLC *and the L1 cache
objects* exactly as the reference loop would: the chunked engine
(:meth:`SimulationEngine._run_chunked`) carries all of them across every
window boundary — snapshotting and restoring through JSON at exponentially
spaced boundaries — and resumes the next window from that state, so final
L1 contents are part of the backend contract.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config import SystemConfig, scaled_system
from ..errors import SimulationError
from ..workloads.address_space import HISTORY_REGION_BASE, HISTORY_REGION_SPACING
from ..workloads.trace import TraceSet
from .backends import Backend, get_backend
from .cache import PrefetchBuffer, SetAssociativeCache
from .llc import LLCStats, SharedLLC
from .prefetchers import (
    HIT,
    MISS,
    PREFETCH_HIT,
    ConsolidatedSHIFTPrefetcher,
    Prefetcher,
    SHIFTPrefetcher,
    make_prefetcher,
)

#: Default per-core prefetch-buffer capacity in blocks (4 streams x 12
#: records x ~5 blocks per record, rounded up).
DEFAULT_PREFETCH_BUFFER_BLOCKS = 256


@dataclass
class CoreResult:
    """Per-core statistics of one simulation run.

    ``prefetch_hits`` counts demand accesses served by a prefetch that had
    fully arrived; ``late_hits`` counts accesses that found their block still
    in flight, which hides only part of the miss latency.  A late hit is
    accounted as half a miss (see :attr:`effective_misses`), matching the
    half-latency charge of the timing model.

    When the shared LLC is modelled, every demand miss is classified:
    ``llc_hits`` were served by the LLC, ``memory_misses`` went to main
    memory (``llc_hits + memory_misses == misses``).  Runs without an LLC
    model (``model_llc=False``, the frozen PR-1 reference) leave both at 0.
    """

    core_id: int
    accesses: int = 0
    instructions: int = 0
    demand_hits: int = 0
    prefetch_hits: int = 0
    late_hits: int = 0
    misses: int = 0
    prefetches_issued: int = 0
    prefetches_unused: int = 0
    history_block_reads: int = 0
    llc_hits: int = 0
    memory_misses: int = 0

    @property
    def effective_misses(self) -> float:
        """Misses with in-flight (late) prefetch hits counted at half weight."""
        return self.misses + 0.5 * self.late_hits

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def mpki(self) -> float:
        """Demand misses per kilo-instruction."""
        return 1000.0 * self.misses / self.instructions if self.instructions else 0.0

    @property
    def prefetch_accuracy(self) -> float:
        useful = self.prefetch_hits + self.late_hits
        return useful / self.prefetches_issued if self.prefetches_issued else 0.0


@dataclass
class SimulationResult:
    """Results of simulating one trace set with one prefetcher."""

    prefetcher_name: str
    system: SystemConfig
    cores: List[CoreResult] = field(default_factory=list)
    #: Dedicated prefetcher storage per core (0 for baseline/next-line).
    storage_bytes_per_core: int = 0
    #: Shared-LLC statistics; None when the LLC was not modelled.
    llc: Optional[LLCStats] = None

    @property
    def total_accesses(self) -> int:
        return sum(c.accesses for c in self.cores)

    @property
    def total_misses(self) -> int:
        return sum(c.misses for c in self.cores)

    @property
    def total_effective_misses(self) -> float:
        return sum(c.effective_misses for c in self.cores)

    @property
    def total_instructions(self) -> int:
        return sum(c.instructions for c in self.cores)

    @property
    def total_llc_hits(self) -> int:
        return sum(c.llc_hits for c in self.cores)

    @property
    def total_memory_misses(self) -> int:
        return sum(c.memory_misses for c in self.cores)

    @property
    def llc_hit_ratio(self) -> float:
        """LLC hit ratio over all instruction accesses (demand + prefetch)."""
        return self.llc.instruction_hit_ratio if self.llc is not None else 0.0

    @property
    def miss_ratio(self) -> float:
        return self.total_misses / self.total_accesses if self.total_accesses else 0.0

    @property
    def mpki(self) -> float:
        return (
            1000.0 * self.total_misses / self.total_instructions
            if self.total_instructions
            else 0.0
        )

    def coverage_vs(self, baseline: "SimulationResult") -> float:
        """Fraction of the baseline's (effective) misses this run eliminated."""
        if baseline.total_effective_misses == 0:
            return 0.0
        return 1.0 - self.total_effective_misses / baseline.total_effective_misses

    def by_core(self) -> Dict[int, CoreResult]:
        return {c.core_id: c for c in self.cores}


class SimulationEngine:
    """Runs a trace set through per-core L1-I caches with one prefetcher."""

    def __init__(
        self,
        system: Optional[SystemConfig] = None,
        prefetcher: Optional[Prefetcher] = None,
        prefetch_buffer_blocks: int = DEFAULT_PREFETCH_BUFFER_BLOCKS,
        model_llc: bool = True,
        backend: "str | Backend | None" = None,
        chunk_blocks: Optional[int] = None,
    ) -> None:
        self._system = system if system is not None else scaled_system()
        self._prefetcher = prefetcher if prefetcher is not None else Prefetcher()
        self._buffer_blocks = prefetch_buffer_blocks
        self._model_llc = model_llc
        self._backend = get_backend(backend)
        if chunk_blocks is not None and chunk_blocks < 1:
            raise SimulationError("chunk_blocks must be a positive block count")
        self._chunk_blocks = chunk_blocks

    @property
    def system(self) -> SystemConfig:
        return self._system

    @property
    def prefetcher(self) -> Prefetcher:
        return self._prefetcher

    @property
    def backend(self) -> Backend:
        return self._backend

    def run(self, trace_set: TraceSet) -> SimulationResult:
        system = self._system
        if trace_set.num_cores > system.num_cores:
            raise SimulationError(
                f"trace set has {trace_set.num_cores} cores but the system "
                f"only has {system.num_cores}"
            )
        prefetcher = self._prefetcher

        cores = sorted(trace_set.traces, key=lambda t: t.core_id)
        caches = {t.core_id: SetAssociativeCache(system.l1i) for t in cores}
        buffers = {t.core_id: PrefetchBuffer(self._buffer_blocks) for t in cores}
        results = {
            t.core_id: CoreResult(
                core_id=t.core_id,
                accesses=t.num_accesses,
                instructions=t.num_instructions,
            )
            for t in cores
        }
        # Lanes carry the CoreTrace itself: the numpy backend consumes its
        # columnar buffer zero-copy (and keys memos on its fingerprint),
        # the Python loops take the cached list view via address_list().
        lanes = [
            (t.core_id, t, caches[t.core_id], buffers[t.core_id], results[t.core_id])
            for t in cores
        ]
        # A prefetch needs the LLC round trip to arrive; expressed in demand
        # accesses of the issuing core (each access retires one block's worth
        # of instructions at base IPC).  A demand hit on a still-in-flight
        # prefetch is a *late* hit: only part of the latency is hidden.
        miss_latency = system.llc_demand_latency_cycles()
        inflight = {
            t.core_id: max(
                1,
                round(miss_latency * system.core.base_ipc / t.instructions_per_block),
            )
            for t in cores
        }

        llc = self._build_llc(trace_set) if self._model_llc else None

        max_len = max(t.num_accesses for t in cores)
        chunk_blocks = self._chunk_blocks
        if chunk_blocks is None or chunk_blocks >= max_len:
            self._backend.run(lanes, inflight, prefetcher, llc)
        else:
            llc = self._run_chunked(
                cores, caches, buffers, results, inflight, prefetcher, llc,
                chunk_blocks, max_len,
            )

        for t in cores:
            lane_buffer = buffers[t.core_id]
            stats = results[t.core_id]
            stats.prefetches_unused = lane_buffer.evicted_unused + len(lane_buffer)
            stats.history_block_reads = prefetcher.history_block_reads(t.core_id)
        llc_stats: Optional[LLCStats] = None
        if llc is not None:
            llc.add_history_reads(sum(r.history_block_reads for r in results.values()))
            llc_stats = llc.stats()
        return SimulationResult(
            prefetcher_name=prefetcher.name,
            system=system,
            cores=[results[t.core_id] for t in cores],
            storage_bytes_per_core=prefetcher.storage_bytes_per_core(system.num_cores),
            llc=llc_stats,
        )

    def _run_chunked(
        self,
        cores,
        caches: Dict[int, SetAssociativeCache],
        buffers: Dict[int, PrefetchBuffer],
        results: Dict[int, CoreResult],
        inflight: Dict[int, int],
        prefetcher: Prefetcher,
        llc: Optional[SharedLLC],
        chunk_blocks: int,
        max_len: int,
    ) -> Optional[SharedLLC]:
        """Stream the traces through the backend in bounded windows.

        Every chunk covers the same global step range ``[start, stop)`` on
        every lane (zero-copy :meth:`~repro.workloads.trace.CoreTrace.window`
        views), so the round-robin interleaving — and with it every shared
        structure's access order — is exactly the monolithic one restricted
        to that window.  At power-of-two chunk boundaries (the 1st, 2nd,
        4th, 8th, ...) the full engine state is serialized through JSON
        (:meth:`snapshot`/:meth:`restore` on the prefetcher, L1-I caches,
        prefetch buffers and LLC) and restored into *fresh* cache/buffer/
        LLC objects, proving the checkpoint is complete: nothing can leak
        across the boundary through object identity.  The roundtrip is a
        proof device, not a correctness requirement, so exponential spacing
        keeps its cost amortized while still exercising it at multiple
        state maturities — including the very first boundary, where rebased
        timestamps first go negative; boundaries in between carry the live
        objects forward unchanged.

        Counter discipline: the fast paths *assign* per-core stats and
        ``evicted_unused`` (clobbering), so each chunk runs against fresh
        :class:`CoreResult` scratch and a zeroed eviction counter whose
        deltas are accumulated here; stream-engine counters and history
        write positions carry cumulatively through the live objects.
        Prefetch-issue timestamps are rebased at each boundary (chunk-local
        step counters restart at zero) so in-flight age classification is
        unchanged.  Returns the (possibly replaced) LLC object.

        Chunks execute on the engine's own backend.  The vectorized numpy
        backend resumes from restored warm state directly: restored L1
        contents seed its closed-form set recurrences as virtual pre-window
        accesses, restored buffers, compactors and history rings become
        each solver's starting point, and it materializes the final
        L1/buffer/LLC state the next chunk restores from (falling back to
        the exact Python loops per run where a structure is unsupported).
        While chunk ``k`` replays, a helper thread prewarms the backend's
        trace-pure memos for chunk ``k+1``'s windows
        (:meth:`~repro.sim.backends.Backend.prewarm`), overlapping column
        extraction with replay.  Reports are unaffected: backends are
        pinned bit-identical to each other for every chunk geometry.
        """
        chunk_backend = self._backend
        l1_config = self._system.l1i
        evicted_acc = {t.core_id: 0 for t in cores}
        boundary = 0
        for start in range(0, max_len, chunk_blocks):
            stop = min(start + chunk_blocks, max_len)
            live = [t for t in cores if t.num_accesses > start]
            chunk_stats = {t.core_id: CoreResult(core_id=t.core_id) for t in live}
            for t in live:
                buffers[t.core_id].evicted_unused = 0
            lanes = [
                (
                    t.core_id,
                    t.window(start, stop),
                    caches[t.core_id],
                    buffers[t.core_id],
                    chunk_stats[t.core_id],
                )
                for t in live
            ]
            prewarmer = None
            if stop < max_len:
                next_stop = min(stop + chunk_blocks, max_len)
                next_windows = [
                    t.window(stop, next_stop)
                    for t in cores
                    if t.num_accesses > stop
                ]
                if chunk_backend.prewarm_pending(next_windows, l1_config):
                    prewarmer = threading.Thread(
                        target=chunk_backend.prewarm,
                        args=(next_windows, l1_config),
                        daemon=True,
                    )
                    prewarmer.start()
            chunk_backend.run(lanes, inflight, prefetcher, llc)
            if prewarmer is not None:
                prewarmer.join()
            for t in live:
                core_id = t.core_id
                delta = chunk_stats[core_id]
                master = results[core_id]
                master.demand_hits += delta.demand_hits
                master.prefetch_hits += delta.prefetch_hits
                master.late_hits += delta.late_hits
                master.misses += delta.misses
                master.prefetches_issued += delta.prefetches_issued
                master.llc_hits += delta.llc_hits
                master.memory_misses += delta.memory_misses
                evicted_acc[core_id] += buffers[core_id].evicted_unused
                buffers[core_id].evicted_unused = 0
            if stop < max_len:
                span = stop - start
                for buffer in buffers.values():
                    buffer.rebase_timestamps(span)
                boundary += 1
                if boundary & (boundary - 1) == 0:
                    llc = self._checkpoint_roundtrip(
                        caches, buffers, prefetcher, llc
                    )
        for core_id, evicted in evicted_acc.items():
            buffers[core_id].evicted_unused = evicted
        return llc

    def _checkpoint_roundtrip(
        self,
        caches: Dict[int, SetAssociativeCache],
        buffers: Dict[int, PrefetchBuffer],
        prefetcher: Prefetcher,
        llc: Optional[SharedLLC],
    ) -> Optional[SharedLLC]:
        """Serialize all engine state through JSON and restore fresh objects.

        The prefetcher is restored in place (the engine cannot re-derive its
        construction arguments); caches, buffers and the LLC come back as
        brand-new objects, which the next chunk's lanes then reference.
        """
        state = json.loads(json.dumps({
            "caches": [[cid, c.snapshot()] for cid, c in sorted(caches.items())],
            "buffers": [[cid, b.snapshot()] for cid, b in sorted(buffers.items())],
            "prefetcher": prefetcher.snapshot(),
            "llc": None if llc is None else llc.snapshot(),
        }))
        for core_id, snap in state["caches"]:
            fresh_cache = SetAssociativeCache(self._system.l1i)
            fresh_cache.restore(snap)
            caches[int(core_id)] = fresh_cache
        for core_id, snap in state["buffers"]:
            fresh_buffer = PrefetchBuffer(self._buffer_blocks)
            fresh_buffer.restore(snap)
            buffers[int(core_id)] = fresh_buffer
        prefetcher.restore(state["prefetcher"])
        if llc is None:
            return None
        fresh_llc = SharedLLC(self._system.llc, self._system.num_cores)
        fresh_llc.restore(state["llc"])
        return fresh_llc

    def _build_llc(self, trace_set: TraceSet) -> SharedLLC:
        """The run's shared LLC, with virtualized SHIFT histories pinned.

        History regions come from the trace set's address layouts (the
        ``HBBase`` windows of Section 4.2), so pinned history blocks can
        never alias instruction blocks; trace sets built without layouts
        fall back to the global history region base.
        """
        llc = SharedLLC(self._system.llc, self._system.num_cores)
        prefetcher = self._prefetcher

        def history_base(index: int) -> int:
            layouts = trace_set.layouts
            if index < len(layouts):
                return layouts[index].history.base
            return HISTORY_REGION_BASE + index * HISTORY_REGION_SPACING

        if isinstance(prefetcher, ConsolidatedSHIFTPrefetcher):
            if prefetcher.config.virtualized:
                blocks = prefetcher.history_llc_blocks_per_group
                for index in range(prefetcher.num_groups):
                    llc.pin_region(history_base(index), blocks)
        elif isinstance(prefetcher, SHIFTPrefetcher):
            if prefetcher.config.virtualized:
                llc.pin_region(history_base(0), prefetcher.config.history_llc_blocks)
        return llc

    @staticmethod
    def _run_round_robin(lanes, inflight, prefetcher, llc=None) -> None:
        """Generic loop over the public APIs, for custom prefetchers.

        This loop *defines* the round-robin semantics every fast path must
        reproduce, including the order in which cores' L1 misses and
        prefetch fetches reach the shared LLC: one access per core per
        step, lanes visited in core-id order, the demand classification of
        a miss preceding the prefetches it triggers.
        """
        from ._fastpath import address_list

        on_access = prefetcher.on_access
        lanes = [
            (core_id, address_list(addresses), cache, buffer, stats)
            for core_id, addresses, cache, buffer, stats in lanes
        ]
        max_len = max(len(addresses) for _, addresses, _, _, _ in lanes)
        for step in range(max_len):
            for core_id, addresses, cache, buffer, stats in lanes:
                if step >= len(addresses):
                    continue
                address = addresses[step]
                if cache.access(address):
                    outcome = HIT
                    stats.demand_hits += 1
                else:
                    issued_at = buffer.consume(address)
                    if issued_at is not None:
                        outcome = PREFETCH_HIT
                        if step - issued_at >= inflight[core_id]:
                            stats.prefetch_hits += 1
                        else:
                            stats.late_hits += 1
                    else:
                        outcome = MISS
                        stats.misses += 1
                        if llc is not None:
                            if llc.access_demand(address):
                                stats.llc_hits += 1
                            else:
                                stats.memory_misses += 1
                    cache.insert(address)
                for block in on_access(core_id, address, outcome):
                    if not cache.contains(block) and buffer.insert(block, step):
                        stats.prefetches_issued += 1
                        if llc is not None:
                            llc.access_prefetch(block)


def simulate(
    trace_set: TraceSet,
    system: Optional[SystemConfig] = None,
    prefetcher: "Prefetcher | str" = "none",
    model_llc: bool = True,
    backend: "str | Backend | None" = None,
    chunk_blocks: Optional[int] = None,
    **factory_kwargs,
) -> SimulationResult:
    """Convenience wrapper: simulate ``trace_set`` with a named prefetcher.

    ``backend`` selects the execution strategy (``python`` / ``numpy``; see
    :mod:`repro.sim.backends`); results are identical on every backend.
    ``chunk_blocks`` bounds how many accesses per core are in flight at
    once (out-of-core streaming over windowed trace views, state carried
    across chunk boundaries; see ARCHITECTURE.md); reports are identical
    for every chunk geometry, including ``None`` (monolithic).
    """
    sys_config = system if system is not None else scaled_system()
    if isinstance(prefetcher, str):
        prefetcher = make_prefetcher(prefetcher, sys_config, **factory_kwargs)
    engine = SimulationEngine(
        system=sys_config,
        prefetcher=prefetcher,
        model_llc=model_llc,
        backend=backend,
        chunk_blocks=chunk_blocks,
    )
    return engine.run(trace_set)


__all__ = [
    "CoreResult",
    "SimulationResult",
    "SimulationEngine",
    "simulate",
    "DEFAULT_PREFETCH_BUFFER_BLOCKS",
]
