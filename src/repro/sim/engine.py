"""The multi-core trace-driven simulation loop.

Cores are stepped round-robin, one access per core per step, which keeps
shared structures (the SHIFT history and index) warming up concurrently with
the consumers — a sequential per-core loop would let the trainer finish its
whole trace before any other core issues a lookup, which is both unrealistic
and unfairly favourable.

For engines whose state is entirely per-core (the baseline, next-line and
PIF) the interleaving is unobservable: core ``c``'s ``k``-th access always
happens at global step ``k`` whichever order lanes are visited, so
:class:`SimulationEngine` runs those engines through sequential per-core
loops from :mod:`repro.sim._fastpath` with the cache, buffer and stream
operations inlined.  Shared-history engines (SHIFT) keep the round-robin
order via per-lane generators.  Results are bit-identical across all paths;
the regression tests pin them to the frozen PR-1 loop in
:mod:`repro.sim._legacy`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config import SystemConfig, scaled_system
from ..errors import SimulationError
from ..workloads.trace import TraceSet
from .cache import PrefetchBuffer, SetAssociativeCache
from .prefetchers import (
    HIT,
    MISS,
    PREFETCH_HIT,
    ConsolidatedSHIFTPrefetcher,
    NextLinePrefetcher,
    NullPrefetcher,
    PIFPrefetcher,
    Prefetcher,
    SHIFTPrefetcher,
    make_prefetcher,
)
from . import _fastpath

#: Default per-core prefetch-buffer capacity in blocks (4 streams x 12
#: records x ~5 blocks per record, rounded up).
DEFAULT_PREFETCH_BUFFER_BLOCKS = 256


@dataclass
class CoreResult:
    """Per-core statistics of one simulation run.

    ``prefetch_hits`` counts demand accesses served by a prefetch that had
    fully arrived; ``late_hits`` counts accesses that found their block still
    in flight, which hides only part of the miss latency.  A late hit is
    accounted as half a miss (see :attr:`effective_misses`), matching the
    half-latency charge of the timing model.
    """

    core_id: int
    accesses: int = 0
    instructions: int = 0
    demand_hits: int = 0
    prefetch_hits: int = 0
    late_hits: int = 0
    misses: int = 0
    prefetches_issued: int = 0
    prefetches_unused: int = 0
    history_block_reads: int = 0

    @property
    def effective_misses(self) -> float:
        """Misses with in-flight (late) prefetch hits counted at half weight."""
        return self.misses + 0.5 * self.late_hits

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def mpki(self) -> float:
        """Demand misses per kilo-instruction."""
        return 1000.0 * self.misses / self.instructions if self.instructions else 0.0

    @property
    def prefetch_accuracy(self) -> float:
        useful = self.prefetch_hits + self.late_hits
        return useful / self.prefetches_issued if self.prefetches_issued else 0.0


@dataclass
class SimulationResult:
    """Results of simulating one trace set with one prefetcher."""

    prefetcher_name: str
    system: SystemConfig
    cores: List[CoreResult] = field(default_factory=list)

    @property
    def total_accesses(self) -> int:
        return sum(c.accesses for c in self.cores)

    @property
    def total_misses(self) -> int:
        return sum(c.misses for c in self.cores)

    @property
    def total_effective_misses(self) -> float:
        return sum(c.effective_misses for c in self.cores)

    @property
    def total_instructions(self) -> int:
        return sum(c.instructions for c in self.cores)

    @property
    def miss_ratio(self) -> float:
        return self.total_misses / self.total_accesses if self.total_accesses else 0.0

    @property
    def mpki(self) -> float:
        return (
            1000.0 * self.total_misses / self.total_instructions
            if self.total_instructions
            else 0.0
        )

    def coverage_vs(self, baseline: "SimulationResult") -> float:
        """Fraction of the baseline's (effective) misses this run eliminated."""
        if baseline.total_effective_misses == 0:
            return 0.0
        return 1.0 - self.total_effective_misses / baseline.total_effective_misses

    def by_core(self) -> Dict[int, CoreResult]:
        return {c.core_id: c for c in self.cores}


class SimulationEngine:
    """Runs a trace set through per-core L1-I caches with one prefetcher."""

    def __init__(
        self,
        system: Optional[SystemConfig] = None,
        prefetcher: Optional[Prefetcher] = None,
        prefetch_buffer_blocks: int = DEFAULT_PREFETCH_BUFFER_BLOCKS,
    ) -> None:
        self._system = system if system is not None else scaled_system()
        self._prefetcher = prefetcher if prefetcher is not None else Prefetcher()
        self._buffer_blocks = prefetch_buffer_blocks

    @property
    def system(self) -> SystemConfig:
        return self._system

    @property
    def prefetcher(self) -> Prefetcher:
        return self._prefetcher

    def run(self, trace_set: TraceSet) -> SimulationResult:
        system = self._system
        if trace_set.num_cores > system.num_cores:
            raise SimulationError(
                f"trace set has {trace_set.num_cores} cores but the system "
                f"only has {system.num_cores}"
            )
        prefetcher = self._prefetcher

        cores = sorted(trace_set.traces, key=lambda t: t.core_id)
        caches = {t.core_id: SetAssociativeCache(system.l1i) for t in cores}
        buffers = {t.core_id: PrefetchBuffer(self._buffer_blocks) for t in cores}
        results = {
            t.core_id: CoreResult(
                core_id=t.core_id,
                accesses=t.num_accesses,
                instructions=t.num_instructions,
            )
            for t in cores
        }
        lanes = [
            (t.core_id, t.addresses, caches[t.core_id], buffers[t.core_id], results[t.core_id])
            for t in cores
        ]
        # A prefetch needs the LLC round trip to arrive; expressed in demand
        # accesses of the issuing core (each access retires one block's worth
        # of instructions at base IPC).  A demand hit on a still-in-flight
        # prefetch is a *late* hit: only part of the latency is hidden.
        miss_latency = system.llc_demand_latency_cycles()
        inflight = {
            t.core_id: max(
                1,
                round(miss_latency * system.core.base_ipc / t.instructions_per_block),
            )
            for t in cores
        }

        # Exact-type dispatch: subclasses may override on_access, so they
        # fall through to the per-core or round-robin generic loops below.
        ptype = type(prefetcher)
        if ptype is NullPrefetcher or ptype is Prefetcher:
            _fastpath.run_baseline(lanes)
        elif ptype is NextLinePrefetcher:
            _fastpath.run_next_line(lanes, inflight, prefetcher._degree)
        elif ptype is PIFPrefetcher:
            _fastpath.run_stream_per_core(lanes, inflight, prefetcher)
        elif ptype is SHIFTPrefetcher or ptype is ConsolidatedSHIFTPrefetcher:
            _fastpath.run_stream_shared(lanes, inflight, prefetcher)
        elif not getattr(prefetcher, "shares_state", True):
            _fastpath.run_per_core_generic(lanes, inflight, prefetcher)
        else:
            self._run_round_robin(lanes, inflight, prefetcher)

        for lane_core_id, _, _, lane_buffer, stats in lanes:
            stats.prefetches_unused = lane_buffer.evicted_unused + len(lane_buffer)
            stats.history_block_reads = prefetcher.history_block_reads(lane_core_id)
        return SimulationResult(
            prefetcher_name=prefetcher.name,
            system=system,
            cores=[results[t.core_id] for t in cores],
        )

    @staticmethod
    def _run_round_robin(lanes, inflight, prefetcher) -> None:
        """Generic loop over the public APIs, for custom prefetchers."""
        on_access = prefetcher.on_access
        max_len = max(len(addresses) for _, addresses, _, _, _ in lanes)
        for step in range(max_len):
            for core_id, addresses, cache, buffer, stats in lanes:
                if step >= len(addresses):
                    continue
                address = addresses[step]
                if cache.access(address):
                    outcome = HIT
                    stats.demand_hits += 1
                else:
                    issued_at = buffer.consume(address)
                    if issued_at is not None:
                        outcome = PREFETCH_HIT
                        if step - issued_at >= inflight[core_id]:
                            stats.prefetch_hits += 1
                        else:
                            stats.late_hits += 1
                    else:
                        outcome = MISS
                        stats.misses += 1
                    cache.insert(address)
                for block in on_access(core_id, address, outcome):
                    if not cache.contains(block) and buffer.insert(block, step):
                        stats.prefetches_issued += 1


def simulate(
    trace_set: TraceSet,
    system: Optional[SystemConfig] = None,
    prefetcher: "Prefetcher | str" = "none",
    **factory_kwargs,
) -> SimulationResult:
    """Convenience wrapper: simulate ``trace_set`` with a named prefetcher."""
    sys_config = system if system is not None else scaled_system()
    if isinstance(prefetcher, str):
        prefetcher = make_prefetcher(prefetcher, sys_config, **factory_kwargs)
    engine = SimulationEngine(system=sys_config, prefetcher=prefetcher)
    return engine.run(trace_set)


__all__ = [
    "CoreResult",
    "SimulationResult",
    "SimulationEngine",
    "simulate",
    "DEFAULT_PREFETCH_BUFFER_BLOCKS",
]
