"""Cache structures for the trace-driven simulator.

Addresses everywhere are *block* addresses (see
:mod:`repro.workloads.address_space`), so the models never deal with byte
offsets: a set-associative cache maps a block address to a set by simple
modulo and stores the full block address as the tag.

Layout contract: both structures are plain-array-backed so the specialized
loops in :mod:`repro.sim._fastpath` can inline their operations.  A cache
set is a flat MRU-ordered array of tags (``_sets[set_index]``); membership
is a C-level scan, which beats any pointer structure at the associativities
of Table I (2–16).  The prefetch buffer is one insertion-ordered map from
block to issue timestamp (``_blocks``) whose FIFO eviction is an O(1)
``popitem``.  The methods here define the semantics; the fast paths mutate
``_sets`` / ``_blocks`` directly and are pinned to these methods by the
property and equivalence tests.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from typing import List

from ..config import CacheConfig
from ..errors import SimulationError


def digest_state(state) -> str:
    """A stable content digest of a JSON-safe ``snapshot()`` payload.

    Two objects whose snapshots are equal share a digest, which is what the
    numpy backend's cross-run memos key warm-state solutions on: a solution
    replayed onto state with the same digest is exact by construction.
    """
    payload = json.dumps(state, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class SetAssociativeCache:
    """A set-associative cache with true-LRU replacement.

    Each set is a flat array of block addresses ordered MRU-first; with the
    associativities of Table I (2–16) a list scan is faster in CPython than
    any cleverer structure.
    """

    __slots__ = ("_sets", "_num_sets", "_associativity")

    def __init__(self, config: CacheConfig) -> None:
        self._num_sets = config.num_sets
        self._associativity = config.associativity
        if self._num_sets < 1:
            raise SimulationError("cache must have at least one set")
        self._sets: List[List[int]] = [[] for _ in range(self._num_sets)]

    @property
    def num_sets(self) -> int:
        return self._num_sets

    @property
    def associativity(self) -> int:
        return self._associativity

    def access(self, block_address: int) -> bool:
        """Demand access: returns True on hit and updates LRU order."""
        lines = self._sets[block_address % self._num_sets]
        if block_address in lines:
            if lines[0] != block_address:
                lines.remove(block_address)
                lines.insert(0, block_address)
            return True
        return False

    def contains(self, block_address: int) -> bool:
        """Presence check without touching LRU state."""
        return block_address in self._sets[block_address % self._num_sets]

    def insert(self, block_address: int) -> int | None:
        """Fill ``block_address`` at MRU; returns the evicted block, if any."""
        lines = self._sets[block_address % self._num_sets]
        if block_address in lines:
            if lines[0] != block_address:
                lines.remove(block_address)
                lines.insert(0, block_address)
            return None
        lines.insert(0, block_address)
        if len(lines) > self._associativity:
            return lines.pop()
        return None

    def resident_blocks(self) -> int:
        return sum(len(lines) for lines in self._sets)

    def snapshot(self) -> List[List[int]]:
        """Serialize the full LRU state as plain lists (JSON-safe).

        The result is one tag list per set, MRU-first — exactly the layout
        the fast paths scan — so ``restore`` reproduces hit/miss *and*
        eviction order bit-for-bit.
        """
        return [list(lines) for lines in self._sets]

    def restore(self, state: List[List[int]]) -> None:
        """Restore a :meth:`snapshot` into this cache (same geometry required)."""
        if len(state) != self._num_sets:
            raise SimulationError(
                f"cache snapshot has {len(state)} sets, expected {self._num_sets}"
            )
        self._sets = [[int(tag) for tag in lines] for lines in state]

    def state_digest(self) -> str:
        """Content digest of the full LRU state (see :func:`digest_state`)."""
        return digest_state(self.snapshot())

    def state_key(self) -> tuple:
        """The full LRU state as a hashable tuple.

        Exact (collision-free) and an order of magnitude cheaper to build
        than :meth:`state_digest`; what the numpy backend keys its
        warm-state memos on — two caches compare equal under this key iff
        their snapshots are equal.
        """
        return tuple(tuple(lines) for lines in self._sets)


class PrefetchBuffer:
    """A per-core FIFO buffer holding prefetched blocks until first use.

    This stands in for PIF/SHIFT stream storage and the prefetch queue of the
    next-line engine: prefetched blocks do not pollute the L1-I; a demand hit
    in the buffer promotes the block into the cache.  Blocks evicted before
    use count as wasted prefetches (the accuracy metric of the paper).
    """

    __slots__ = ("_capacity", "_blocks", "evicted_unused")

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise SimulationError("prefetch buffer needs a positive capacity")
        self._capacity = capacity
        # block address -> issue timestamp (the engine's per-core step count).
        self._blocks: OrderedDict[int, int] = OrderedDict()
        self.evicted_unused = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, block_address: int) -> bool:
        return block_address in self._blocks

    def insert(self, block_address: int, issued_at: int = 0) -> bool:
        """Add a prefetched block; returns False if it was already buffered.

        A re-prefetch of an in-flight block does not refresh its timestamp:
        the original request is already on its way.
        """
        if block_address in self._blocks:
            return False
        self._blocks[block_address] = issued_at
        if len(self._blocks) > self._capacity:
            self._blocks.popitem(last=False)
            self.evicted_unused += 1
        return True

    def consume(self, block_address: int) -> int | None:
        """Remove a block on demand hit; returns its issue timestamp, if buffered."""
        return self._blocks.pop(block_address, None)

    def rebase_timestamps(self, delta: int) -> None:
        """Shift every buffered issue timestamp by ``-delta``.

        The chunked engine restarts its step counter at zero for each chunk;
        rebasing keeps the only quantity that matters — ``step - issued_at``
        age differences — identical to a monolithic run.  Stamps may go
        negative, which is fine: they are only ever subtracted.
        """
        if delta:
            for block in self._blocks:
                self._blocks[block] -= delta

    def snapshot(self) -> dict:
        """Serialize FIFO order, issue timestamps and the wasted-prefetch count."""
        return {
            "blocks": [[block, stamp] for block, stamp in self._blocks.items()],
            "evicted_unused": self.evicted_unused,
        }

    def restore(self, state: dict) -> None:
        """Restore a :meth:`snapshot`; insertion order is FIFO-significant."""
        self._blocks = OrderedDict(
            (int(block), int(stamp)) for block, stamp in state["blocks"]
        )
        self.evicted_unused = int(state["evicted_unused"])

    def state_digest(self) -> str:
        """Content digest of FIFO order, stamps and the eviction counter."""
        return digest_state(self.snapshot())

    def state_key(self) -> tuple:
        """FIFO order, stamps and the eviction counter as a hashable tuple
        (the cheap exact form of :meth:`state_digest`, see
        :meth:`SetAssociativeCache.state_key`)."""
        return (tuple(self._blocks.items()), self.evicted_unused)


__all__ = ["SetAssociativeCache", "PrefetchBuffer", "digest_state"]
