"""Instruction prefetcher engines.

All engines implement the :class:`Prefetcher` interface: the simulation loop
calls :meth:`Prefetcher.on_access` for every retire-order demand access with
its outcome (cache hit, prefetch-buffer hit, or miss) and receives a list of
block addresses to prefetch for that core.

The temporal-streaming machinery (PIF and SHIFT) is built from four pieces,
mirroring Sections 4.1–4.2 of the paper:

* :class:`SpatialCompactor` — folds the retire-order block stream into
  *spatial region records* ``(trigger block, bit vector)``;
* :class:`HistoryBuffer` — a circular buffer of records with absolute write
  positions, so stale index pointers are detected after wrap-around;
* :class:`IndexTable` — maps a trigger block to the most recent history
  position where a record with that trigger was written;
* :class:`StreamEngine` — per-core stream buffers that replay the history:
  an index hit on a miss dispatches a stream with ``lookahead_records``
  records, and each prefetch-buffer hit advances its stream by one record.

PIF instantiates all four per core; SHIFT shares one history and one index
among all cores, trains them from a single designated core, and (when
``virtualized``) accounts the LLC blocks read to fetch history records.
:class:`ConsolidatedSHIFTPrefetcher` models the consolidation experiment of
Section 5.5: one logical SHIFT per co-scheduled workload, splitting the
shared history capacity between the stacks.

Performance notes: :mod:`repro.sim._fastpath` inlines the hot paths of these
classes into specialized simulation loops, reaching into the underscore
attributes directly.  The classes here stay the single source of truth for
*semantics* — the regression tests pin the fast paths to them and to the
frozen PR-1 reference in :mod:`repro.sim._legacy`.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..config import (
    NextLineConfig,
    PIFConfig,
    SHIFTConfig,
    StreamBufferConfig,
    SystemConfig,
)
from ..errors import PrefetcherError
from .cache import digest_state

#: Demand-access outcomes passed to :meth:`Prefetcher.on_access`.
HIT = 0
MISS = 1
PREFETCH_HIT = 2

#: A spatial region record: (trigger block address, neighbour bit mask).
Record = Tuple[int, int]

#: Per-``region_blocks`` lookup tables mapping a neighbour bit mask to the
#: tuple of block offsets it encodes, so record expansion in the hot loop is
#: a table lookup instead of a bit-scan (masks are at most 2**(R-1) values).
_EXPAND_TABLES: Dict[int, List[Tuple[int, ...]]] = {}


def _expand_offsets(region_blocks: int) -> List[Tuple[int, ...]]:
    """The offset table for ``region_blocks``-wide spatial regions."""
    table = _EXPAND_TABLES.get(region_blocks)
    if table is None:
        table = [
            tuple(
                offset
                for offset in range(1, region_blocks)
                if mask & (1 << (offset - 1))
            )
            for mask in range(1 << (region_blocks - 1))
        ]
        _EXPAND_TABLES[region_blocks] = table
    return table


class Prefetcher:
    """Base class: never prefetches.

    ``shares_state`` declares whether the engine couples cores through shared
    mutable state (like SHIFT's history).  The simulation loop may process
    cores sequentially when it is False; shared-state engines must be stepped
    round-robin so every core observes the same history interleaving.
    Subclasses with cross-core state must leave it True.
    """

    name = "none"
    shares_state = True

    def on_access(self, core_id: int, block_address: int, outcome: int) -> List[int]:
        """Observe one retire-order access; return blocks to prefetch."""
        return []

    def history_block_reads(self, core_id: int) -> int:
        """LLC blocks read for history records on behalf of ``core_id``."""
        return 0

    def storage_bytes_per_core(self, num_cores: int) -> int:
        """Dedicated prefetcher storage per core (the paper's ~14x metric).

        Per-core engines report their private history + index cost; shared
        engines report the aggregate cost divided by ``num_cores``.  Stream
        buffers are common to all temporal-streaming engines and excluded.
        """
        return 0

    def snapshot(self) -> dict:
        """Serialize all mutable engine state as plain JSON-safe values.

        The chunked engine (:class:`~repro.sim.engine.SimulationEngine` with
        ``chunk_blocks``) round-trips this through ``json.dumps`` at every
        chunk boundary and feeds it back to :meth:`restore`; the contract is
        that a restored engine continues bit-for-bit as if never paused.
        Stateless engines return ``{}``.
        """
        return {}

    def restore(self, state: dict) -> None:
        """Restore a :meth:`snapshot` in place (inverse of ``snapshot``)."""
        if state:
            raise PrefetcherError(f"{self.name}: unexpected snapshot state {state!r}")

    def state_digest(self) -> str:
        """Content digest of :meth:`snapshot` (see
        :func:`~repro.sim.cache.digest_state`).

        Two prefetchers with equal snapshots digest equally, so the numpy
        backend can key its warm-state memos on ``(window fingerprint,
        state digest)`` and replay a cached solution exactly.
        """
        return digest_state(self.snapshot())

    def state_key(self) -> tuple:
        """All mutable state as a hashable tuple.

        The cheap exact form of :meth:`state_digest`: two prefetchers share
        a key iff their snapshots are equal, but building nested tuples
        from the live structures skips the JSON serialization entirely,
        which matters on the chunked hot path where the numpy backend keys
        a memo lookup on this at every chunk.  Stateless engines return
        ``()``; subclasses with mutable state must override in lockstep
        with :meth:`snapshot`.
        """
        return ()


class NullPrefetcher(Prefetcher):
    """Explicit no-prefetch baseline."""

    shares_state = False


class NextLinePrefetcher(Prefetcher):
    """Tagged next-N-line prefetcher.

    Issues on misses and on first use of a prefetched block, which lets it
    run ahead through sequential basic-block runs but gives it nothing at
    control-flow discontinuities — the weakness the paper's Figure 6 shows.
    """

    name = "next_line"
    shares_state = False

    def __init__(self, config: Optional[NextLineConfig] = None) -> None:
        self._config = config if config is not None else NextLineConfig()
        self._degree = self._config.degree

    @property
    def config(self) -> NextLineConfig:
        return self._config

    def on_access(self, core_id: int, block_address: int, outcome: int) -> List[int]:
        if outcome == HIT:
            return []
        return list(range(block_address + 1, block_address + 1 + self._degree))


class SpatialCompactor:
    """Folds a retire-order block stream into spatial region records."""

    __slots__ = ("_region_blocks", "_trigger", "_mask")

    def __init__(self, region_blocks: int) -> None:
        if region_blocks < 2:
            raise PrefetcherError("a spatial region must cover at least 2 blocks")
        self._region_blocks = region_blocks
        self._trigger: Optional[int] = None
        self._mask = 0

    def feed(self, block_address: int) -> Optional[Record]:
        """Consume one access; return a completed record when a region closes."""
        trigger = self._trigger
        if trigger is None:
            self._trigger = block_address
            self._mask = 0
            return None
        offset = block_address - trigger
        if 0 <= offset < self._region_blocks:
            if offset > 0:
                self._mask |= 1 << (offset - 1)
            return None
        record = (trigger, self._mask)
        self._trigger = block_address
        self._mask = 0
        return record

    def flush(self) -> Optional[Record]:
        """Close and return the open region, if any."""
        if self._trigger is None:
            return None
        record = (self._trigger, self._mask)
        self._trigger = None
        self._mask = 0
        return record

    def snapshot(self) -> dict:
        """Serialize the open region (trigger + accumulated mask)."""
        return {"trigger": self._trigger, "mask": self._mask}

    def restore(self, state: dict) -> None:
        """Restore a :meth:`snapshot` in place."""
        trigger = state["trigger"]
        self._trigger = None if trigger is None else int(trigger)
        self._mask = int(state["mask"])

    def state_key(self) -> tuple:
        """The open region as a hashable tuple (cheap exact snapshot key)."""
        return (self._trigger, self._mask)


def expand_record(record: Record, region_blocks: int) -> List[int]:
    """Block addresses covered by a record, trigger first."""
    trigger, mask = record
    blocks = [trigger]
    for offset in _expand_offsets(region_blocks)[mask]:
        blocks.append(trigger + offset)
    return blocks


class HistoryBuffer:
    """Circular record buffer addressed by monotonically increasing positions."""

    __slots__ = ("_capacity", "_records", "_next_pos")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise PrefetcherError("history buffer needs a positive capacity")
        self._capacity = capacity
        self._records: List[Optional[Record]] = [None] * capacity
        self._next_pos = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def writes(self) -> int:
        return self._next_pos

    def append(self, record: Record) -> int:
        """Store a record, overwriting the oldest; returns its position."""
        pos = self._next_pos
        self._records[pos % self._capacity] = record
        self._next_pos = pos + 1
        return pos

    def valid(self, pos: int) -> bool:
        return 0 <= pos < self._next_pos and pos >= self._next_pos - self._capacity

    def get(self, pos: int) -> Optional[Record]:
        """Return the record at ``pos`` or None if overwritten / never written."""
        if not self.valid(pos):
            return None
        return self._records[pos % self._capacity]

    def snapshot(self) -> dict:
        """Serialize the ring contents and the absolute write position."""
        return {
            "records": [
                None if record is None else [record[0], record[1]]
                for record in self._records
            ],
            "next_pos": self._next_pos,
        }

    def restore(self, state: dict) -> None:
        """Restore a :meth:`snapshot`; records come back as tuples."""
        records = state["records"]
        if len(records) != self._capacity:
            raise PrefetcherError(
                f"history snapshot has {len(records)} slots, "
                f"expected {self._capacity}"
            )
        self._records = [
            None if record is None else (int(record[0]), int(record[1]))
            for record in records
        ]
        self._next_pos = int(state["next_pos"])

    def state_key(self) -> tuple:
        """Ring contents and write position as a hashable tuple (cheap
        exact snapshot key; records are already tuples)."""
        return (tuple(self._records), self._next_pos)


class IndexTable:
    """Bounded trigger-block → history-position map with FIFO replacement."""

    __slots__ = ("_capacity", "_entries")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise PrefetcherError("index table needs a positive capacity")
        self._capacity = capacity
        self._entries: OrderedDict[int, int] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def put(self, trigger: int, pos: int) -> None:
        entries = self._entries
        if trigger in entries:
            entries[trigger] = pos
            entries.move_to_end(trigger)
            return
        entries[trigger] = pos
        if len(entries) > self._capacity:
            entries.popitem(last=False)

    def get(self, trigger: int) -> Optional[int]:
        return self._entries.get(trigger)

    def snapshot(self) -> dict:
        """Serialize entries in FIFO order (replacement order is load-bearing)."""
        return {"entries": [[trigger, pos] for trigger, pos in self._entries.items()]}

    def restore(self, state: dict) -> None:
        """Restore a :meth:`snapshot`, reproducing the FIFO insertion order."""
        entries = state["entries"]
        if len(entries) > self._capacity:
            raise PrefetcherError(
                f"index snapshot has {len(entries)} entries, "
                f"capacity is {self._capacity}"
            )
        self._entries = OrderedDict(
            (int(trigger), int(pos)) for trigger, pos in entries
        )

    def state_key(self) -> tuple:
        """Entries in FIFO order as a hashable tuple (cheap exact snapshot
        key; replacement order is load-bearing, so it is part of the key)."""
        return tuple(self._entries.items())


class _Stream:
    """One active temporal stream: its read cursor and outstanding blocks."""

    __slots__ = ("next_pos", "outstanding", "last_llc_block")

    def __init__(self, next_pos: int) -> None:
        self.next_pos = next_pos
        self.outstanding: set[int] = set()
        self.last_llc_block = -1


class StreamEngine:
    """Per-core stream buffers replaying a (possibly shared) history."""

    __slots__ = (
        "_history",
        "_index",
        "_config",
        "_region_blocks",
        "_records_per_llc_block",
        "_streams",
        "_owner",
        "dispatches",
        "record_reads",
        "llc_block_reads",
    )

    def __init__(
        self,
        history: HistoryBuffer,
        index: IndexTable,
        stream_config: StreamBufferConfig,
        region_blocks: int,
        records_per_llc_block: int = 0,
    ) -> None:
        self._history = history
        self._index = index
        self._config = stream_config
        self._region_blocks = region_blocks
        self._records_per_llc_block = records_per_llc_block
        self._streams: List[_Stream] = []
        self._owner: Dict[int, _Stream] = {}
        self.dispatches = 0
        self.record_reads = 0
        self.llc_block_reads = 0

    def _read_record(self, stream: _Stream) -> List[int]:
        record = self._history.get(stream.next_pos)
        if record is None:
            return []
        if self._records_per_llc_block:
            llc_block = stream.next_pos // self._records_per_llc_block
            if llc_block != stream.last_llc_block:
                stream.last_llc_block = llc_block
                self.llc_block_reads += 1
        stream.next_pos += 1
        self.record_reads += 1
        return expand_record(record, self._region_blocks)

    def _track(self, stream: _Stream, blocks: List[int]) -> List[int]:
        fresh = []
        owner = self._owner
        outstanding = stream.outstanding
        for block in blocks:
            if block not in owner:
                owner[block] = stream
                outstanding.add(block)
                fresh.append(block)
        return fresh

    def _retire_stream(self, stream: _Stream) -> None:
        for block in stream.outstanding:
            self._owner.pop(block, None)
        stream.outstanding.clear()

    def on_miss(self, block_address: int) -> List[int]:
        """Index lookup on a demand miss; dispatch a new stream on a hit."""
        # The block may have been tracked by a stream whose prefetch never
        # reached the demand (skipped or evicted); drop the stale claim.
        stale = self._owner.pop(block_address, None)
        if stale is not None:
            stale.outstanding.discard(block_address)
        pos = self._index.get(block_address)
        if pos is None or not self._history.valid(pos):
            return []
        stream = _Stream(pos)
        if len(self._streams) >= self._config.num_streams:
            self._retire_stream(self._streams.pop(0))
        self._streams.append(stream)
        self.dispatches += 1
        blocks: List[int] = []
        for _ in range(self._config.lookahead_records):
            blocks.extend(self._read_record(stream))
        prefetches = self._track(stream, blocks)
        # The trigger itself just missed; no point prefetching it.
        return [b for b in prefetches if b != block_address]

    def on_consume(self, block_address: int) -> List[int]:
        """Advance the stream tracking ``block_address`` by one record.

        Called on every non-miss demand access: the looked-ahead block may be
        served from the prefetch buffer or may already have been
        cache-resident when its prefetch was issued — either way the fetch
        stream has caught up by one block, so the stream reads ahead.
        """
        stream = self._owner.pop(block_address, None)
        if stream is None:
            return []
        stream.outstanding.discard(block_address)
        if len(stream.outstanding) >= self._config.capacity_records * self._region_blocks:
            return []
        return self._track(stream, self._read_record(stream))

    def snapshot(self) -> dict:
        """Serialize streams, block ownership and the accounting counters.

        Stream identity is positional: ``owner`` entries are
        ``(block, stream-slot)`` pairs referring into the serialized
        ``streams`` list, in insertion order.  The shared history/index are
        *not* included — they belong to the prefetcher that owns them.
        """
        slot_of = {id(stream): slot for slot, stream in enumerate(self._streams)}
        return {
            "streams": [
                {
                    "next_pos": stream.next_pos,
                    "outstanding": sorted(stream.outstanding),
                    "last_llc_block": stream.last_llc_block,
                }
                for stream in self._streams
            ],
            "owner": [
                [block, slot_of[id(stream)]] for block, stream in self._owner.items()
            ],
            "dispatches": self.dispatches,
            "record_reads": self.record_reads,
            "llc_block_reads": self.llc_block_reads,
        }

    def restore(self, state: dict) -> None:
        """Restore a :meth:`snapshot` in place (history/index stay attached)."""
        streams: List[_Stream] = []
        for entry in state["streams"]:
            stream = _Stream(int(entry["next_pos"]))
            stream.outstanding = {int(block) for block in entry["outstanding"]}
            stream.last_llc_block = int(entry["last_llc_block"])
            streams.append(stream)
        self._streams = streams
        self._owner = {int(block): streams[slot] for block, slot in state["owner"]}
        self.dispatches = int(state["dispatches"])
        self.record_reads = int(state["record_reads"])
        self.llc_block_reads = int(state["llc_block_reads"])

    def state_key(self) -> tuple:
        """Streams, ownership and counters as a hashable tuple (cheap exact
        snapshot key; stream identity is positional, as in :meth:`snapshot`)."""
        slot_of = {id(stream): slot for slot, stream in enumerate(self._streams)}
        return (
            tuple(
                (stream.next_pos, tuple(sorted(stream.outstanding)), stream.last_llc_block)
                for stream in self._streams
            ),
            tuple(
                (block, slot_of[id(stream)]) for block, stream in self._owner.items()
            ),
            self.dispatches,
            self.record_reads,
            self.llc_block_reads,
        )


class PIFPrefetcher(Prefetcher):
    """Proactive Instruction Fetch: private history, index and streams per core."""

    name = "pif"
    shares_state = False

    def __init__(self, num_cores: int, config: Optional[PIFConfig] = None) -> None:
        if num_cores < 1:
            raise PrefetcherError("need at least one core")
        self._config = config if config is not None else PIFConfig()
        region_blocks = self._config.spatial_region.region_blocks
        self._compactors = [SpatialCompactor(region_blocks) for _ in range(num_cores)]
        self._histories = [HistoryBuffer(self._config.history_entries) for _ in range(num_cores)]
        self._indices = [IndexTable(self._config.index_entries) for _ in range(num_cores)]
        self._streams = [
            StreamEngine(
                self._histories[core],
                self._indices[core],
                self._config.stream_buffer,
                region_blocks,
            )
            for core in range(num_cores)
        ]

    @property
    def config(self) -> PIFConfig:
        return self._config

    def on_access(self, core_id: int, block_address: int, outcome: int) -> List[int]:
        record = self._compactors[core_id].feed(block_address)
        if record is not None:
            pos = self._histories[core_id].append(record)
            self._indices[core_id].put(record[0], pos)
        if outcome == MISS:
            return self._streams[core_id].on_miss(block_address)
        return self._streams[core_id].on_consume(block_address)

    def storage_bytes_per_core(self, num_cores: int) -> int:
        return self._config.storage_bytes_per_core

    def snapshot(self) -> dict:
        """Serialize the private compactor/history/index/streams of every core."""
        return {
            "compactors": [c.snapshot() for c in self._compactors],
            "histories": [h.snapshot() for h in self._histories],
            "indices": [i.snapshot() for i in self._indices],
            "streams": [s.snapshot() for s in self._streams],
        }

    def restore(self, state: dict) -> None:
        """Restore a :meth:`snapshot` in place."""
        for compactor, snap in zip(self._compactors, state["compactors"]):
            compactor.restore(snap)
        for history, snap in zip(self._histories, state["histories"]):
            history.restore(snap)
        for index, snap in zip(self._indices, state["indices"]):
            index.restore(snap)
        for engine, snap in zip(self._streams, state["streams"]):
            engine.restore(snap)

    def state_key(self) -> tuple:
        return (
            tuple(c.state_key() for c in self._compactors),
            tuple(h.state_key() for h in self._histories),
            tuple(i.state_key() for i in self._indices),
            tuple(s.state_key() for s in self._streams),
        )


class HistoryGroup(NamedTuple):
    """One shared-history domain of a SHIFT-family prefetcher.

    A uniform view over the plain (one history for all cores) and
    consolidated (one history per workload stack) variants: ``core_ids``
    are the cores whose stream engines replay this history,
    ``trainer_core`` is the single core whose compactor feed appends to
    it, and ``compactor``/``history``/``index`` are the shared mutable
    state itself.  Both backends resolve lane roles through
    ``history_groups()``, so they can never disagree about which core
    trains which history.
    """

    core_ids: Tuple[int, ...]
    trainer_core: int
    compactor: SpatialCompactor
    history: HistoryBuffer
    index: IndexTable


class SHIFTPrefetcher(Prefetcher):
    """Shared History Instruction Fetch.

    One history buffer and one index serve every core; a single designated
    core generates the history (Section 4: "a single core generates the
    shared history on behalf of all cores executing the same workload").
    When ``config.virtualized`` is set, reads of history records are
    accounted as LLC block reads (``records_per_llc_block`` records per
    64-byte block), which the timing model charges unless
    ``zero_latency_history`` is set.
    """

    name = "shift"
    shares_state = True

    def __init__(
        self,
        num_cores: int,
        config: Optional[SHIFTConfig] = None,
        trainer_core: int = 0,
    ) -> None:
        if num_cores < 1:
            raise PrefetcherError("need at least one core")
        if not (0 <= trainer_core < num_cores):
            raise PrefetcherError("trainer core out of range")
        self._config = config if config is not None else SHIFTConfig()
        self._trainer_core = trainer_core
        region_blocks = self._config.spatial_region.region_blocks
        self._compactor = SpatialCompactor(region_blocks)
        self._history = HistoryBuffer(self._config.history_entries)
        # The virtualized index lives in LLC tags and can track every history
        # entry, so the index capacity matches the history capacity.
        self._index = IndexTable(self._config.history_entries)
        records_per_block = (
            self._config.records_per_llc_block if self._config.virtualized else 0
        )
        self._streams = [
            StreamEngine(
                self._history,
                self._index,
                self._config.stream_buffer,
                region_blocks,
                records_per_llc_block=records_per_block,
            )
            for _ in range(num_cores)
        ]

    @property
    def config(self) -> SHIFTConfig:
        return self._config

    @property
    def trainer_core(self) -> int:
        return self._trainer_core

    def on_access(self, core_id: int, block_address: int, outcome: int) -> List[int]:
        if core_id == self._trainer_core:
            record = self._compactor.feed(block_address)
            if record is not None:
                pos = self._history.append(record)
                self._index.put(record[0], pos)
        if outcome == MISS:
            return self._streams[core_id].on_miss(block_address)
        return self._streams[core_id].on_consume(block_address)

    def history_block_reads(self, core_id: int) -> int:
        if self._config.zero_latency_history or not self._config.virtualized:
            return 0
        return self._streams[core_id].llc_block_reads

    def history_groups(self) -> List[HistoryGroup]:
        """The single shared-history domain: every core, one trainer."""
        return [
            HistoryGroup(
                tuple(range(len(self._streams))),
                self._trainer_core,
                self._compactor,
                self._history,
                self._index,
            )
        ]

    def storage_bytes_per_core(self, num_cores: int) -> int:
        total = self._config.storage_bytes_total
        return -(-total // max(1, num_cores))

    def snapshot(self) -> dict:
        """Serialize the shared compactor/history/index and per-core streams."""
        return {
            "compactor": self._compactor.snapshot(),
            "history": self._history.snapshot(),
            "index": self._index.snapshot(),
            "streams": [s.snapshot() for s in self._streams],
        }

    def restore(self, state: dict) -> None:
        """Restore a :meth:`snapshot` in place."""
        self._compactor.restore(state["compactor"])
        self._history.restore(state["history"])
        self._index.restore(state["index"])
        for engine, snap in zip(self._streams, state["streams"]):
            engine.restore(snap)

    def state_key(self) -> tuple:
        return (
            self._compactor.state_key(),
            self._history.state_key(),
            self._index.state_key(),
            tuple(s.state_key() for s in self._streams),
        )


class _ShiftGroup:
    """One logical SHIFT instance serving a group of cores."""

    __slots__ = ("core_ids", "trainer_core", "compactor", "history", "index")

    def __init__(
        self,
        core_ids: Tuple[int, ...],
        region_blocks: int,
        history_entries: int,
    ) -> None:
        self.core_ids = core_ids
        self.trainer_core = min(core_ids)
        self.compactor = SpatialCompactor(region_blocks)
        self.history = HistoryBuffer(history_entries)
        self.index = IndexTable(history_entries)


class ConsolidatedSHIFTPrefetcher(Prefetcher):
    """SHIFT under workload consolidation (Section 5.5).

    Consolidated stacks have disjoint instruction footprints, so one shared
    history trained by one core would only ever help that core's co-runners.
    The paper's answer is one *logical* SHIFT per workload; with
    ``split_history`` (the default) the aggregate history budget is divided
    evenly between the stacks, modelling a fixed storage budget, otherwise
    every stack gets the full configured history.
    """

    name = "shift"
    shares_state = True

    def __init__(
        self,
        groups: Sequence[Sequence[int]],
        config: Optional[SHIFTConfig] = None,
        split_history: bool = True,
    ) -> None:
        if not groups:
            raise PrefetcherError("need at least one core group")
        self._config = config if config is not None else SHIFTConfig()
        self._split_history = split_history
        region_blocks = self._config.spatial_region.region_blocks
        entries = self._config.history_entries
        if split_history:
            entries = max(16, entries // len(groups))
        self._group_entries = entries
        # One group's slice of the budget, as a SHIFTConfig so the storage
        # and LLC-block accounting reuse the config's single code path
        # (index_pointer_bits re-derived for the smaller history).
        self._group_config = dataclasses.replace(
            self._config, history_entries=entries, index_pointer_bits=None
        )
        seen: set[int] = set()
        self._groups: List[_ShiftGroup] = []
        self._group_of_core: Dict[int, _ShiftGroup] = {}
        for group in groups:
            core_ids = tuple(sorted(group))
            if not core_ids:
                raise PrefetcherError("core groups cannot be empty")
            overlap = seen.intersection(core_ids)
            if overlap:
                raise PrefetcherError(f"cores {sorted(overlap)} appear in two groups")
            seen.update(core_ids)
            shift_group = _ShiftGroup(core_ids, region_blocks, entries)
            self._groups.append(shift_group)
            for core_id in core_ids:
                self._group_of_core[core_id] = shift_group
        records_per_block = (
            self._config.records_per_llc_block if self._config.virtualized else 0
        )
        self._streams = {
            core_id: StreamEngine(
                group.history,
                group.index,
                self._config.stream_buffer,
                region_blocks,
                records_per_llc_block=records_per_block,
            )
            for core_id, group in self._group_of_core.items()
        }

    @property
    def config(self) -> SHIFTConfig:
        return self._config

    @property
    def num_groups(self) -> int:
        return len(self._groups)

    @property
    def history_entries_per_group(self) -> int:
        return self._group_entries

    @property
    def history_llc_blocks_per_group(self) -> int:
        """LLC blocks each group's virtualized history occupies."""
        return self._group_config.history_llc_blocks

    def on_access(self, core_id: int, block_address: int, outcome: int) -> List[int]:
        group = self._group_of_core.get(core_id)
        if group is None:
            return []
        if core_id == group.trainer_core:
            record = group.compactor.feed(block_address)
            if record is not None:
                pos = group.history.append(record)
                group.index.put(record[0], pos)
        if outcome == MISS:
            return self._streams[core_id].on_miss(block_address)
        return self._streams[core_id].on_consume(block_address)

    def history_block_reads(self, core_id: int) -> int:
        if self._config.zero_latency_history or not self._config.virtualized:
            return 0
        stream = self._streams.get(core_id)
        return stream.llc_block_reads if stream is not None else 0

    def history_groups(self) -> List[HistoryGroup]:
        """One shared-history domain per consolidated workload stack."""
        return [
            HistoryGroup(
                group.core_ids,
                group.trainer_core,
                group.compactor,
                group.history,
                group.index,
            )
            for group in self._groups
        ]

    def storage_bytes_per_core(self, num_cores: int) -> int:
        total = self._group_config.storage_bytes_total * len(self._groups)
        return -(-total // max(1, num_cores))

    def snapshot(self) -> dict:
        """Serialize every group's shared state and every core's streams.

        Stream engines are keyed by core id as ``[core_id, state]`` pairs
        (JSON objects cannot have integer keys).
        """
        return {
            "groups": [
                {
                    "compactor": group.compactor.snapshot(),
                    "history": group.history.snapshot(),
                    "index": group.index.snapshot(),
                }
                for group in self._groups
            ],
            "streams": [
                [core_id, engine.snapshot()]
                for core_id, engine in sorted(self._streams.items())
            ],
        }

    def restore(self, state: dict) -> None:
        """Restore a :meth:`snapshot` in place."""
        for group, snap in zip(self._groups, state["groups"]):
            group.compactor.restore(snap["compactor"])
            group.history.restore(snap["history"])
            group.index.restore(snap["index"])
        for core_id, snap in state["streams"]:
            self._streams[int(core_id)].restore(snap)

    def state_key(self) -> tuple:
        return (
            tuple(
                (g.compactor.state_key(), g.history.state_key(), g.index.state_key())
                for g in self._groups
            ),
            tuple(
                (core_id, engine.state_key())
                for core_id, engine in sorted(self._streams.items())
            ),
        )


def make_prefetcher(
    name: str,
    system: SystemConfig,
    pif_config: Optional[PIFConfig] = None,
    shift_config: Optional[SHIFTConfig] = None,
    next_line_config: Optional[NextLineConfig] = None,
    shift_groups: Optional[Sequence[Sequence[int]]] = None,
) -> Prefetcher:
    """Factory mapping an engine name to a configured prefetcher instance.

    ``shift_groups`` selects the consolidated variant of SHIFT: one logical
    history per group of core ids, splitting the history budget evenly.
    """
    if name in ("none", "baseline"):
        return NullPrefetcher()
    if name in ("next_line", "nextline", "nl"):
        return NextLinePrefetcher(next_line_config)
    if name == "pif":
        return PIFPrefetcher(system.num_cores, pif_config)
    if name == "shift":
        if shift_groups is not None:
            return ConsolidatedSHIFTPrefetcher(shift_groups, shift_config)
        return SHIFTPrefetcher(system.num_cores, shift_config)
    raise PrefetcherError(
        f"unknown prefetcher {name!r}; known: none, next_line, pif, shift"
    )


__all__ = [
    "HIT",
    "MISS",
    "PREFETCH_HIT",
    "Record",
    "Prefetcher",
    "NullPrefetcher",
    "NextLinePrefetcher",
    "SpatialCompactor",
    "expand_record",
    "HistoryBuffer",
    "HistoryGroup",
    "IndexTable",
    "StreamEngine",
    "PIFPrefetcher",
    "SHIFTPrefetcher",
    "ConsolidatedSHIFTPrefetcher",
    "make_prefetcher",
]
