"""Frozen PR-1 reference implementation of the simulation hot path.

This module is a verbatim snapshot of the cache models, prefetcher engines
and round-robin simulation loop as they shipped in PR 1, kept for two jobs:

* :mod:`repro.bench` times it against the optimized :mod:`repro.sim.engine`
  to quantify hot-loop speedups (the ``BENCH_*.json`` trajectory);
* the regression tests assert that the optimized engines produce *exactly*
  the same per-core counters, so refactors cannot silently change results.

Do not optimize or "fix" this module; it is the baseline.  The only edits
relative to PR 1 are the imports (shared dataclasses come from the live
modules) and the removal of docstrings that duplicated the live ones.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..config import (
    CacheConfig,
    NextLineConfig,
    PIFConfig,
    SHIFTConfig,
    StreamBufferConfig,
    SystemConfig,
    scaled_system,
)
from ..errors import PrefetcherError, SimulationError
from ..workloads.trace import TraceSet
from .engine import DEFAULT_PREFETCH_BUFFER_BLOCKS, CoreResult, SimulationResult

HIT = 0
MISS = 1
PREFETCH_HIT = 2

Record = Tuple[int, int]


class LegacySetAssociativeCache:
    """PR-1 set-associative LRU cache (per-set MRU-ordered lists)."""

    __slots__ = ("_sets", "_num_sets", "_associativity")

    def __init__(self, config: CacheConfig) -> None:
        self._num_sets = config.num_sets
        self._associativity = config.associativity
        if self._num_sets < 1:
            raise SimulationError("cache must have at least one set")
        self._sets: List[List[int]] = [[] for _ in range(self._num_sets)]

    def access(self, block_address: int) -> bool:
        lines = self._sets[block_address % self._num_sets]
        if block_address in lines:
            if lines[0] != block_address:
                lines.remove(block_address)
                lines.insert(0, block_address)
            return True
        return False

    def contains(self, block_address: int) -> bool:
        return block_address in self._sets[block_address % self._num_sets]

    def insert(self, block_address: int) -> int | None:
        lines = self._sets[block_address % self._num_sets]
        if block_address in lines:
            if lines[0] != block_address:
                lines.remove(block_address)
                lines.insert(0, block_address)
            return None
        lines.insert(0, block_address)
        if len(lines) > self._associativity:
            return lines.pop()
        return None


class LegacyPrefetchBuffer:
    """PR-1 FIFO prefetch buffer (OrderedDict of block -> issue step)."""

    __slots__ = ("_capacity", "_blocks", "evicted_unused")

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise SimulationError("prefetch buffer needs a positive capacity")
        self._capacity = capacity
        self._blocks: OrderedDict[int, int] = OrderedDict()
        self.evicted_unused = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def insert(self, block_address: int, issued_at: int = 0) -> bool:
        if block_address in self._blocks:
            return False
        self._blocks[block_address] = issued_at
        if len(self._blocks) > self._capacity:
            self._blocks.popitem(last=False)
            self.evicted_unused += 1
        return True

    def consume(self, block_address: int) -> int | None:
        return self._blocks.pop(block_address, None)


class LegacyPrefetcher:
    name = "none"

    def on_access(self, core_id: int, block_address: int, outcome: int) -> List[int]:
        return []

    def history_block_reads(self, core_id: int) -> int:
        return 0


class LegacyNullPrefetcher(LegacyPrefetcher):
    pass


class LegacyNextLinePrefetcher(LegacyPrefetcher):
    name = "next_line"

    def __init__(self, config: Optional[NextLineConfig] = None) -> None:
        self._config = config if config is not None else NextLineConfig()
        self._degree = self._config.degree

    def on_access(self, core_id: int, block_address: int, outcome: int) -> List[int]:
        if outcome == HIT:
            return []
        return list(range(block_address + 1, block_address + 1 + self._degree))


class LegacySpatialCompactor:
    __slots__ = ("_region_blocks", "_trigger", "_mask")

    def __init__(self, region_blocks: int) -> None:
        if region_blocks < 2:
            raise PrefetcherError("a spatial region must cover at least 2 blocks")
        self._region_blocks = region_blocks
        self._trigger: Optional[int] = None
        self._mask = 0

    def feed(self, block_address: int) -> Optional[Record]:
        trigger = self._trigger
        if trigger is None:
            self._trigger = block_address
            self._mask = 0
            return None
        offset = block_address - trigger
        if 0 <= offset < self._region_blocks:
            if offset > 0:
                self._mask |= 1 << (offset - 1)
            return None
        record = (trigger, self._mask)
        self._trigger = block_address
        self._mask = 0
        return record


def legacy_expand_record(record: Record, region_blocks: int) -> List[int]:
    trigger, mask = record
    blocks = [trigger]
    for offset in range(1, region_blocks):
        if mask & (1 << (offset - 1)):
            blocks.append(trigger + offset)
    return blocks


class LegacyHistoryBuffer:
    __slots__ = ("_capacity", "_records", "_next_pos")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise PrefetcherError("history buffer needs a positive capacity")
        self._capacity = capacity
        self._records: List[Optional[Record]] = [None] * capacity
        self._next_pos = 0

    def append(self, record: Record) -> int:
        pos = self._next_pos
        self._records[pos % self._capacity] = record
        self._next_pos = pos + 1
        return pos

    def valid(self, pos: int) -> bool:
        return 0 <= pos < self._next_pos and pos >= self._next_pos - self._capacity

    def get(self, pos: int) -> Optional[Record]:
        if not self.valid(pos):
            return None
        return self._records[pos % self._capacity]


class LegacyIndexTable:
    __slots__ = ("_capacity", "_entries")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise PrefetcherError("index table needs a positive capacity")
        self._capacity = capacity
        self._entries: OrderedDict[int, int] = OrderedDict()

    def put(self, trigger: int, pos: int) -> None:
        entries = self._entries
        if trigger in entries:
            entries[trigger] = pos
            entries.move_to_end(trigger)
            return
        entries[trigger] = pos
        if len(entries) > self._capacity:
            entries.popitem(last=False)

    def get(self, trigger: int) -> Optional[int]:
        return self._entries.get(trigger)


class _LegacyStream:
    __slots__ = ("next_pos", "outstanding", "last_llc_block")

    def __init__(self, next_pos: int) -> None:
        self.next_pos = next_pos
        self.outstanding: set[int] = set()
        self.last_llc_block = -1


class LegacyStreamEngine:
    def __init__(
        self,
        history: LegacyHistoryBuffer,
        index: LegacyIndexTable,
        stream_config: StreamBufferConfig,
        region_blocks: int,
        records_per_llc_block: int = 0,
    ) -> None:
        self._history = history
        self._index = index
        self._config = stream_config
        self._region_blocks = region_blocks
        self._records_per_llc_block = records_per_llc_block
        self._streams: List[_LegacyStream] = []
        self._owner: Dict[int, _LegacyStream] = {}
        self.dispatches = 0
        self.record_reads = 0
        self.llc_block_reads = 0

    def _read_record(self, stream: _LegacyStream) -> List[int]:
        record = self._history.get(stream.next_pos)
        if record is None:
            return []
        if self._records_per_llc_block:
            llc_block = stream.next_pos // self._records_per_llc_block
            if llc_block != stream.last_llc_block:
                stream.last_llc_block = llc_block
                self.llc_block_reads += 1
        stream.next_pos += 1
        self.record_reads += 1
        return legacy_expand_record(record, self._region_blocks)

    def _track(self, stream: _LegacyStream, blocks: List[int]) -> List[int]:
        fresh = []
        owner = self._owner
        for block in blocks:
            if block not in owner:
                owner[block] = stream
                stream.outstanding.add(block)
                fresh.append(block)
        return fresh

    def _retire_stream(self, stream: _LegacyStream) -> None:
        for block in stream.outstanding:
            self._owner.pop(block, None)
        stream.outstanding.clear()

    def on_miss(self, block_address: int) -> List[int]:
        stale = self._owner.pop(block_address, None)
        if stale is not None:
            stale.outstanding.discard(block_address)
        pos = self._index.get(block_address)
        if pos is None or not self._history.valid(pos):
            return []
        stream = _LegacyStream(pos)
        if len(self._streams) >= self._config.num_streams:
            self._retire_stream(self._streams.pop(0))
        self._streams.append(stream)
        self.dispatches += 1
        blocks: List[int] = []
        for _ in range(self._config.lookahead_records):
            blocks.extend(self._read_record(stream))
        prefetches = self._track(stream, blocks)
        return [b for b in prefetches if b != block_address]

    def on_consume(self, block_address: int) -> List[int]:
        stream = self._owner.pop(block_address, None)
        if stream is None:
            return []
        stream.outstanding.discard(block_address)
        if len(stream.outstanding) >= self._config.capacity_records * self._region_blocks:
            return []
        return self._track(stream, self._read_record(stream))


class LegacyPIFPrefetcher(LegacyPrefetcher):
    name = "pif"

    def __init__(self, num_cores: int, config: Optional[PIFConfig] = None) -> None:
        if num_cores < 1:
            raise PrefetcherError("need at least one core")
        self._config = config if config is not None else PIFConfig()
        region_blocks = self._config.spatial_region.region_blocks
        self._compactors = [LegacySpatialCompactor(region_blocks) for _ in range(num_cores)]
        self._histories = [
            LegacyHistoryBuffer(self._config.history_entries) for _ in range(num_cores)
        ]
        self._indices = [LegacyIndexTable(self._config.index_entries) for _ in range(num_cores)]
        self._streams = [
            LegacyStreamEngine(
                self._histories[core],
                self._indices[core],
                self._config.stream_buffer,
                region_blocks,
            )
            for core in range(num_cores)
        ]

    def on_access(self, core_id: int, block_address: int, outcome: int) -> List[int]:
        record = self._compactors[core_id].feed(block_address)
        if record is not None:
            pos = self._histories[core_id].append(record)
            self._indices[core_id].put(record[0], pos)
        if outcome == MISS:
            return self._streams[core_id].on_miss(block_address)
        return self._streams[core_id].on_consume(block_address)


class LegacySHIFTPrefetcher(LegacyPrefetcher):
    name = "shift"

    def __init__(
        self,
        num_cores: int,
        config: Optional[SHIFTConfig] = None,
        trainer_core: int = 0,
    ) -> None:
        if num_cores < 1:
            raise PrefetcherError("need at least one core")
        if not (0 <= trainer_core < num_cores):
            raise PrefetcherError("trainer core out of range")
        self._config = config if config is not None else SHIFTConfig()
        self._trainer_core = trainer_core
        region_blocks = self._config.spatial_region.region_blocks
        self._compactor = LegacySpatialCompactor(region_blocks)
        self._history = LegacyHistoryBuffer(self._config.history_entries)
        self._index = LegacyIndexTable(self._config.history_entries)
        records_per_block = (
            self._config.records_per_llc_block if self._config.virtualized else 0
        )
        self._streams = [
            LegacyStreamEngine(
                self._history,
                self._index,
                self._config.stream_buffer,
                region_blocks,
                records_per_llc_block=records_per_block,
            )
            for _ in range(num_cores)
        ]

    def on_access(self, core_id: int, block_address: int, outcome: int) -> List[int]:
        if core_id == self._trainer_core:
            record = self._compactor.feed(block_address)
            if record is not None:
                pos = self._history.append(record)
                self._index.put(record[0], pos)
        if outcome == MISS:
            return self._streams[core_id].on_miss(block_address)
        return self._streams[core_id].on_consume(block_address)

    def history_block_reads(self, core_id: int) -> int:
        if self._config.zero_latency_history or not self._config.virtualized:
            return 0
        return self._streams[core_id].llc_block_reads


def legacy_make_prefetcher(
    name: str,
    system: SystemConfig,
    pif_config: Optional[PIFConfig] = None,
    shift_config: Optional[SHIFTConfig] = None,
    next_line_config: Optional[NextLineConfig] = None,
) -> LegacyPrefetcher:
    if name in ("none", "baseline"):
        return LegacyNullPrefetcher()
    if name in ("next_line", "nextline", "nl"):
        return LegacyNextLinePrefetcher(next_line_config)
    if name == "pif":
        return LegacyPIFPrefetcher(system.num_cores, pif_config)
    if name == "shift":
        return LegacySHIFTPrefetcher(system.num_cores, shift_config)
    raise PrefetcherError(f"unknown prefetcher {name!r}; known: none, next_line, pif, shift")


class LegacySimulationEngine:
    """The PR-1 round-robin simulation loop, verbatim."""

    def __init__(
        self,
        system: Optional[SystemConfig] = None,
        prefetcher: Optional[LegacyPrefetcher] = None,
        prefetch_buffer_blocks: int = DEFAULT_PREFETCH_BUFFER_BLOCKS,
    ) -> None:
        self._system = system if system is not None else scaled_system()
        self._prefetcher = prefetcher if prefetcher is not None else LegacyPrefetcher()
        self._buffer_blocks = prefetch_buffer_blocks

    def run(self, trace_set: TraceSet) -> SimulationResult:
        system = self._system
        if trace_set.num_cores > system.num_cores:
            raise SimulationError(
                f"trace set has {trace_set.num_cores} cores but the system "
                f"only has {system.num_cores}"
            )
        prefetcher = self._prefetcher
        on_access = prefetcher.on_access

        cores = sorted(trace_set.traces, key=lambda t: t.core_id)
        caches = {t.core_id: LegacySetAssociativeCache(system.l1i) for t in cores}
        buffers = {t.core_id: LegacyPrefetchBuffer(self._buffer_blocks) for t in cores}
        results = {
            t.core_id: CoreResult(
                core_id=t.core_id,
                accesses=t.num_accesses,
                instructions=t.num_instructions,
            )
            for t in cores
        }

        max_len = max(t.num_accesses for t in cores)
        lanes = [
            (t.core_id, t.addresses, caches[t.core_id], buffers[t.core_id], results[t.core_id])
            for t in cores
        ]
        miss_latency = system.llc_demand_latency_cycles()
        inflight = {
            t.core_id: max(
                1,
                round(miss_latency * system.core.base_ipc / t.instructions_per_block),
            )
            for t in cores
        }
        for step in range(max_len):
            for core_id, addresses, cache, buffer, stats in lanes:
                if step >= len(addresses):
                    continue
                address = addresses[step]
                if cache.access(address):
                    outcome = HIT
                    stats.demand_hits += 1
                else:
                    issued_at = buffer.consume(address)
                    if issued_at is not None:
                        outcome = PREFETCH_HIT
                        if step - issued_at >= inflight[core_id]:
                            stats.prefetch_hits += 1
                        else:
                            stats.late_hits += 1
                    else:
                        outcome = MISS
                        stats.misses += 1
                    cache.insert(address)
                for block in on_access(core_id, address, outcome):
                    if not cache.contains(block) and buffer.insert(block, step):
                        stats.prefetches_issued += 1

        for lane_core_id, _, _, lane_buffer, stats in lanes:
            stats.prefetches_unused = lane_buffer.evicted_unused + len(lane_buffer)
            stats.history_block_reads = prefetcher.history_block_reads(lane_core_id)
        return SimulationResult(
            prefetcher_name=prefetcher.name,
            system=system,
            cores=[results[t.core_id] for t in cores],
        )


def legacy_simulate(
    trace_set: TraceSet,
    system: Optional[SystemConfig] = None,
    prefetcher: "LegacyPrefetcher | str" = "none",
    **factory_kwargs,
) -> SimulationResult:
    """PR-1 equivalent of :func:`repro.sim.simulate`."""
    sys_config = system if system is not None else scaled_system()
    if isinstance(prefetcher, str):
        prefetcher = legacy_make_prefetcher(prefetcher, sys_config, **factory_kwargs)
    engine = LegacySimulationEngine(system=sys_config, prefetcher=prefetcher)
    return engine.run(trace_set)


__all__ = [
    "LegacySetAssociativeCache",
    "LegacyPrefetchBuffer",
    "LegacySimulationEngine",
    "legacy_simulate",
    "legacy_make_prefetcher",
]
