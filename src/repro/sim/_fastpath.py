"""Specialized simulation loops for the built-in prefetcher engines.

The generic loop in :mod:`repro.sim.engine` pays for a method call per cache
access, per buffer probe and per prefetcher decision — in CPython that is
most of the simulation's wall clock.  This module provides loops specialized
per engine family that inline those operations on the underscore attributes
of :class:`~repro.sim.cache.SetAssociativeCache`,
:class:`~repro.sim.cache.PrefetchBuffer` and the stream machinery of
:mod:`repro.sim.prefetchers`, with every loop-invariant lookup hoisted into
locals:

* :func:`run_baseline` — no prefetcher: a pure cache hit/miss loop;
* :func:`run_next_line` — the tagged next-N-line engine, fully inlined;
* :func:`run_stream_per_core` — PIF; per-core state means cores can be
  simulated sequentially with *identical* results to the round-robin order
  (core ``c``'s ``k``-th access always happens at global step ``k``);
* :func:`run_stream_shared` — SHIFT and consolidated SHIFT; cores share the
  history, so the round-robin interleaving is semantically load-bearing.
  Each lane runs as a generator, keeping its hot state in locals across
  steps, and the driver resumes them round-robin.

Shared-LLC modelling and per-core loops: the LLC's LRU state is shared by
all cores, so the order in which L1 misses and prefetch fetches reach it is
semantically load-bearing even for engines whose *prefetcher* state is
per-core.  The per-core loops therefore record their LLC requests as
``(step, address, is_demand)`` events and :func:`_replay_llc` replays the
merged streams in exactly the round-robin order of the generic loop
(step-major, lanes in core-id order, a miss's demand classification before
the prefetches it triggers).  L1 and prefetcher behaviour is unaffected —
the LLC sits below the L1s and only classifies misses — so the per-core
reordering argument for those structures still holds.  The SHIFT lanes
already run round-robin and access the LLC inline.

Every loop is behaviour-pinned to the public-API implementations: the
regression tests assert exact equality of all per-core counters against both
the generic loop and the frozen PR-1 reference in :mod:`repro.sim._legacy`
(which predates the LLC model, so the two classification counters are pinned
against the generic loop instead).  Any semantic change here that is not
mirrored there is a bug.

These loops are the ``python`` backend of :mod:`repro.sim.backends` — the
reference implementation every other backend (e.g. the vectorized
``numpy`` one) is pinned against, and the exact fallback those backends
use where their assumptions do not hold.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Tuple

from .cache import PrefetchBuffer, SetAssociativeCache
from .prefetchers import (
    ConsolidatedSHIFTPrefetcher,
    PIFPrefetcher,
    SHIFTPrefetcher,
    _expand_offsets,
    _Stream,
)

if TYPE_CHECKING:  # engine imports this module; avoid the runtime cycle.
    from .engine import CoreResult
    from .llc import SharedLLC

#: One simulation lane: (core id, trace, cache, buffer, stats).  The trace
#: element is a :class:`~repro.workloads.trace.CoreTrace` (the columnar IR)
#: when built by the engine, but any plain int sequence works — every loop
#: normalizes through :func:`address_list`.
Lane = Tuple[int, "CoreTrace | List[int]", SetAssociativeCache, PrefetchBuffer, "CoreResult"]

#: One recorded LLC request of a per-core loop: (step, address, is_demand).
LLCEvent = Tuple[int, int, bool]

if TYPE_CHECKING:
    from ..workloads.trace import CoreTrace


def address_list(addresses) -> List[int]:
    """The plain-``list`` view of a lane's trace.

    A :class:`~repro.workloads.trace.CoreTrace` exposes its columnar buffer
    as a cached list through ``.addresses`` (materialized once per trace);
    raw sequences pass through untouched.  The CPython loops iterate the
    list — identical speed to the pre-columnar representation.
    """
    view = getattr(addresses, "addresses", None)
    return addresses if view is None else view


def _replay_llc(
    llc: "SharedLLC | None",
    per_lane: List[Tuple["CoreResult", List[LLCEvent]]],
) -> None:
    """Replay recorded LLC requests in the generic loop's round-robin order.

    ``per_lane`` pairs each lane's stats with its LLC events in lane
    (core-id) order; each lane's events are already step-sorted, so the
    merged order — step-major, lane order within a step, recording order
    within a (lane, step) — is exactly the order the generic round-robin
    loop would have issued them in.  The LLC operations are inlined on the
    underscore attributes (``SharedLLC.access_demand`` / ``access_prefetch``
    semantics), like every other fast path.
    """
    if llc is None:
        return
    sets = llc._sets
    num_sets = llc._num_sets
    avail = llc._avail
    banks = llc._banks
    bank_accesses = llc.bank_accesses
    pinned = llc._pinned
    demand_hits = demand_misses = prefetch_hits = prefetch_misses = 0
    lanes = [(stats, events, len(events)) for stats, events in per_lane]
    pointers = [0] * len(lanes)
    remaining = sum(end for _, _, end in lanes)
    step = 0
    while remaining:
        for lane_index, (stats, events, end) in enumerate(lanes):
            pos = pointers[lane_index]
            while pos < end and events[pos][0] == step:
                _, address, is_demand = events[pos]
                pos += 1
                remaining -= 1
                set_index = address % num_sets
                bank_accesses[set_index % banks] += 1
                lines = sets[set_index]
                if address in pinned:
                    hit = True
                elif address in lines:
                    if lines[0] != address:
                        lines.remove(address)
                        lines.insert(0, address)
                    hit = True
                else:
                    lines.insert(0, address)
                    if len(lines) > avail[set_index]:
                        lines.pop()
                    hit = False
                if is_demand:
                    if hit:
                        demand_hits += 1
                        stats.llc_hits += 1
                    else:
                        demand_misses += 1
                        stats.memory_misses += 1
                elif hit:
                    prefetch_hits += 1
                else:
                    prefetch_misses += 1
            pointers[lane_index] = pos
        step += 1
    llc.demand_hits += demand_hits
    llc.demand_misses += demand_misses
    llc.prefetch_hits += prefetch_hits
    llc.prefetch_misses += prefetch_misses


def run_baseline(lanes: List[Lane], llc: "SharedLLC | None" = None) -> None:
    """No-prefetch loop: every access is a demand hit or a demand miss."""
    per_lane: List[Tuple["CoreResult", List[LLCEvent]]] = []
    for _core_id, addresses, cache, _buffer, stats in lanes:
        addresses = address_list(addresses)
        sets = cache._sets
        num_sets = cache._num_sets
        assoc = cache._associativity
        events: List[LLCEvent] = []
        record = events.append
        track_llc = llc is not None
        demand_hits = 0
        misses = 0
        step = 0
        for address in addresses:
            lines = sets[address % num_sets]
            if address in lines:
                if lines[0] != address:
                    lines.remove(address)
                    lines.insert(0, address)
                demand_hits += 1
            else:
                misses += 1
                if track_llc:
                    record((step, address, True))
                lines.insert(0, address)
                if len(lines) > assoc:
                    lines.pop()
            step += 1
        stats.demand_hits = demand_hits
        stats.misses = misses
        per_lane.append((stats, events))
    _replay_llc(llc, per_lane)


def run_next_line(
    lanes: List[Lane],
    inflight: Dict[int, int],
    degree: int,
    llc: "SharedLLC | None" = None,
) -> None:
    """Tagged next-N-line loop: issue on every miss and prefetch-buffer hit."""
    per_lane: List[Tuple["CoreResult", List[LLCEvent]]] = []
    for core_id, addresses, cache, buffer, stats in lanes:
        addresses = address_list(addresses)
        sets = cache._sets
        num_sets = cache._num_sets
        assoc = cache._associativity
        bmap = buffer._blocks
        bcap = buffer._capacity
        bpop = bmap.pop
        bpopitem = bmap.popitem
        blen = len(bmap)
        inflight_c = inflight[core_id]
        events: List[LLCEvent] = []
        record = events.append
        track_llc = llc is not None
        demand_hits = prefetch_hits = late_hits = misses = 0
        issued = evicted = 0
        step = 0
        for address in addresses:
            lines = sets[address % num_sets]
            if address in lines:
                if lines[0] != address:
                    lines.remove(address)
                    lines.insert(0, address)
                demand_hits += 1
            else:
                issued_at = bpop(address, None)
                if issued_at is not None:
                    blen -= 1
                    if step - issued_at >= inflight_c:
                        prefetch_hits += 1
                    else:
                        late_hits += 1
                else:
                    misses += 1
                    if track_llc:
                        record((step, address, True))
                lines.insert(0, address)
                if len(lines) > assoc:
                    lines.pop()
                for block in range(address + 1, address + 1 + degree):
                    if block not in sets[block % num_sets] and block not in bmap:
                        bmap[block] = step
                        blen += 1
                        issued += 1
                        if track_llc:
                            record((step, block, False))
                        if blen > bcap:
                            bpopitem(last=False)
                            blen -= 1
                            evicted += 1
            step += 1
        stats.demand_hits = demand_hits
        stats.prefetch_hits = prefetch_hits
        stats.late_hits = late_hits
        stats.misses = misses
        stats.prefetches_issued = issued
        buffer.evicted_unused = evicted
        per_lane.append((stats, events))
    _replay_llc(llc, per_lane)


def run_stream_per_core(
    lanes: List[Lane],
    inflight: Dict[int, int],
    prefetcher: PIFPrefetcher,
    llc: "SharedLLC | None" = None,
) -> None:
    """PIF loop: private compactor/history/index/streams, fully inlined."""
    config = prefetcher._config
    region_blocks = config.spatial_region.region_blocks
    offsets_table = _expand_offsets(region_blocks)
    num_streams = config.stream_buffer.num_streams
    lookahead = config.stream_buffer.lookahead_records
    outstanding_cap = config.stream_buffer.capacity_records * region_blocks
    per_lane: List[Tuple["CoreResult", List[LLCEvent]]] = []
    for core_id, addresses, cache, buffer, stats in lanes:
        addresses = address_list(addresses)
        engine = prefetcher._streams[core_id]
        history = prefetcher._histories[core_id]
        index = prefetcher._indices[core_id]
        compactor = prefetcher._compactors[core_id]
        records = history._records
        hist_cap = history._capacity
        next_pos = history._next_pos
        index_entries = index._entries
        index_capacity = index._capacity
        index_get = index_entries.get
        index_move_to_end = index_entries.move_to_end
        index_popitem = index_entries.popitem
        streams = engine._streams
        owner = engine._owner
        owner_pop = owner.pop
        dispatches = engine.dispatches
        record_reads = engine.record_reads
        sets = cache._sets
        num_sets = cache._num_sets
        assoc = cache._associativity
        bmap = buffer._blocks
        bcap = buffer._capacity
        bpop = bmap.pop
        bpopitem = bmap.popitem
        blen = len(bmap)
        inflight_c = inflight[core_id]
        trigger = compactor._trigger
        mask = compactor._mask
        events: List[LLCEvent] = []
        record_llc = events.append
        track_llc = llc is not None
        demand_hits = prefetch_hits = late_hits = misses = 0
        issued = evicted = 0
        step = 0
        for address in addresses:
            # Spatial compaction (SpatialCompactor.feed, inlined).
            if trigger is None:
                trigger = address
                mask = 0
            else:
                offset = address - trigger
                if 0 <= offset < region_blocks:
                    if offset:
                        mask |= 1 << (offset - 1)
                else:
                    # Region closed: append to the history (HistoryBuffer.
                    # append) and index the trigger (IndexTable.put).
                    records[next_pos % hist_cap] = (trigger, mask)
                    if trigger in index_entries:
                        index_entries[trigger] = next_pos
                        index_move_to_end(trigger)
                    else:
                        index_entries[trigger] = next_pos
                        if len(index_entries) > index_capacity:
                            index_popitem(last=False)
                    next_pos += 1
                    trigger = address
                    mask = 0
            # L1-I access (SetAssociativeCache.access / .insert, inlined).
            lines = sets[address % num_sets]
            if address in lines:
                if lines[0] != address:
                    lines.remove(address)
                    lines.insert(0, address)
                demand_hits += 1
                is_miss = False
            else:
                issued_at = bpop(address, None)
                if issued_at is not None:
                    blen -= 1
                    if step - issued_at >= inflight_c:
                        prefetch_hits += 1
                    else:
                        late_hits += 1
                    is_miss = False
                else:
                    misses += 1
                    is_miss = True
                    if track_llc:
                        record_llc((step, address, True))
                lines.insert(0, address)
                if len(lines) > assoc:
                    lines.pop()
            if is_miss:
                # StreamEngine.on_miss, inlined.
                stale = owner_pop(address, None)
                if stale is not None:
                    stale.outstanding.discard(address)
                pos = index_get(address)
                if pos is not None and 0 <= pos < next_pos and pos >= next_pos - hist_cap:
                    stream = _Stream(pos)
                    if len(streams) >= num_streams:
                        retired = streams.pop(0)
                        for block in retired.outstanding:
                            owner_pop(block, None)
                        retired.outstanding.clear()
                    streams.append(stream)
                    dispatches += 1
                    blocks: List[int] = []
                    spos = pos
                    for _ in range(lookahead):
                        if spos < 0 or spos >= next_pos or spos < next_pos - hist_cap:
                            break
                        record = records[spos % hist_cap]
                        if record is None:
                            break
                        spos += 1
                        record_reads += 1
                        rec_trigger, rec_mask = record
                        blocks.append(rec_trigger)
                        for offset in offsets_table[rec_mask]:
                            blocks.append(rec_trigger + offset)
                    stream.next_pos = spos
                    outstanding = stream.outstanding
                    for block in blocks:
                        if block not in owner:
                            owner[block] = stream
                            outstanding.add(block)
                            if (
                                block != address
                                and block not in sets[block % num_sets]
                                and block not in bmap
                            ):
                                bmap[block] = step
                                blen += 1
                                issued += 1
                                if track_llc:
                                    record_llc((step, block, False))
                                if blen > bcap:
                                    bpopitem(last=False)
                                    blen -= 1
                                    evicted += 1
            else:
                # StreamEngine.on_consume, inlined.
                stream = owner_pop(address, None)
                if stream is not None:
                    outstanding = stream.outstanding
                    outstanding.discard(address)
                    if len(outstanding) < outstanding_cap:
                        spos = stream.next_pos
                        if 0 <= spos < next_pos and spos >= next_pos - hist_cap:
                            record = records[spos % hist_cap]
                            if record is not None:
                                stream.next_pos = spos + 1
                                record_reads += 1
                                rec_trigger, rec_mask = record
                                if rec_trigger not in owner:
                                    owner[rec_trigger] = stream
                                    outstanding.add(rec_trigger)
                                    if (
                                        rec_trigger not in sets[rec_trigger % num_sets]
                                        and rec_trigger not in bmap
                                    ):
                                        bmap[rec_trigger] = step
                                        blen += 1
                                        issued += 1
                                        if track_llc:
                                            record_llc((step, rec_trigger, False))
                                        if blen > bcap:
                                            bpopitem(last=False)
                                            blen -= 1
                                            evicted += 1
                                for offset in offsets_table[rec_mask]:
                                    block = rec_trigger + offset
                                    if block not in owner:
                                        owner[block] = stream
                                        outstanding.add(block)
                                        if (
                                            block not in sets[block % num_sets]
                                            and block not in bmap
                                        ):
                                            bmap[block] = step
                                            blen += 1
                                            issued += 1
                                            if track_llc:
                                                record_llc((step, block, False))
                                            if blen > bcap:
                                                bpopitem(last=False)
                                                blen -= 1
                                                evicted += 1
            step += 1
        # Write the hoisted state back to the owning objects.
        stats.demand_hits = demand_hits
        stats.prefetch_hits = prefetch_hits
        stats.late_hits = late_hits
        stats.misses = misses
        stats.prefetches_issued = issued
        buffer.evicted_unused = evicted
        history._next_pos = next_pos
        compactor._trigger = trigger
        compactor._mask = mask
        engine.dispatches = dispatches
        engine.record_reads = record_reads
        per_lane.append((stats, events))
    _replay_llc(llc, per_lane)


def _passive_lane(
    addresses: List[int],
    cache: SetAssociativeCache,
    stats: "CoreResult",
    llc: "SharedLLC | None" = None,
) -> Iterator[None]:
    """A lane with no stream engine (a core outside every SHIFT group)."""
    sets = cache._sets
    num_sets = cache._num_sets
    assoc = cache._associativity
    llc_demand = llc.access_demand if llc is not None else None
    demand_hits = 0
    misses = 0
    llc_hits = memory_misses = 0
    for address in addresses:
        lines = sets[address % num_sets]
        if address in lines:
            if lines[0] != address:
                lines.remove(address)
                lines.insert(0, address)
            demand_hits += 1
        else:
            misses += 1
            if llc_demand is not None:
                if llc_demand(address):
                    llc_hits += 1
                else:
                    memory_misses += 1
            lines.insert(0, address)
            if len(lines) > assoc:
                lines.pop()
        yield
    stats.demand_hits = demand_hits
    stats.misses = misses
    stats.llc_hits = llc_hits
    stats.memory_misses = memory_misses


def _stream_lane(
    addresses: List[int],
    cache: SetAssociativeCache,
    buffer: PrefetchBuffer,
    stats: "CoreResult",
    engine,
    history,
    index,
    compactor,
    is_trainer: bool,
    region_blocks: int,
    num_streams: int,
    lookahead: int,
    outstanding_cap: int,
    records_per_llc_block: int,
    inflight_c: int,
    llc: "SharedLLC | None" = None,
) -> Iterator[None]:
    """One core of a shared-history engine, resumed round-robin per access.

    The generator keeps all per-core state in frame locals; only the shared
    history/index state is read through the owning objects, because the
    trainer lane mutates it between this lane's resumptions.  The shared
    LLC is accessed inline — these lanes already run in the round-robin
    order that defines the LLC's semantics.
    """
    offsets_table = _expand_offsets(region_blocks)
    llc_demand = llc.access_demand if llc is not None else None
    llc_prefetch = llc.access_prefetch if llc is not None else None
    records = history._records
    hist_cap = history._capacity
    index_entries = index._entries
    index_capacity = index._capacity
    index_get = index_entries.get
    index_move_to_end = index_entries.move_to_end
    index_popitem = index_entries.popitem
    streams = engine._streams
    owner = engine._owner
    owner_pop = owner.pop
    dispatches = engine.dispatches
    record_reads = engine.record_reads
    llc_reads = engine.llc_block_reads
    sets = cache._sets
    num_sets = cache._num_sets
    assoc = cache._associativity
    bmap = buffer._blocks
    bcap = buffer._capacity
    bpop = bmap.pop
    bpopitem = bmap.popitem
    blen = len(bmap)
    trigger = compactor._trigger if is_trainer else None
    mask = compactor._mask if is_trainer else 0
    demand_hits = prefetch_hits = late_hits = misses = 0
    llc_hits = memory_misses = 0
    issued = evicted = 0
    step = 0
    for address in addresses:
        if is_trainer:
            # SpatialCompactor.feed + HistoryBuffer.append + IndexTable.put.
            if trigger is None:
                trigger = address
                mask = 0
            else:
                offset = address - trigger
                if 0 <= offset < region_blocks:
                    if offset:
                        mask |= 1 << (offset - 1)
                else:
                    next_pos = history._next_pos
                    records[next_pos % hist_cap] = (trigger, mask)
                    if trigger in index_entries:
                        index_entries[trigger] = next_pos
                        index_move_to_end(trigger)
                    else:
                        index_entries[trigger] = next_pos
                        if len(index_entries) > index_capacity:
                            index_popitem(last=False)
                    history._next_pos = next_pos + 1
                    trigger = address
                    mask = 0
        lines = sets[address % num_sets]
        if address in lines:
            if lines[0] != address:
                lines.remove(address)
                lines.insert(0, address)
            demand_hits += 1
            is_miss = False
        else:
            issued_at = bpop(address, None)
            if issued_at is not None:
                blen -= 1
                if step - issued_at >= inflight_c:
                    prefetch_hits += 1
                else:
                    late_hits += 1
                is_miss = False
            else:
                misses += 1
                is_miss = True
                if llc_demand is not None:
                    if llc_demand(address):
                        llc_hits += 1
                    else:
                        memory_misses += 1
            lines.insert(0, address)
            if len(lines) > assoc:
                lines.pop()
        if is_miss:
            # StreamEngine.on_miss, inlined against the shared history.
            stale = owner_pop(address, None)
            if stale is not None:
                stale.outstanding.discard(address)
            pos = index_get(address)
            if pos is not None:
                next_pos = history._next_pos
                if 0 <= pos < next_pos and pos >= next_pos - hist_cap:
                    stream = _Stream(pos)
                    if len(streams) >= num_streams:
                        retired = streams.pop(0)
                        for block in retired.outstanding:
                            owner_pop(block, None)
                        retired.outstanding.clear()
                    streams.append(stream)
                    dispatches += 1
                    blocks: List[int] = []
                    spos = pos
                    for _ in range(lookahead):
                        if spos < 0 or spos >= next_pos or spos < next_pos - hist_cap:
                            break
                        record = records[spos % hist_cap]
                        if record is None:
                            break
                        if records_per_llc_block:
                            llc_block = spos // records_per_llc_block
                            if llc_block != stream.last_llc_block:
                                stream.last_llc_block = llc_block
                                llc_reads += 1
                        spos += 1
                        record_reads += 1
                        rec_trigger, rec_mask = record
                        blocks.append(rec_trigger)
                        for offset in offsets_table[rec_mask]:
                            blocks.append(rec_trigger + offset)
                    stream.next_pos = spos
                    outstanding = stream.outstanding
                    for block in blocks:
                        if block not in owner:
                            owner[block] = stream
                            outstanding.add(block)
                            if (
                                block != address
                                and block not in sets[block % num_sets]
                                and block not in bmap
                            ):
                                bmap[block] = step
                                blen += 1
                                issued += 1
                                if llc_prefetch is not None:
                                    llc_prefetch(block)
                                if blen > bcap:
                                    bpopitem(last=False)
                                    blen -= 1
                                    evicted += 1
        else:
            # StreamEngine.on_consume, inlined against the shared history.
            stream = owner_pop(address, None)
            if stream is not None:
                outstanding = stream.outstanding
                outstanding.discard(address)
                if len(outstanding) < outstanding_cap:
                    spos = stream.next_pos
                    next_pos = history._next_pos
                    if 0 <= spos < next_pos and spos >= next_pos - hist_cap:
                        record = records[spos % hist_cap]
                        if record is not None:
                            if records_per_llc_block:
                                llc_block = spos // records_per_llc_block
                                if llc_block != stream.last_llc_block:
                                    stream.last_llc_block = llc_block
                                    llc_reads += 1
                            stream.next_pos = spos + 1
                            record_reads += 1
                            rec_trigger, rec_mask = record
                            if rec_trigger not in owner:
                                owner[rec_trigger] = stream
                                outstanding.add(rec_trigger)
                                if (
                                    rec_trigger not in sets[rec_trigger % num_sets]
                                    and rec_trigger not in bmap
                                ):
                                    bmap[rec_trigger] = step
                                    blen += 1
                                    issued += 1
                                    if llc_prefetch is not None:
                                        llc_prefetch(rec_trigger)
                                    if blen > bcap:
                                        bpopitem(last=False)
                                        blen -= 1
                                        evicted += 1
                            for offset in offsets_table[rec_mask]:
                                block = rec_trigger + offset
                                if block not in owner:
                                    owner[block] = stream
                                    outstanding.add(block)
                                    if (
                                        block not in sets[block % num_sets]
                                        and block not in bmap
                                    ):
                                        bmap[block] = step
                                        blen += 1
                                        issued += 1
                                        if llc_prefetch is not None:
                                            llc_prefetch(block)
                                        if blen > bcap:
                                            bpopitem(last=False)
                                            blen -= 1
                                            evicted += 1
        step += 1
        yield
    stats.demand_hits = demand_hits
    stats.prefetch_hits = prefetch_hits
    stats.late_hits = late_hits
    stats.misses = misses
    stats.llc_hits = llc_hits
    stats.memory_misses = memory_misses
    stats.prefetches_issued = issued
    buffer.evicted_unused = evicted
    if is_trainer:
        compactor._trigger = trigger
        compactor._mask = mask
    engine.dispatches = dispatches
    engine.record_reads = record_reads
    engine.llc_block_reads = llc_reads


def resolve_stream_roles(lanes: List[Lane], prefetcher):
    """Resolve each lane's role against the shared history groups.

    Returns ``(groups, roles)``: ``groups`` is
    ``prefetcher.history_groups()`` and ``roles[i]`` is
    ``(group_index, stream_engine, is_trainer)`` for ``lanes[i]``, or
    ``None`` for a passive lane (a core outside every group).  Both the
    python round-robin driver and the numpy epoch solver resolve roles
    here, so the backends can never disagree about which lane trains or
    consumes which history.
    """
    groups = prefetcher.history_groups()
    group_of_core: Dict[int, int] = {}
    for group_index, group in enumerate(groups):
        for core_id in group.core_ids:
            group_of_core[core_id] = group_index
    streams = prefetcher._streams
    roles = []
    for core_id, _addresses, _cache, _buffer, _stats in lanes:
        group_index = group_of_core.get(core_id)
        if group_index is None:
            roles.append(None)
        else:
            roles.append(
                (group_index, streams[core_id], core_id == groups[group_index].trainer_core)
            )
    return groups, roles


def run_stream_shared(
    lanes: List[Lane],
    inflight: Dict[int, int],
    prefetcher: "SHIFTPrefetcher | ConsolidatedSHIFTPrefetcher",
    llc: "SharedLLC | None" = None,
) -> None:
    """SHIFT loop: lanes advance round-robin, one access per core per step."""
    config = prefetcher._config
    region_blocks = config.spatial_region.region_blocks
    num_streams = config.stream_buffer.num_streams
    lookahead = config.stream_buffer.lookahead_records
    outstanding_cap = config.stream_buffer.capacity_records * region_blocks
    groups, roles = resolve_stream_roles(lanes, prefetcher)
    generators: List[Iterator[None]] = []
    for (core_id, addresses, cache, buffer, stats), role in zip(lanes, roles):
        addresses = address_list(addresses)
        if role is None:
            generators.append(_passive_lane(addresses, cache, stats, llc))
            continue
        group_index, engine, is_trainer = role
        group = groups[group_index]
        generators.append(
            _stream_lane(
                addresses,
                cache,
                buffer,
                stats,
                engine,
                group.history,
                group.index,
                group.compactor,
                is_trainer,
                region_blocks,
                num_streams,
                lookahead,
                outstanding_cap,
                engine._records_per_llc_block,
                inflight[core_id],
                llc,
            )
        )
    # Round-robin driver: resume each live lane once per step; lanes whose
    # traces are exhausted drop out, exactly like the generic loop's skip.
    lengths = {len(addresses) for _, addresses, _, _, _ in lanes}
    if len(lengths) == 1:
        # Equal-length traces (the common case): no lane ever drops out, so
        # drive a fixed number of rounds and then flush the write-backs that
        # run when each generator falls off its trace loop.
        for _ in range(lengths.pop()):
            for generator in generators:
                next(generator)
        for generator in generators:
            try:
                next(generator)
            except StopIteration:
                pass
        return
    active = generators
    while active:
        alive: List[Iterator[None]] = []
        append = alive.append
        for generator in active:
            try:
                next(generator)
            except StopIteration:
                continue
            append(generator)
        active = alive


def run_per_core_generic(
    lanes: List[Lane], inflight: Dict[int, int], prefetcher, llc: "SharedLLC | None" = None
) -> None:
    """Sequential per-core loop for state-private engines (`shares_state`
    False) that have no fully inlined specialization: cache and buffer are
    inlined, the prefetcher keeps its public ``on_access`` call."""
    on_access = prefetcher.on_access
    per_lane: List[Tuple["CoreResult", List[LLCEvent]]] = []
    for core_id, addresses, cache, buffer, stats in lanes:
        addresses = address_list(addresses)
        sets = cache._sets
        num_sets = cache._num_sets
        assoc = cache._associativity
        bmap = buffer._blocks
        bcap = buffer._capacity
        bpop = bmap.pop
        bpopitem = bmap.popitem
        blen = len(bmap)
        inflight_c = inflight[core_id]
        events: List[LLCEvent] = []
        record = events.append
        track_llc = llc is not None
        demand_hits = prefetch_hits = late_hits = misses = 0
        issued = evicted = 0
        step = 0
        for address in addresses:
            lines = sets[address % num_sets]
            if address in lines:
                if lines[0] != address:
                    lines.remove(address)
                    lines.insert(0, address)
                demand_hits += 1
                outcome = 0
            else:
                issued_at = bpop(address, None)
                if issued_at is not None:
                    blen -= 1
                    if step - issued_at >= inflight_c:
                        prefetch_hits += 1
                    else:
                        late_hits += 1
                    outcome = 2
                else:
                    misses += 1
                    outcome = 1
                    if track_llc:
                        record((step, address, True))
                lines.insert(0, address)
                if len(lines) > assoc:
                    lines.pop()
            for block in on_access(core_id, address, outcome):
                if block not in sets[block % num_sets] and block not in bmap:
                    bmap[block] = step
                    blen += 1
                    issued += 1
                    if track_llc:
                        record((step, block, False))
                    if blen > bcap:
                        bpopitem(last=False)
                        blen -= 1
                        evicted += 1
            step += 1
        stats.demand_hits = demand_hits
        stats.prefetch_hits = prefetch_hits
        stats.late_hits = late_hits
        stats.misses = misses
        stats.prefetches_issued = issued
        buffer.evicted_unused = evicted
        per_lane.append((stats, events))
    _replay_llc(llc, per_lane)


__all__ = [
    "address_list",
    "run_baseline",
    "run_next_line",
    "run_stream_per_core",
    "run_stream_shared",
    "run_per_core_generic",
]
