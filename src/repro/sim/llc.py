"""Shared last-level cache model.

The LLC of Table I is a NUCA cache of one 512 KB slice per tile, shared by
all cores.  This module models it as one banked, set-associative, true-LRU
cache sitting under the per-core L1-Is: demand instruction blocks and the
virtualized SHIFT history contend for its capacity, and every L1-I miss is
classified as an LLC hit or a memory miss (the timing model charges
:meth:`~repro.config.SystemConfig.memory_demand_latency_cycles` for the
latter).

Two request classes touch the LLC state:

* *demand* accesses — L1-I misses that were not covered by a prefetch; the
  per-core ``llc_hits`` / ``memory_misses`` counters classify these;
* *prefetch* accesses — blocks fetched by a prefetch engine on behalf of a
  core; they warm the LLC exactly like demand fills but are off the
  critical path, so they are not charged per-core (their timeliness is
  already modelled by the in-flight prefetch window).

SHIFT's virtualized history occupies the LLC as *pinned* blocks
(:meth:`SharedLLC.pin_region`): they reserve ways in their sets — shrinking
the capacity available to instruction blocks, which is how Section 5.4's
"history virtualization barely perturbs LLC performance" claim becomes
measurable — and are never evicted, so history reads always hit.  Reads of
history blocks are accounted in :attr:`SharedLLC.history_reads` and charged
an LLC bank access by the timing model.

Layout contract: like :class:`~repro.sim.cache.SetAssociativeCache`, sets
are flat MRU-ordered tag lists so :mod:`repro.sim._fastpath` can replay LLC
traffic through the bound methods without per-access attribute lookups.
The access order across cores is semantically load-bearing (shared LRU
state): the engine defines it as round-robin, one access per core per step,
and the fast paths reproduce it exactly (see ``_replay_llc``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from ..config import LLCConfig
from ..errors import SimulationError
from .cache import digest_state


@dataclass
class LLCStats:
    """Aggregate statistics of one simulation run's shared LLC."""

    total_blocks: int
    num_sets: int
    associativity: int
    banks: int
    pinned_blocks: int
    resident_blocks: int
    demand_hits: int
    demand_misses: int
    prefetch_hits: int
    prefetch_misses: int
    history_reads: int
    bank_accesses: List[int] = field(default_factory=list)

    @property
    def demand_accesses(self) -> int:
        return self.demand_hits + self.demand_misses

    @property
    def instruction_accesses(self) -> int:
        """All instruction-block LLC accesses (demand + prefetch)."""
        return self.demand_accesses + self.prefetch_hits + self.prefetch_misses

    @property
    def demand_hit_ratio(self) -> float:
        accesses = self.demand_accesses
        return self.demand_hits / accesses if accesses else 0.0

    @property
    def instruction_hit_ratio(self) -> float:
        """Hit ratio over all instruction-block accesses (demand + prefetch).

        The metric behind the Section 5.4 comparison: history virtualization
        must leave this ratio essentially unchanged relative to an engine
        that keeps no history in the LLC.
        """
        accesses = self.instruction_accesses
        return (self.demand_hits + self.prefetch_hits) / accesses if accesses else 0.0

    @property
    def occupancy(self) -> float:
        return self.resident_blocks / self.total_blocks if self.total_blocks else 0.0


class SharedLLC:
    """A banked, set-associative, true-LRU shared LLC with pinned regions.

    Geometry comes from :class:`~repro.config.LLCConfig` (one slice per
    core); a block address maps to a set by modulo and to a bank by
    ``set_index % banks``.  Pinned blocks (the virtualized SHIFT history)
    reduce the ways available to instruction blocks in their sets and are
    tracked outside the LRU stacks, so reading them never perturbs the
    replacement state — only capacity and bank occupancy.
    """

    __slots__ = (
        "_num_sets",
        "_associativity",
        "_banks",
        "_sets",
        "_avail",
        "_pinned",
        "demand_hits",
        "demand_misses",
        "prefetch_hits",
        "prefetch_misses",
        "history_reads",
        "bank_accesses",
    )

    def __init__(self, config: LLCConfig, num_cores: int) -> None:
        if num_cores < 1:
            raise SimulationError("the shared LLC needs at least one core's slice")
        total_blocks = config.total_blocks(num_cores)
        num_sets = total_blocks // config.associativity
        if num_sets < 1:
            raise SimulationError("LLC must have at least one set")
        self._num_sets = num_sets
        self._associativity = config.associativity
        self._banks = config.banks
        self._sets: List[List[int]] = [[] for _ in range(num_sets)]
        #: Ways of each set still available to instruction blocks.
        self._avail: List[int] = [config.associativity] * num_sets
        self._pinned: Set[int] = set()
        self.demand_hits = 0
        self.demand_misses = 0
        self.prefetch_hits = 0
        self.prefetch_misses = 0
        self.history_reads = 0
        self.bank_accesses: List[int] = [0] * config.banks

    @property
    def num_sets(self) -> int:
        return self._num_sets

    @property
    def associativity(self) -> int:
        return self._associativity

    @property
    def banks(self) -> int:
        return self._banks

    @property
    def total_blocks(self) -> int:
        return self._num_sets * self._associativity

    @property
    def pinned_blocks(self) -> int:
        return len(self._pinned)

    def pin_region(self, base_block: int, num_blocks: int) -> None:
        """Reserve ``num_blocks`` consecutive blocks from ``base_block``.

        Each pinned block permanently claims one way of its set.  At least
        one way per set must remain for instruction blocks, otherwise the
        demand stream mapping there could never make progress.
        """
        if num_blocks < 1:
            raise SimulationError("a pinned region needs at least one block")
        num_sets = self._num_sets
        avail = self._avail
        for address in range(base_block, base_block + num_blocks):
            if address in self._pinned:
                continue
            set_index = address % num_sets
            if avail[set_index] <= 1:
                raise SimulationError(
                    f"pinned history region of {num_blocks} blocks leaves LLC set "
                    f"{set_index} without a way for instruction blocks"
                )
            avail[set_index] -= 1
            self._pinned.add(address)

    def is_pinned(self, block_address: int) -> bool:
        return block_address in self._pinned

    def contains(self, block_address: int) -> bool:
        """Presence check (pinned or resident) without touching LRU state."""
        if block_address in self._pinned:
            return True
        return block_address in self._sets[block_address % self._num_sets]

    def _access(self, block_address: int) -> bool:
        set_index = block_address % self._num_sets
        self.bank_accesses[set_index % self._banks] += 1
        # Pinned blocks always hit and live outside the LRU stacks; without
        # this check an access to one would miss and insert a duplicate
        # copy into the ways pin_region reserved.
        if block_address in self._pinned:
            return True
        lines = self._sets[set_index]
        if block_address in lines:
            if lines[0] != block_address:
                lines.remove(block_address)
                lines.insert(0, block_address)
            return True
        lines.insert(0, block_address)
        if len(lines) > self._avail[set_index]:
            lines.pop()
        return False

    def access_demand(self, block_address: int) -> bool:
        """An L1-I demand miss looks up the LLC; fills on a miss.

        Returns True when served by the LLC, False when it goes to memory.
        """
        hit = self._access(block_address)
        if hit:
            self.demand_hits += 1
        else:
            self.demand_misses += 1
        return hit

    def access_prefetch(self, block_address: int) -> bool:
        """A prefetch engine fetches a block through the LLC; fills on a miss."""
        hit = self._access(block_address)
        if hit:
            self.prefetch_hits += 1
        else:
            self.prefetch_misses += 1
        return hit

    def add_history_reads(self, num_reads: int) -> None:
        """Account ``num_reads`` reads of pinned history blocks.

        History blocks are pinned, so the reads always hit and never touch
        LRU state; only the access count (and the timing charge derived
        from it) matters.
        """
        if num_reads < 0:
            raise SimulationError("history read count cannot be negative")
        self.history_reads += num_reads

    def resident_blocks(self) -> int:
        """Unpinned instruction blocks currently resident."""
        return sum(len(lines) for lines in self._sets)

    def snapshot(self) -> dict:
        """Serialize LRU stacks, pinned regions, availability and counters.

        Everything is plain lists/ints (JSON-safe).  ``avail`` and
        ``pinned`` are captured directly rather than re-deriving them from
        ``pin_region`` calls, so a restore reproduces exactly the per-set
        way budgets of the run being resumed.
        """
        return {
            "sets": [list(lines) for lines in self._sets],
            "avail": list(self._avail),
            "pinned": sorted(self._pinned),
            "demand_hits": self.demand_hits,
            "demand_misses": self.demand_misses,
            "prefetch_hits": self.prefetch_hits,
            "prefetch_misses": self.prefetch_misses,
            "history_reads": self.history_reads,
            "bank_accesses": list(self.bank_accesses),
        }

    def restore(self, state: dict) -> None:
        """Restore a :meth:`snapshot` into this LLC (same geometry required)."""
        if len(state["sets"]) != self._num_sets:
            raise SimulationError(
                f"LLC snapshot has {len(state['sets'])} sets, "
                f"expected {self._num_sets}"
            )
        self._sets = [[int(tag) for tag in lines] for lines in state["sets"]]
        self._avail = [int(ways) for ways in state["avail"]]
        self._pinned = {int(block) for block in state["pinned"]}
        self.demand_hits = int(state["demand_hits"])
        self.demand_misses = int(state["demand_misses"])
        self.prefetch_hits = int(state["prefetch_hits"])
        self.prefetch_misses = int(state["prefetch_misses"])
        self.history_reads = int(state["history_reads"])
        self.bank_accesses = [int(count) for count in state["bank_accesses"]]

    def state_digest(self) -> str:
        """Content digest of the full LLC state (see
        :func:`~repro.sim.cache.digest_state`)."""
        return digest_state(self.snapshot())

    def stats(self) -> LLCStats:
        return LLCStats(
            total_blocks=self.total_blocks,
            num_sets=self._num_sets,
            associativity=self._associativity,
            banks=self._banks,
            pinned_blocks=len(self._pinned),
            resident_blocks=self.resident_blocks(),
            demand_hits=self.demand_hits,
            demand_misses=self.demand_misses,
            prefetch_hits=self.prefetch_hits,
            prefetch_misses=self.prefetch_misses,
            history_reads=self.history_reads,
            bank_accesses=list(self.bank_accesses),
        )


__all__ = ["SharedLLC", "LLCStats"]
