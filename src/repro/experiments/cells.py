"""Cell-level experiment execution.

A *cell* is the atomic unit of experiment work: one (workload-or-mix,
engine, configuration, seed) simulation.  :func:`execute_cells` runs a batch
of cells either in-process or fanned out over a
:class:`concurrent.futures.ProcessPoolExecutor`, and guarantees that the two
paths produce identical results in an identical order:

* a :class:`CellSpec` is a frozen dataclass of primitives, so it pickles to
  workers and hashes as a dict key;
* every cell is simulated from a freshly generated (or cache-loaded) trace
  set and a fresh prefetcher, so no state leaks between cells whichever
  process runs them;
* ``ProcessPoolExecutor.map`` preserves submission order, so result merging
  never depends on completion order.

Within one process, trace sets are memoized (the baseline and the three
prefetch engines of one workload share one trace set); across processes the
optional on-disk :class:`~repro.workloads.trace_cache.TraceCache` plays the
same role.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import envvars
from ..config import (
    SystemConfig,
    paper_pif_config,
    paper_shift_config,
    paper_system,
    scaled_pif_config,
    scaled_shift_config,
    scaled_system,
)
from ..errors import ConfigurationError
from ..sim import SimulationResult, simulate
from ..workloads.consolidation import ConsolidationMix, generate_consolidated_traces
from ..workloads.generator import generate_traces
from ..workloads.suite import scaled_workload, workload_by_name
from ..workloads.trace import TraceSet
from ..workloads.trace_cache import TraceCache, trace_cache_key

#: Environment variable consulted when ``workers`` is not given explicitly:
#: set it to 4 to route every experiment through the parallel executor (CI
#: uses this to exercise the parallel path for the whole suite).  Declared
#: in :mod:`repro.envvars`; this alias keeps the historical import working.
WORKERS_ENV_VAR = envvars.WORKERS.name

#: Per-process memo of generated trace sets (key -> TraceSet), bounded so a
#: long-lived worker or test process cannot accumulate traces forever.
_TRACE_MEMO: Dict[str, TraceSet] = {}
_TRACE_MEMO_MAX = 8


@dataclass(frozen=True)
class CellSpec:
    """Everything a worker process needs to simulate one experiment cell."""

    workload: str
    engine: str
    system: str = "scaled"
    scale: int = 16
    seed: int = 0
    num_cores: Optional[int] = None
    blocks_per_core: Optional[int] = None
    #: Paper-scale history budget override for PIF/SHIFT (None = 32K).
    history_entries: Optional[int] = None
    #: Workload names of a consolidation mix; empty tuple = single workload.
    consolidation: Tuple[str, ...] = ()
    #: Paper-scale LLC slice size override (None = 512 KB per core).
    llc_bytes_per_core: Optional[int] = None
    #: Simulation backend name (None = ``REPRO_BACKEND`` or ``python``).
    #: Execution strategy only — results are byte-identical across backends,
    #: so the backend is deliberately *not* part of report params or trace
    #: cache keys.
    backend: Optional[str] = None
    #: Chunked-streaming window in blocks (None = monolithic).  Reports are
    #: byte-identical for every chunk geometry; the window still joins the
    #: result-cache key (it selects a different execution path, and the
    #: chunking-invariance CI checks must not serve one geometry's result
    #: from another's cache entry) but *not* the trace cache key (traces are
    #: chunking-independent).
    chunk_blocks: Optional[int] = None


def system_for(
    name: str,
    scale: int,
    num_cores: Optional[int] = None,
    llc_bytes_per_core: Optional[int] = None,
) -> SystemConfig:
    """Resolve a system configuration by name.

    ``num_cores`` sizes the whole CMP — core count, one LLC slice per core,
    and a mesh auto-sized to cover the tiles — not just the traced subset:
    a 4-core sweep point gets a 4-slice LLC (on the 16-tile die of Table I)
    and a 32-core point a 32-slice LLC on a 4x8 mesh, instead of both
    simulating against the default 16-core system (which made >16-core
    sweeps crash outright).  ``llc_bytes_per_core`` overrides the
    paper-scale LLC slice (the Section 5.4 sensitivity axis).
    """
    cores = num_cores if num_cores is not None else 16
    if name == "paper":
        return paper_system(num_cores=cores, llc_bytes_per_core=llc_bytes_per_core)
    if name == "scaled":
        return scaled_system(
            num_cores=cores, scale=scale, llc_bytes_per_core=llc_bytes_per_core
        )
    raise ConfigurationError(f"unknown system {name!r}; known: paper, scaled")


def system_for_cell(cell: CellSpec) -> SystemConfig:
    """The system configuration a cell simulates against."""
    return system_for(cell.system, cell.scale, cell.num_cores, cell.llc_bytes_per_core)


def _specs_for(cell: CellSpec, sys_config: SystemConfig):
    scale = sys_config.scale
    if cell.consolidation:
        return tuple(scaled_workload(workload_by_name(n), scale) for n in cell.consolidation)
    return (scaled_workload(workload_by_name(cell.workload), scale),)


def consolidation_mix_for(cell: CellSpec, sys_config: SystemConfig) -> ConsolidationMix:
    """The single source of the core-group split for a consolidation cell.

    Both trace generation and the SHIFT group construction go through this
    function, so the per-core workload assignment and the prefetcher's
    history groups can never diverge.
    """
    cores = cell.num_cores if cell.num_cores is not None else sys_config.num_cores
    return ConsolidationMix.even_split(_specs_for(cell, sys_config), cores)


def _generate(cell: CellSpec, sys_config: SystemConfig) -> TraceSet:
    if cell.consolidation:
        return generate_consolidated_traces(
            consolidation_mix_for(cell, sys_config),
            sys_config,
            seed=cell.seed,
            blocks_per_core=cell.blocks_per_core,
        )
    spec = _specs_for(cell, sys_config)[0]
    return generate_traces(
        spec,
        sys_config,
        seed=cell.seed,
        num_cores=cell.num_cores,
        blocks_per_core=cell.blocks_per_core,
    )


def trace_key_for(cell: CellSpec) -> str:
    """The on-disk cache key of ``cell``'s trace set (engine-independent)."""
    sys_config = system_for_cell(cell)
    return trace_cache_key(
        _specs_for(cell, sys_config),
        sys_config,
        cell.seed,
        cell.num_cores,
        cell.blocks_per_core,
    )


def trace_set_for(cell: CellSpec, trace_cache_dir: Optional[str] = None) -> TraceSet:
    """The trace set of ``cell``, via the in-process memo and disk cache."""
    sys_config = system_for_cell(cell)
    key = trace_key_for(cell)
    trace_set = _TRACE_MEMO.get(key)
    if trace_set is not None:
        return trace_set
    cache = TraceCache(trace_cache_dir) if trace_cache_dir else None
    if cache is not None:
        trace_set = cache.load(key)
    if trace_set is None:
        trace_set = _generate(cell, sys_config)
        if cache is not None:
            cache.store(key, trace_set)
    if len(_TRACE_MEMO) >= _TRACE_MEMO_MAX:
        _TRACE_MEMO.pop(next(iter(_TRACE_MEMO)))
    _TRACE_MEMO[key] = trace_set
    return trace_set


def _engine_kwargs(cell: CellSpec, sys_config: SystemConfig) -> Dict:
    scale = sys_config.scale
    history = cell.history_entries if cell.history_entries is not None else 32 * 1024
    if cell.engine == "pif":
        if scale > 1:
            return {"pif_config": scaled_pif_config(scale, history_entries=history)}
        return {"pif_config": paper_pif_config(history_entries=history)}
    if cell.engine == "shift":
        if scale > 1:
            config = scaled_shift_config(scale, history_entries=history)
        else:
            config = paper_shift_config(history_entries=history)
        kwargs: Dict = {"shift_config": config}
        if cell.consolidation:
            mix = consolidation_mix_for(cell, sys_config)
            kwargs["shift_groups"] = [tuple(r) for _, r in mix.core_ranges()]
        return kwargs
    return {}


def run_cell(cell: CellSpec, trace_cache_dir: Optional[str] = None) -> SimulationResult:
    """Simulate one cell from scratch (fresh caches, buffers, prefetcher)."""
    sys_config = system_for_cell(cell)
    trace_set = trace_set_for(cell, trace_cache_dir)
    return simulate(
        trace_set,
        sys_config,
        cell.engine,
        backend=cell.backend,
        chunk_blocks=cell.chunk_blocks,
        **_engine_kwargs(cell, sys_config),
    )


def _execute_cell(args: Tuple[CellSpec, Optional[str]]) -> SimulationResult:
    cell, trace_cache_dir = args
    return run_cell(cell, trace_cache_dir)


def resolve_workers(workers: Optional[int]) -> int:
    """Effective worker count: the explicit argument, else ``REPRO_WORKERS``.

    Non-positive counts are rejected here rather than deep inside
    ``ProcessPoolExecutor`` (whose ``ValueError`` would not say where the
    value came from); 0 is only ever the *implicit* "no parallelism
    requested" default.
    """
    if workers is not None:
        if workers < 1:
            raise ConfigurationError(
                f"worker count must be a positive integer, got {workers!r}"
                f" (or leave it unset / unset {WORKERS_ENV_VAR} to run serially)"
            )
        return workers
    raw = envvars.WORKERS.read()
    if raw is None:
        return 0
    try:
        count = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{WORKERS_ENV_VAR} must be an integer, got {raw!r}"
        ) from None
    if count < 1:
        raise ConfigurationError(
            f"{WORKERS_ENV_VAR} must be a positive integer, got {raw!r}"
        )
    return count


def execute_cells(
    cells: Sequence[CellSpec],
    workers: Optional[int] = None,
    trace_cache_dir: Optional[str] = None,
    chunksize: Optional[int] = None,
    result_cache: "object | str | None" = None,
) -> Dict[CellSpec, SimulationResult]:
    """Run every cell, serially or across processes; merge deterministically.

    Results are keyed by cell and produced in submission order on both
    paths, so callers see bit-identical reports for any worker count.
    ``chunksize`` batches consecutive cells onto one worker — callers whose
    cell lists are workload-major (all engines of one workload adjacent)
    pass the engine count so a workload's cells share one worker's trace
    memo instead of regenerating the trace per worker.

    ``result_cache`` (a :class:`~repro.results.ResultCache` or a directory
    path) short-circuits cells whose content key already has a stored
    result: only the missing cells are simulated (serially or in the pool),
    and their results are published back to the cache from the parent
    process.  Cached and computed results are byte-identical by
    construction, so every execution mode still merges to the same report;
    the cache object's ``hits``/``misses``/``stored`` counters record what
    this call recomputed.
    """
    from ..results import as_result_cache

    cache = as_result_cache(result_cache)
    cached: Dict[CellSpec, SimulationResult] = {}
    keys: Dict[CellSpec, str] = {}
    pending: List[CellSpec] = []
    if cache is not None:
        for cell in cells:
            if cell in cached or cell in keys:
                continue
            key = cache.key_for(cell)
            loaded = cache.load(key, system_for_cell(cell))
            if loaded is not None:
                cached[cell] = loaded
            else:
                keys[cell] = key
                pending.append(cell)
    else:
        seen = set()
        for cell in cells:
            if cell not in seen:
                seen.add(cell)
                pending.append(cell)

    effective = resolve_workers(workers)
    args = [(cell, trace_cache_dir) for cell in pending]
    if effective > 1 and len(pending) > 1:
        with ProcessPoolExecutor(max_workers=effective) as pool:
            computed: List[SimulationResult] = list(
                pool.map(_execute_cell, args, chunksize=chunksize or 1)
            )
    else:
        computed = [_execute_cell(arg) for arg in args]
    results = dict(zip(pending, computed))
    if cache is not None:
        for cell, result in results.items():
            cache.store(keys[cell], result)
    results.update(cached)
    return {cell: results[cell] for cell in cells}


__all__ = [
    "CellSpec",
    "consolidation_mix_for",
    "execute_cells",
    "resolve_workers",
    "run_cell",
    "system_for",
    "system_for_cell",
    "trace_key_for",
    "trace_set_for",
    "WORKERS_ENV_VAR",
]
