"""Command-line driver: ``python -m repro.experiments --system scaled``."""

from __future__ import annotations

import argparse
import sys
import time

from ..cli import (
    add_options,
    chunk_blocks_from_args,
    envvar_epilog,
    result_cache_from_args,
    workloads_from_args,
)
from ..errors import ReproError
from . import format_report, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Compare no-prefetch, next-line, PIF and SHIFT on the workload suite.",
        epilog=envvar_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    add_options(
        parser,
        "system",
        "scale",
        "workloads",
        "cores",
        "blocks",
        "seed",
        "workers",
        "trace-cache",
        "backend",
        "chunk-blocks",
        "json",
        "result-cache",
    )
    parser.add_argument(
        "--history-entries",
        type=int,
        default=None,
        help="paper-scale PIF/SHIFT history budget override (default: 32768)",
    )
    parser.add_argument(
        "--llc-kb",
        type=int,
        default=None,
        help="paper-scale LLC KB per core override (default: 512)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless SHIFT is within 10%% of PIF and both beat next-line",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    # repro: allow[determinism] progress display only, never in the report
    started = time.time()
    try:
        report = run_experiment(
            system=args.system,
            scale=args.scale,
            workloads=workloads_from_args(args),
            num_cores=args.cores,
            blocks_per_core=args.blocks,
            seed=args.seed,
            history_entries=args.history_entries,
            llc_kb_per_core=args.llc_kb,
            workers=args.workers,
            trace_cache=args.trace_cache,
            backend=args.backend,
            chunk_blocks=chunk_blocks_from_args(args),
            result_cache=result_cache_from_args(args),
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(format_report(report))
    if report.result_cache_stats is not None:
        stats = report.result_cache_stats
        print(
            f"result cache: {stats['hits']} hits, {stats['misses']} misses, "
            f"{stats['stored']} stored"
        )
    print(f"({time.time() - started:.1f}s)")  # repro: allow[determinism] progress display
    if args.json:
        report.save(args.json)
        print(f"report written to {args.json}")
    violations = report.check_paper_ordering()
    if violations:
        print("paper-ordering violations:", file=sys.stderr)
        for violation in violations:
            print(f"  - {violation}", file=sys.stderr)
        if args.check:
            return 1
    elif args.check:
        print("paper ordering holds: SHIFT within 10% of PIF, both above next-line")
    return 0


if __name__ == "__main__":
    sys.exit(main())
