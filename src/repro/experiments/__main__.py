"""Command-line driver: ``python -m repro.experiments --system scaled``."""

from __future__ import annotations

import argparse
import sys
import time

from ..errors import ReproError
from ..workloads.suite import WORKLOAD_NAMES
from ..workloads.trace_cache import DEFAULT_CACHE_DIR
from . import format_report, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Compare no-prefetch, next-line, PIF and SHIFT on the workload suite.",
    )
    parser.add_argument(
        "--system",
        choices=("scaled", "paper"),
        default="scaled",
        help="system configuration (default: scaled)",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=16,
        help="shrink factor for the scaled system (default: 16)",
    )
    parser.add_argument(
        "--workloads",
        default=None,
        help=f"comma-separated subset of: {', '.join(WORKLOAD_NAMES)}",
    )
    parser.add_argument("--cores", type=int, default=None, help="cores to trace (default: all)")
    parser.add_argument(
        "--blocks",
        type=int,
        default=None,
        help="trace length per core in blocks (default: per-workload)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload RNG seed (default: 0)")
    parser.add_argument(
        "--history-entries",
        type=int,
        default=None,
        help="paper-scale PIF/SHIFT history budget override (default: 32768)",
    )
    parser.add_argument(
        "--llc-kb",
        type=int,
        default=None,
        help="paper-scale LLC KB per core override (default: 512)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="simulation backend: python or numpy "
        "(default: $REPRO_BACKEND or python); results are identical",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan (workload, engine) cells over N processes "
        "(default: $REPRO_WORKERS or serial)",
    )
    parser.add_argument(
        "--trace-cache",
        default=None,
        metavar="DIR",
        help=f"directory to cache generated traces in (e.g. {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the report as canonical JSON to PATH",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless SHIFT is within 10%% of PIF and both beat next-line",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    workloads = args.workloads.split(",") if args.workloads else None
    started = time.time()
    try:
        report = run_experiment(
            system=args.system,
            scale=args.scale,
            workloads=workloads,
            num_cores=args.cores,
            blocks_per_core=args.blocks,
            seed=args.seed,
            history_entries=args.history_entries,
            llc_kb_per_core=args.llc_kb,
            workers=args.workers,
            trace_cache=args.trace_cache,
            backend=args.backend,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(format_report(report))
    print(f"({time.time() - started:.1f}s)")
    if args.json:
        report.save(args.json)
        print(f"report written to {args.json}")
    violations = report.check_paper_ordering()
    if violations:
        print("paper-ordering violations:", file=sys.stderr)
        for violation in violations:
            print(f"  - {violation}", file=sys.stderr)
        if args.check:
            return 1
    elif args.check:
        print("paper ordering holds: SHIFT within 10% of PIF, both above next-line")
    return 0


if __name__ == "__main__":
    sys.exit(main())
