"""End-to-end experiment drivers.

:func:`run_experiment` reproduces the paper's headline comparison: for every
workload in the suite it generates per-core fetch traces, simulates the
no-prefetch baseline and the next-line, PIF and SHIFT engines, and reports
L1-I miss coverage and speedup over the baseline.  The expected qualitative
result (Figures 6–7 of the paper) is SHIFT ≈ PIF ≫ next-line ≫ none on the
large-footprint server workloads.

Execution is cell-based (see :mod:`repro.experiments.cells`): every
(workload, engine) pair is an independent unit of work, run either serially
or fanned out over a process pool (``workers=N`` or ``REPRO_WORKERS=N``),
with an optional on-disk trace cache.  Reports are bit-identical across all
execution modes and JSON-round-trippable via
:meth:`ExperimentReport.to_dict` / :meth:`ExperimentReport.from_dict`.

Run it from the command line::

    python -m repro.experiments --system scaled --workers 4

"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..sim import SimulationResult
from ..sim.timing import weighted_speedup
from ..workloads.suite import WORKLOAD_NAMES
from .cells import CellSpec, execute_cells, system_for

#: Engines compared by the default experiment, in report order.
DEFAULT_ENGINES: Tuple[str, ...] = ("none", "next_line", "pif", "shift")

#: Serialization schema of :class:`ExperimentReport` /
#: :class:`~repro.sweeps.SweepReport` dicts.  Bump on any incompatible
#: layout change; ``from_dict`` rejects dicts tagged with another version.
#: Dicts without the tag (pre-schema files) are read as version 1.
REPORT_SCHEMA_VERSION = 1


def check_schema_version(data: Dict[str, object], what: str) -> None:
    """Reject serialized reports from an incompatible schema.

    The service returns report dicts verbatim and clients feed them back to
    ``from_dict``, so version skew must fail loudly, not half-parse.
    """
    version = data.get("schema_version", REPORT_SCHEMA_VERSION)
    if version != REPORT_SCHEMA_VERSION:
        raise ConfigurationError(
            f"{what} has schema_version {version!r}; this build reads "
            f"version {REPORT_SCHEMA_VERSION}"
        )


@dataclass
class EngineOutcome:
    """Coverage and speedup of one engine on one workload.

    ``storage_bytes_per_core`` is the engine's dedicated history storage
    (the denominator of the paper's ~14x SHIFT-vs-PIF reduction claim);
    ``llc_hit_ratio`` is the shared LLC's hit ratio over all instruction
    accesses, the Section 5.4 metric history virtualization must not
    perturb.
    """

    engine: str
    coverage: float
    speedup: float
    mpki: float
    prefetch_accuracy: float
    storage_bytes_per_core: int = 0
    llc_hit_ratio: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "engine": self.engine,
            "coverage": self.coverage,
            "speedup": self.speedup,
            "mpki": self.mpki,
            "prefetch_accuracy": self.prefetch_accuracy,
            "storage_bytes_per_core": self.storage_bytes_per_core,
            "llc_hit_ratio": self.llc_hit_ratio,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "EngineOutcome":
        return cls(
            engine=str(data["engine"]),
            coverage=float(data["coverage"]),
            speedup=float(data["speedup"]),
            mpki=float(data["mpki"]),
            prefetch_accuracy=float(data["prefetch_accuracy"]),
            storage_bytes_per_core=int(data.get("storage_bytes_per_core", 0)),
            llc_hit_ratio=float(data.get("llc_hit_ratio", 0.0)),
        )


@dataclass
class ExperimentRow:
    """All engine outcomes for one workload (or consolidation mix)."""

    workload: str
    baseline_mpki: float
    baseline_miss_ratio: float
    baseline_llc_hit_ratio: float = 0.0
    outcomes: Dict[str, EngineOutcome] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "baseline_mpki": self.baseline_mpki,
            "baseline_miss_ratio": self.baseline_miss_ratio,
            "baseline_llc_hit_ratio": self.baseline_llc_hit_ratio,
            "outcomes": {name: outcome.to_dict() for name, outcome in self.outcomes.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentRow":
        outcomes = {
            str(name): EngineOutcome.from_dict(outcome)
            for name, outcome in dict(data["outcomes"]).items()
        }
        return cls(
            workload=str(data["workload"]),
            baseline_mpki=float(data["baseline_mpki"]),
            baseline_miss_ratio=float(data["baseline_miss_ratio"]),
            baseline_llc_hit_ratio=float(data.get("baseline_llc_hit_ratio", 0.0)),
            outcomes=outcomes,
        )


@dataclass
class ExperimentReport:
    """The full comparison across the workload suite."""

    system_name: str
    rows: List[ExperimentRow] = field(default_factory=list)
    #: Input parameters of the run (seed, scale, engine list, ...), carried
    #: so serialized reports are self-describing.
    params: Dict[str, object] = field(default_factory=dict)
    #: Result-cache traffic of the run (hits/misses/stored), populated when
    #: ``run_experiment(result_cache=...)`` was given a cache.  Execution
    #: telemetry, not a result: deliberately excluded from ``to_dict`` and
    #: comparison so cached and uncached reports stay byte-identical.
    result_cache_stats: Optional[Dict[str, int]] = field(default=None, compare=False)

    def check_paper_ordering(self, tolerance: float = 0.10) -> List[str]:
        """Verify the paper's qualitative result on every row.

        Returns a list of violations (empty means the reproduction holds):
        SHIFT's coverage must be within ``tolerance`` (relative) of PIF's,
        and both must exceed next-line's.
        """
        violations: List[str] = []
        for row in self.rows:
            try:
                next_line = row.outcomes["next_line"]
                pif = row.outcomes["pif"]
                shift = row.outcomes["shift"]
            except KeyError:
                violations.append(f"{row.workload}: missing engine results")
                continue
            if shift.coverage < pif.coverage * (1.0 - tolerance):
                violations.append(
                    f"{row.workload}: SHIFT coverage {shift.coverage:.3f} more than "
                    f"{tolerance:.0%} below PIF's {pif.coverage:.3f}"
                )
            if pif.coverage <= next_line.coverage:
                violations.append(
                    f"{row.workload}: PIF coverage {pif.coverage:.3f} does not exceed "
                    f"next-line's {next_line.coverage:.3f}"
                )
            if shift.coverage <= next_line.coverage:
                violations.append(
                    f"{row.workload}: SHIFT coverage {shift.coverage:.3f} does not exceed "
                    f"next-line's {next_line.coverage:.3f}"
                )
        return violations

    def to_dict(self) -> Dict[str, object]:
        """The schema-tagged plain-dict form (what ``repro.serve`` returns)."""
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "system_name": self.system_name,
            "params": dict(self.params),
            "rows": [row.to_dict() for row in self.rows],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentReport":
        """Rebuild a report from :meth:`to_dict` (schema-version checked)."""
        check_schema_version(data, "experiment report")
        return cls(
            system_name=str(data["system_name"]),
            rows=[ExperimentRow.from_dict(row) for row in list(data["rows"])],
            params=dict(data.get("params", {})),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Canonical JSON: sorted keys, fixed layout — byte-stable across
        serial and parallel execution for identical inputs."""
        import json

        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentReport":
        """Parse a report from its :meth:`to_json` serialization."""
        import json

        return cls.from_dict(json.loads(text))

    def save(self, path: "str | Path") -> None:
        """Write the canonical JSON form (plus trailing newline) to ``path``."""
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: "str | Path") -> "ExperimentReport":
        """Read a report previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())


def _open_result_cache(result_cache):
    """Normalize the ``result_cache=`` argument and snapshot its counters,
    so a cache shared across runs (sweeps, the service) still yields
    per-run traffic stats."""
    from ..results import as_result_cache

    cache = as_result_cache(result_cache)
    return cache, (cache.stats() if cache is not None else None)


def _attach_cache_stats(report: "ExperimentReport", cache, before) -> None:
    if cache is None:
        return
    after = cache.stats()
    report.result_cache_stats = {key: after[key] - before[key] for key in after}


def _outcome_for(
    engine: str,
    result: SimulationResult,
    baseline: SimulationResult,
    sys_config,
) -> EngineOutcome:
    issued = sum(c.prefetches_issued for c in result.cores)
    useful = sum(c.prefetch_hits + c.late_hits for c in result.cores)
    return EngineOutcome(
        engine=engine,
        coverage=result.coverage_vs(baseline),
        speedup=weighted_speedup(result, baseline, sys_config),
        mpki=result.mpki,
        prefetch_accuracy=useful / issued if issued else 0.0,
        storage_bytes_per_core=result.storage_bytes_per_core,
        llc_hit_ratio=result.llc_hit_ratio,
    )


def _merge_report(
    system: str,
    sys_config,
    row_labels: Sequence[str],
    engines: Sequence[str],
    cells: Dict[Tuple[str, str], CellSpec],
    results: Dict[CellSpec, SimulationResult],
    params: Dict[str, object],
) -> ExperimentReport:
    """Deterministic merge: rows in label order, outcomes in engine order."""
    report = ExperimentReport(system_name=system, params=params)
    for label in row_labels:
        baseline = results[cells[(label, "none")]]
        row = ExperimentRow(
            workload=label,
            baseline_mpki=baseline.mpki,
            baseline_miss_ratio=baseline.miss_ratio,
            baseline_llc_hit_ratio=baseline.llc_hit_ratio,
        )
        for engine in engines:
            if engine == "none":
                continue
            result = results[cells[(label, engine)]]
            row.outcomes[engine] = _outcome_for(engine, result, baseline, sys_config)
        report.rows.append(row)
    return report


def run_experiment(
    system: str = "scaled",
    scale: int = 16,
    workloads: Optional[Sequence[str]] = None,
    engines: Sequence[str] = DEFAULT_ENGINES,
    num_cores: Optional[int] = None,
    blocks_per_core: Optional[int] = None,
    seed: int = 0,
    history_entries: Optional[int] = None,
    llc_kb_per_core: Optional[int] = None,
    workers: Optional[int] = None,
    trace_cache: "str | Path | None" = None,
    backend: Optional[str] = None,
    chunk_blocks: Optional[int] = None,
    result_cache: "str | Path | object | None" = None,
) -> ExperimentReport:
    """Run the prefetcher comparison and return a report.

    ``system`` selects the paper-scale or shrunken configuration; workload
    footprints and prefetcher histories are shrunk by the same ``scale`` so
    the capacity ratios of the paper are preserved.  ``num_cores`` sizes
    the whole CMP (cores, LLC slices, mesh), not just the traced subset.
    ``history_entries`` overrides the paper-scale history budget of PIF and
    SHIFT (the storage sensitivity axis); ``llc_kb_per_core`` the
    paper-scale LLC slice size (the Section 5.4 axis).  ``workers > 1``
    fans the (workload, engine) cells out over a process pool;
    ``trace_cache`` names a directory where generated traces are shared
    between engines, processes and runs.  ``backend`` selects the
    simulation backend (``python`` / ``numpy``; default ``REPRO_BACKEND``
    or ``python``).  ``result_cache`` (a directory or a
    :class:`~repro.results.ResultCache`) skips simulation entirely for
    cells whose content-addressed result is already stored; the traffic
    counts land in :attr:`ExperimentReport.result_cache_stats`.
    ``chunk_blocks`` streams each core's trace through the engine in
    bounded windows for out-of-core runs (see ARCHITECTURE.md).  The
    report is bit-identical for every (workers, trace_cache, backend,
    chunk_blocks, result_cache) combination, which is why none of the
    five appear in the report params.
    """
    if llc_kb_per_core is not None and llc_kb_per_core < 1:
        raise ConfigurationError("llc_kb_per_core must be at least 1 KB per core")
    llc_bytes = llc_kb_per_core * 1024 if llc_kb_per_core is not None else None
    sys_config = system_for(system, scale, num_cores, llc_bytes)
    names = list(workloads) if workloads else list(WORKLOAD_NAMES)
    if "none" not in engines:
        raise ConfigurationError("the engine list must include the 'none' baseline")

    cells: Dict[Tuple[str, str], CellSpec] = {}
    order: List[CellSpec] = []
    for name in names:
        for engine in engines:
            cell = CellSpec(
                workload=name,
                engine=engine,
                system=system,
                scale=scale,
                seed=seed,
                num_cores=num_cores,
                blocks_per_core=blocks_per_core,
                history_entries=history_entries,
                llc_bytes_per_core=llc_bytes,
                backend=backend,
                chunk_blocks=chunk_blocks,
            )
            cells[(name, engine)] = cell
            order.append(cell)
    cache, before = _open_result_cache(result_cache)
    results = execute_cells(
        order,
        workers=workers,
        trace_cache_dir=str(trace_cache) if trace_cache is not None else None,
        chunksize=len(engines),
        result_cache=cache,
    )
    params: Dict[str, object] = {
        "system": system,
        "scale": scale,
        "seed": seed,
        "workloads": names,
        "engines": list(engines),
        "num_cores": num_cores,
        "blocks_per_core": blocks_per_core,
        "history_entries": history_entries,
        "llc_kb_per_core": llc_kb_per_core,
    }
    report = _merge_report(system, sys_config, names, engines, cells, results, params)
    _attach_cache_stats(report, cache, before)
    return report


def run_consolidated_experiment(
    mixes: Sequence[Sequence[str]],
    system: str = "scaled",
    scale: int = 16,
    engines: Sequence[str] = DEFAULT_ENGINES,
    num_cores: Optional[int] = None,
    blocks_per_core: Optional[int] = None,
    seed: int = 0,
    history_entries: Optional[int] = None,
    llc_kb_per_core: Optional[int] = None,
    workers: Optional[int] = None,
    trace_cache: "str | Path | None" = None,
    backend: Optional[str] = None,
    chunk_blocks: Optional[int] = None,
    result_cache: "str | Path | object | None" = None,
) -> ExperimentReport:
    """Run the comparison on consolidated-server mixes (Section 5.5).

    Each mix is a sequence of workload names sharing the CMP with disjoint
    footprints; cores are split evenly between them.  SHIFT runs as one
    logical history per workload with the aggregate budget split (see
    :class:`repro.sim.prefetchers.ConsolidatedSHIFTPrefetcher`); PIF and
    next-line are per-core and unaffected by consolidation.
    """
    if llc_kb_per_core is not None and llc_kb_per_core < 1:
        raise ConfigurationError("llc_kb_per_core must be at least 1 KB per core")
    llc_bytes = llc_kb_per_core * 1024 if llc_kb_per_core is not None else None
    sys_config = system_for(system, scale, num_cores, llc_bytes)
    if "none" not in engines:
        raise ConfigurationError("the engine list must include the 'none' baseline")
    labels: List[str] = []
    cells: Dict[Tuple[str, str], CellSpec] = {}
    order: List[CellSpec] = []
    for mix in mixes:
        mix_names = tuple(mix)
        if not mix_names:
            raise ConfigurationError("a consolidation mix cannot be empty")
        label = "+".join(mix_names)
        labels.append(label)
        for engine in engines:
            cell = CellSpec(
                workload=label,
                engine=engine,
                system=system,
                scale=scale,
                seed=seed,
                num_cores=num_cores,
                blocks_per_core=blocks_per_core,
                history_entries=history_entries,
                consolidation=mix_names,
                llc_bytes_per_core=llc_bytes,
                backend=backend,
                chunk_blocks=chunk_blocks,
            )
            cells[(label, engine)] = cell
            order.append(cell)
    cache, before = _open_result_cache(result_cache)
    results = execute_cells(
        order,
        workers=workers,
        trace_cache_dir=str(trace_cache) if trace_cache is not None else None,
        chunksize=len(engines),
        result_cache=cache,
    )
    params: Dict[str, object] = {
        "system": system,
        "scale": scale,
        "seed": seed,
        "mixes": [list(mix) for mix in mixes],
        "engines": list(engines),
        "num_cores": num_cores,
        "blocks_per_core": blocks_per_core,
        "history_entries": history_entries,
        "llc_kb_per_core": llc_kb_per_core,
    }
    report = _merge_report(system, sys_config, labels, engines, cells, results, params)
    _attach_cache_stats(report, cache, before)
    return report


def _format_bytes(num_bytes: int) -> str:
    if num_bytes >= 1024 * 1024:
        return f"{num_bytes / (1024 * 1024):.1f}MB"
    if num_bytes >= 1024:
        return f"{num_bytes / 1024:.1f}KB"
    return f"{num_bytes}B"


def format_report(report: ExperimentReport) -> str:
    """Render a report as a fixed-width comparison table.

    Per-engine storage cost is constant across rows (it is a property of
    the configuration, not the workload), so it is summarized in a footer
    below the table rather than repeated per row — the workload rows keep
    their fixed 13-character column grid.
    """
    # Column order: the engines actually present in the report, default
    # engines first, so subset runs and future engines both render.
    present: List[str] = []
    for row in report.rows:
        for engine in row.outcomes:
            if engine not in present:
                present.append(engine)
    engines = [e for e in DEFAULT_ENGINES if e in present]
    engines += [e for e in present if e not in engines]
    name_width = max([16] + [len(row.workload) for row in report.rows])
    header = f"{'workload':<{name_width}} {'base MPKI':>9}"
    for engine in engines:
        header += f" {engine + ' cov':>13} {engine + ' spd':>13}"
    lines = [f"system: {report.system_name}", header, "-" * len(header)]
    for row in report.rows:
        line = f"{row.workload:<{name_width}} {row.baseline_mpki:>9.1f}"
        for engine in engines:
            outcome = row.outcomes.get(engine)
            if outcome is None:
                line += f" {'-':>13} {'-':>13}"
            else:
                # Both cells pad to the 13-character header width (the
                # speedup's trailing 'x' is part of its 13 characters).
                line += f" {outcome.coverage:>13.1%} {outcome.speedup:>12.2f}x"
        lines.append(line)
    storage: Dict[str, int] = {}
    for row in report.rows:
        for engine in engines:
            outcome = row.outcomes.get(engine)
            if outcome is not None and engine not in storage:
                storage[engine] = outcome.storage_bytes_per_core
    if any(storage.values()):
        cells_text = "  ".join(
            f"{engine}={_format_bytes(storage[engine])}" for engine in engines if engine in storage
        )
        lines.append(f"storage/core: {cells_text}")
        pif_bytes = storage.get("pif", 0)
        shift_bytes = storage.get("shift", 0)
        if pif_bytes and shift_bytes:
            lines.append(
                f"SHIFT storage reduction vs PIF: {pif_bytes / shift_bytes:.1f}x"
            )
    return "\n".join(lines)


__all__ = [
    "DEFAULT_ENGINES",
    "REPORT_SCHEMA_VERSION",
    "check_schema_version",
    "EngineOutcome",
    "ExperimentRow",
    "ExperimentReport",
    "run_experiment",
    "run_consolidated_experiment",
    "format_report",
]
