"""End-to-end experiment drivers.

:func:`run_experiment` reproduces the paper's headline comparison: for every
workload in the suite it generates per-core fetch traces, simulates the
no-prefetch baseline and the next-line, PIF and SHIFT engines, and reports
L1-I miss coverage and speedup over the baseline.  The expected qualitative
result (Figures 6–7 of the paper) is SHIFT ≈ PIF ≫ next-line ≫ none on the
large-footprint server workloads.

Run it from the command line::

    python -m repro.experiments --system scaled

"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import (
    SystemConfig,
    paper_pif_config,
    paper_shift_config,
    paper_system,
    scaled_pif_config,
    scaled_shift_config,
    scaled_system,
)
from ..errors import ConfigurationError
from ..sim import SimulationResult, simulate
from ..sim.timing import weighted_speedup
from ..workloads.generator import generate_traces
from ..workloads.suite import WORKLOAD_NAMES, scaled_workload, workload_by_name

#: Engines compared by the default experiment, in report order.
DEFAULT_ENGINES: Tuple[str, ...] = ("none", "next_line", "pif", "shift")


@dataclass
class EngineOutcome:
    """Coverage and speedup of one engine on one workload."""

    engine: str
    coverage: float
    speedup: float
    mpki: float
    prefetch_accuracy: float


@dataclass
class ExperimentRow:
    """All engine outcomes for one workload."""

    workload: str
    baseline_mpki: float
    baseline_miss_ratio: float
    outcomes: Dict[str, EngineOutcome] = field(default_factory=dict)


@dataclass
class ExperimentReport:
    """The full comparison across the workload suite."""

    system_name: str
    rows: List[ExperimentRow] = field(default_factory=list)

    def check_paper_ordering(self, tolerance: float = 0.10) -> List[str]:
        """Verify the paper's qualitative result on every row.

        Returns a list of violations (empty means the reproduction holds):
        SHIFT's coverage must be within ``tolerance`` (relative) of PIF's,
        and both must exceed next-line's.
        """
        violations: List[str] = []
        for row in self.rows:
            try:
                next_line = row.outcomes["next_line"]
                pif = row.outcomes["pif"]
                shift = row.outcomes["shift"]
            except KeyError:
                violations.append(f"{row.workload}: missing engine results")
                continue
            if shift.coverage < pif.coverage * (1.0 - tolerance):
                violations.append(
                    f"{row.workload}: SHIFT coverage {shift.coverage:.3f} more than "
                    f"{tolerance:.0%} below PIF's {pif.coverage:.3f}"
                )
            if pif.coverage <= next_line.coverage:
                violations.append(
                    f"{row.workload}: PIF coverage {pif.coverage:.3f} does not exceed "
                    f"next-line's {next_line.coverage:.3f}"
                )
            if shift.coverage <= next_line.coverage:
                violations.append(
                    f"{row.workload}: SHIFT coverage {shift.coverage:.3f} does not exceed "
                    f"next-line's {next_line.coverage:.3f}"
                )
        return violations


def _system_for(name: str, scale: int) -> SystemConfig:
    if name == "paper":
        return paper_system()
    if name == "scaled":
        return scaled_system(scale=scale)
    raise ConfigurationError(f"unknown system {name!r}; known: paper, scaled")


def run_experiment(
    system: str = "scaled",
    scale: int = 16,
    workloads: Optional[Sequence[str]] = None,
    engines: Sequence[str] = DEFAULT_ENGINES,
    num_cores: Optional[int] = None,
    blocks_per_core: Optional[int] = None,
    seed: int = 0,
) -> ExperimentReport:
    """Run the prefetcher comparison and return a report.

    ``system`` selects the paper-scale or shrunken configuration; workload
    footprints and prefetcher histories are shrunk by the same ``scale`` so
    the capacity ratios of the paper are preserved.
    """
    sys_config = _system_for(system, scale)
    effective_scale = sys_config.scale
    names = list(workloads) if workloads else list(WORKLOAD_NAMES)
    if "none" not in engines:
        raise ConfigurationError("the engine list must include the 'none' baseline")

    if effective_scale > 1:
        pif_config = scaled_pif_config(effective_scale)
        shift_config = scaled_shift_config(effective_scale)
    else:
        pif_config = paper_pif_config()
        shift_config = paper_shift_config()

    report = ExperimentReport(system_name=system)
    for name in names:
        spec = scaled_workload(workload_by_name(name), effective_scale)
        trace_set = generate_traces(
            spec,
            sys_config,
            seed=seed,
            num_cores=num_cores,
            blocks_per_core=blocks_per_core,
        )
        results: Dict[str, SimulationResult] = {}
        for engine in engines:
            results[engine] = simulate(
                trace_set,
                sys_config,
                engine,
                **(
                    {"pif_config": pif_config}
                    if engine == "pif"
                    else {"shift_config": shift_config}
                    if engine == "shift"
                    else {}
                ),
            )
        baseline = results["none"]
        row = ExperimentRow(
            workload=name,
            baseline_mpki=baseline.mpki,
            baseline_miss_ratio=baseline.miss_ratio,
        )
        for engine, result in results.items():
            if engine == "none":
                continue
            issued = sum(c.prefetches_issued for c in result.cores)
            useful = sum(c.prefetch_hits + c.late_hits for c in result.cores)
            row.outcomes[engine] = EngineOutcome(
                engine=engine,
                coverage=result.coverage_vs(baseline),
                speedup=weighted_speedup(result, baseline, sys_config),
                mpki=result.mpki,
                prefetch_accuracy=useful / issued if issued else 0.0,
            )
        report.rows.append(row)
    return report


def format_report(report: ExperimentReport) -> str:
    """Render a report as a fixed-width comparison table."""
    # Column order: the engines actually present in the report, default
    # engines first, so subset runs and future engines both render.
    present: List[str] = []
    for row in report.rows:
        for engine in row.outcomes:
            if engine not in present:
                present.append(engine)
    engines = [e for e in DEFAULT_ENGINES if e in present]
    engines += [e for e in present if e not in engines]
    header = f"{'workload':<16} {'base MPKI':>9}"
    for engine in engines:
        header += f" {engine + ' cov':>13} {engine + ' spd':>13}"
    lines = [f"system: {report.system_name}", header, "-" * len(header)]
    for row in report.rows:
        line = f"{row.workload:<16} {row.baseline_mpki:>9.1f}"
        for engine in engines:
            outcome = row.outcomes.get(engine)
            if outcome is None:
                line += f" {'-':>13} {'-':>13}"
            else:
                line += f" {outcome.coverage:>12.1%} {outcome.speedup:>12.2f}x"
        lines.append(line)
    return "\n".join(lines)


__all__ = [
    "DEFAULT_ENGINES",
    "EngineOutcome",
    "ExperimentRow",
    "ExperimentReport",
    "run_experiment",
    "format_report",
]
