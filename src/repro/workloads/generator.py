"""Workload trace generation.

:class:`WorkloadTraceGenerator` assembles the pieces of the package into
per-core retire-order fetch traces:

1. carve out the workload's address windows (:func:`layout_for_workload`),
2. lay out a synthetic code base in the application window and a set of OS
   handlers in the OS window,
3. build the request mix (:class:`RequestTraceFactory`), and
4. for every core, concatenate request executions with OS-noise injection
   until the requested trace length is reached.

Every core serves the same request mix over the same code base — the
cross-core homogeneity that SHIFT exploits — but each core uses its own RNG
stream, so the interleaving of request types, optional call sites and
interrupts differs per core, exactly like independent server threads.
"""

from __future__ import annotations

from random import Random
from typing import List, Optional

from ..config import SystemConfig, scaled_system
from ..errors import ConfigurationError
from .address_space import WorkloadAddressLayout, BlockAllocator, layout_for_workload
from .codebase import CodeBaseBuilder, SyntheticCodeBase
from .osnoise import OSNoiseModel
from .request import RequestTraceFactory
from .suite import WorkloadSpec
from .trace import CoreTrace, Run, TraceSet

#: Blocks reserved per workload for a virtualized SHIFT history buffer
#: (generous: a 32K-record history at 12 records per LLC block needs 2731).
DEFAULT_HISTORY_BLOCKS = 4096


class WorkloadTraceGenerator:
    """Generates a :class:`TraceSet` for one workload on one system."""

    def __init__(
        self,
        spec: WorkloadSpec,
        system: Optional[SystemConfig] = None,
        seed: int = 0,
        workload_index: int = 0,
        history_blocks: int = DEFAULT_HISTORY_BLOCKS,
    ) -> None:
        self._spec = spec
        self._system = system if system is not None else scaled_system()
        self._seed = seed
        self._layout = layout_for_workload(
            workload_index,
            application_code_blocks=spec.app_code_blocks,
            os_code_blocks=spec.os_code_blocks,
            data_blocks=spec.data_blocks,
            history_blocks=history_blocks,
        )
        builder = CodeBaseBuilder(
            allocator=BlockAllocator(self._layout.application_code),
            target_blocks=spec.app_code_blocks,
            mean_run_blocks=spec.mean_run_blocks,
            max_runs_per_function=spec.max_runs_per_function,
            call_fanout=spec.call_fanout,
            optional_call_fraction=spec.optional_call_fraction,
            optional_call_probability=spec.optional_call_probability,
            seed=seed,
        )
        self._codebase = builder.build()
        self._factory = RequestTraceFactory(
            self._codebase,
            num_request_types=spec.num_request_types,
            entries_per_request=spec.entries_per_request,
            max_call_depth=spec.max_call_depth,
            mutation_probability=spec.mutation_probability,
            seed=seed + 1,
        )
        self._noise = OSNoiseModel(
            self._layout.os_code,
            num_handlers=spec.os_handlers,
            handler_blocks=spec.os_handler_blocks,
            mean_interval_blocks=spec.os_noise_interval_blocks,
            seed=seed + 2,
        )

    @property
    def spec(self) -> WorkloadSpec:
        return self._spec

    @property
    def system(self) -> SystemConfig:
        return self._system

    @property
    def layout(self) -> WorkloadAddressLayout:
        return self._layout

    @property
    def codebase(self) -> SyntheticCodeBase:
        return self._codebase

    @property
    def factory(self) -> RequestTraceFactory:
        return self._factory

    @property
    def noise(self) -> OSNoiseModel:
        return self._noise

    def core_trace(self, core_id: int, blocks: Optional[int] = None) -> CoreTrace:
        """Generate the fetch trace of one core.

        Emission is columnar: requests and interrupt handlers contribute
        ``(base, length)`` runs, noise injection splices handler runs at
        block offsets (splitting the run it lands inside), and the final
        address column is materialized in one vectorized pass by
        :meth:`~repro.workloads.trace.CoreTrace.from_runs`.  The RNG draw
        sequence is identical to the historical per-element path, so the
        generated streams are byte-for-byte unchanged.
        """
        target = blocks if blocks is not None else self._spec.blocks_per_core
        if target <= 0:
            raise ConfigurationError("trace length must be positive")
        # String seeds hash deterministically (unlike tuples / PYTHONHASHSEED).
        rng = Random(f"{self._seed}:{self._spec.name}:{core_id}")
        runs: List[Run] = []
        total_blocks = 0
        requests = 0
        next_noise = self._noise.next_interval(rng)
        while total_blocks < target:
            request_type = self._factory.sample_request_type(rng)
            request_runs: List[Run] = []
            emitted = self._factory.emit_request_runs(request_type, rng, request_runs)
            requests += 1
            request_blocks = emitted
            # Inject interrupt handlers at the points the noise process fired
            # during this request.  Splice positions are block offsets into
            # the request's evolving run list; they are strictly increasing
            # (each advance covers the just-inserted handler), so one
            # forward cursor over the runs suffices.
            cursor = 0
            prefix = 0  # blocks covered by request_runs[:cursor]
            while next_noise < emitted:
                handler_runs: List[Run] = []
                handler_blocks = self._noise.emit_handler_runs(rng, handler_runs)
                position = next_noise
                while prefix + request_runs[cursor][1] <= position:
                    prefix += request_runs[cursor][1]
                    cursor += 1
                offset = position - prefix
                if offset:
                    base, length = request_runs[cursor]
                    request_runs[cursor : cursor + 1] = [
                        (base, offset),
                        (base + offset, length - offset),
                    ]
                    prefix += offset
                    cursor += 1
                request_runs[cursor:cursor] = handler_runs
                request_blocks += handler_blocks
                next_noise += self._noise.next_interval(rng) + handler_blocks
            next_noise -= emitted
            runs.extend(request_runs)
            total_blocks += request_blocks
        return CoreTrace.from_runs(
            core_id,
            runs,
            limit=target,
            instructions_per_block=self._spec.instructions_per_block,
            workload=self._spec.name,
            requests=requests,
        )

    def generate(
        self,
        num_cores: Optional[int] = None,
        blocks_per_core: Optional[int] = None,
    ) -> TraceSet:
        """Generate traces for ``num_cores`` cores (default: the whole system)."""
        cores = num_cores if num_cores is not None else self._system.num_cores
        if cores < 1:
            raise ConfigurationError("need at least one core")
        traces = [self.core_trace(core_id, blocks_per_core) for core_id in range(cores)]
        return TraceSet(
            traces=traces,
            layouts=(self._layout,),
            seed=self._seed,
            name=self._spec.name,
        )


def generate_traces(
    spec: WorkloadSpec,
    system: Optional[SystemConfig] = None,
    seed: int = 0,
    num_cores: Optional[int] = None,
    blocks_per_core: Optional[int] = None,
) -> TraceSet:
    """One-shot convenience wrapper around :class:`WorkloadTraceGenerator`."""
    generator = WorkloadTraceGenerator(spec, system=system, seed=seed)
    return generator.generate(num_cores=num_cores, blocks_per_core=blocks_per_core)


__all__ = ["WorkloadTraceGenerator", "generate_traces", "DEFAULT_HISTORY_BLOCKS"]
