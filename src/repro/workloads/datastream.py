"""Synthetic data-access streams.

The paper is about the *instruction* stream, but the timing model and future
L1-D / LLC experiments need a data-side companion.  A
:class:`DataStreamGenerator` produces per-core block-granularity data access
traces inside the workload's data window with the two properties that matter
for a server workload: a hot set that captures most accesses (buffer-pool
metadata, latches, per-connection state) and long sequential scans over the
cold majority (table scans, media file streaming).
"""

from __future__ import annotations

from random import Random
from typing import List

from ..errors import ConfigurationError
from .address_space import AddressWindow


class DataStreamGenerator:
    """Generates data-access traces with a hot-set / scan mixture."""

    def __init__(
        self,
        window: AddressWindow,
        hot_fraction: float = 0.05,
        hot_access_probability: float = 0.7,
        mean_scan_blocks: float = 16.0,
        seed: int = 0,
    ) -> None:
        if not (0.0 < hot_fraction <= 1.0):
            raise ConfigurationError("hot fraction must be in (0, 1]")
        if not (0.0 <= hot_access_probability <= 1.0):
            raise ConfigurationError("hot access probability must be in [0, 1]")
        if mean_scan_blocks < 1.0:
            raise ConfigurationError("mean scan length must be at least one block")
        self._window = window
        self._hot_blocks = max(1, int(window.size * hot_fraction))
        self._mean_scan = mean_scan_blocks
        self._seed = seed
        # ``hot_access_probability`` is the fraction of *accesses* that land
        # in the hot set.  A scan decision emits ~mean_scan accesses while a
        # hot decision emits one, so convert to a per-decision probability:
        # h = q / (q + (1 - q) * m)  =>  q = h * m / (1 - h + h * m).
        h, m = hot_access_probability, mean_scan_blocks
        self._hot_decision_probability = (h * m) / (1.0 - h + h * m) if h < 1.0 else 1.0

    @property
    def window(self) -> AddressWindow:
        return self._window

    @property
    def hot_blocks(self) -> int:
        return self._hot_blocks

    def generate(self, core_id: int, num_accesses: int) -> List[int]:
        """Generate ``num_accesses`` data block addresses for one core."""
        if num_accesses <= 0:
            raise ConfigurationError("number of data accesses must be positive")
        rng = Random(f"data:{self._seed}:{core_id}")
        window = self._window
        hot_end = window.base + self._hot_blocks
        out: List[int] = []
        cold_span = window.size - self._hot_blocks
        while len(out) < num_accesses:
            if cold_span <= 0 or rng.random() < self._hot_decision_probability:
                # Hot-set access with a skew towards the lowest addresses,
                # approximating a Zipf-like popularity distribution.  When
                # the hot set covers the whole window there is no cold
                # region to scan, so every access lands here.
                span = self._hot_blocks
                offset = int(span * rng.random() * rng.random())
                out.append(window.base + min(offset, span - 1))
            else:
                # Sequential scan through the cold region.  ``start`` is
                # always inside the window, so at least one block is emitted
                # per iteration and the loop makes progress.
                length = max(1, int(rng.expovariate(1.0 / self._mean_scan)))
                start = hot_end + rng.randrange(cold_span)
                for i in range(length):
                    address = start + i
                    if address >= window.end or len(out) >= num_accesses:
                        break
                    out.append(address)
        return out


__all__ = ["DataStreamGenerator"]
