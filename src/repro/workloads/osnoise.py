"""Operating-system noise injection.

Server workloads spend a large fraction of their time in the OS (the paper's
workloads execute up to ~60% of instructions in kernel mode), and traps,
interrupts and scheduler invocations interrupt the application fetch stream at
unpredictable points.  :class:`OSNoiseModel` builds a small set of
straight-line handler routines inside the workload's OS-code window and
injects one at geometrically distributed intervals into a core's fetch
stream.

Handlers recur (the same timer interrupt body runs every time), so a temporal
prefetcher can learn them, but their *injection points* are random, which
breaks the recorded application streams and is one of the effects that keeps
prefetcher coverage below 100%.
"""

from __future__ import annotations

from random import Random
from typing import List, Tuple

from ..errors import ConfigurationError
from .address_space import AddressWindow, BlockAllocator


class OSNoiseModel:
    """Injects interrupt/trap handler fetch streams into a core trace."""

    def __init__(
        self,
        window: AddressWindow,
        num_handlers: int = 4,
        handler_blocks: int = 12,
        mean_interval_blocks: float = 400.0,
        seed: int = 0,
    ) -> None:
        if num_handlers < 1:
            raise ConfigurationError("need at least one OS handler")
        if handler_blocks < 1:
            raise ConfigurationError("handlers need at least one block")
        if mean_interval_blocks < 1.0:
            raise ConfigurationError("mean noise interval must be at least one block")

        allocator = BlockAllocator(window)
        handlers: List[Tuple[int, int]] = []
        rng = Random(seed)
        for _ in range(num_handlers):
            length = max(1, min(handler_blocks + rng.randint(-2, 2), allocator.remaining_blocks))
            base = allocator.allocate(length)
            handlers.append((base, length))
        self._window = window
        self._handlers = handlers
        self._mean_interval = mean_interval_blocks

    @property
    def window(self) -> AddressWindow:
        return self._window

    @property
    def num_handlers(self) -> int:
        return len(self._handlers)

    def footprint_blocks(self) -> int:
        return sum(length for _, length in self._handlers)

    def next_interval(self, rng: Random) -> int:
        """Blocks of application fetch until the next interrupt fires."""
        # Geometric distribution with the configured mean.
        p = 1.0 / self._mean_interval
        interval = 1
        while rng.random() > p:
            interval += 1
        return interval

    def emit_handler_runs(self, rng: Random, out: List[Tuple[int, int]]) -> int:
        """Append one handler execution as a ``(base, length)`` run.

        The columnar-IR emission path; same RNG draw (one ``randrange``) as
        :meth:`emit_handler`.  Returns blocks covered.
        """
        handler = self._handlers[rng.randrange(len(self._handlers))]
        out.append(handler)
        return handler[1]

    def emit_handler(self, rng: Random, out: List[int]) -> int:
        """Append one handler execution to ``out``; returns blocks emitted."""
        base, length = self._handlers[rng.randrange(len(self._handlers))]
        out.extend(range(base, base + length))
        return length


__all__ = ["OSNoiseModel"]
