"""Workload consolidation (Section 5.5 of the paper).

In consolidated servers several independent software stacks share one CMP.
Instruction footprints of the stacks do not overlap (separate OS images), so
a shared history either splits capacity between the stacks (one logical SHIFT
per workload) or interleaves records of all of them.  This module models the
address-space side of that experiment: a :class:`ConsolidationMix` assigns
disjoint groups of cores to different workload specs, and
:func:`generate_consolidated_traces` produces one :class:`TraceSet` in which
each group's traces come from its own code base in its own address windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..config import SystemConfig, scaled_system
from ..errors import ConfigurationError
from .generator import WorkloadTraceGenerator
from .suite import WorkloadSpec
from .trace import CoreTrace, TraceSet


@dataclass(frozen=True)
class ConsolidationMix:
    """An assignment of core counts to workload specs."""

    entries: Tuple[Tuple[WorkloadSpec, int], ...]

    def __post_init__(self) -> None:
        if not self.entries:
            raise ConfigurationError("a consolidation mix needs at least one workload")
        names = set()
        for spec, cores in self.entries:
            if cores < 1:
                raise ConfigurationError(f"workload {spec.name!r} needs at least one core")
            if spec.name in names:
                raise ConfigurationError(f"workload {spec.name!r} appears twice in the mix")
            names.add(spec.name)

    @classmethod
    def even_split(cls, specs: Sequence[WorkloadSpec], num_cores: int) -> "ConsolidationMix":
        """Split ``num_cores`` as evenly as possible across ``specs``."""
        if not specs:
            raise ConfigurationError("need at least one workload to consolidate")
        if num_cores < len(specs):
            raise ConfigurationError("need at least one core per consolidated workload")
        base, extra = divmod(num_cores, len(specs))
        entries = tuple(
            (spec, base + (1 if i < extra else 0)) for i, spec in enumerate(specs)
        )
        return cls(entries=entries)

    @property
    def num_workloads(self) -> int:
        return len(self.entries)

    @property
    def total_cores(self) -> int:
        return sum(cores for _, cores in self.entries)

    def core_ranges(self) -> List[Tuple[WorkloadSpec, range]]:
        """Contiguous core-id ranges assigned to each workload."""
        ranges: List[Tuple[WorkloadSpec, range]] = []
        next_core = 0
        for spec, cores in self.entries:
            ranges.append((spec, range(next_core, next_core + cores)))
            next_core += cores
        return ranges


def generate_consolidated_traces(
    mix: ConsolidationMix,
    system: Optional[SystemConfig] = None,
    seed: int = 0,
    blocks_per_core: Optional[int] = None,
) -> TraceSet:
    """Generate one trace set with disjoint footprints per consolidated stack."""
    sys_config = system if system is not None else scaled_system()
    if mix.total_cores > sys_config.num_cores:
        raise ConfigurationError(
            f"mix needs {mix.total_cores} cores but the system has {sys_config.num_cores}"
        )
    traces: List[CoreTrace] = []
    layouts = []
    workload_of_core = {}
    for workload_index, (spec, cores) in enumerate(mix.core_ranges()):
        generator = WorkloadTraceGenerator(
            spec,
            system=sys_config,
            seed=seed + workload_index,
            workload_index=workload_index,
        )
        layouts.append(generator.layout)
        for core_id in cores:
            trace = generator.core_trace(core_id, blocks_per_core)
            traces.append(trace)
            workload_of_core[core_id] = spec.name
    name = "+".join(spec.name for spec, _ in mix.entries)
    return TraceSet(
        traces=traces,
        layouts=tuple(layouts),
        seed=seed,
        name=name,
        workload_of_core=workload_of_core,
    )


__all__ = ["ConsolidationMix", "generate_consolidated_traces"]
