"""Trace containers.

A :class:`CoreTrace` is the retire-order instruction-fetch stream of one core
at cache-block granularity: a flat list of block addresses.  A
:class:`TraceSet` bundles the per-core traces of a whole CMP run together with
the address layouts used to generate them, which the simulator needs to place
virtualized SHIFT history buffers in non-conflicting regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..errors import TraceError
from .address_space import WorkloadAddressLayout


@dataclass
class CoreTrace:
    """Retire-order fetch stream of a single core (block addresses)."""

    core_id: int
    addresses: List[int]
    instructions_per_block: int = 10
    workload: str = ""
    requests: int = 0
    #: Lazily computed distinct-block set; never part of equality or repr.
    _footprint: Optional[FrozenSet[int]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.core_id < 0:
            raise TraceError("core id cannot be negative")
        if not self.addresses:
            raise TraceError(f"core {self.core_id} trace is empty")
        if self.instructions_per_block < 1:
            raise TraceError("a fetched block must retire at least one instruction")

    @property
    def num_accesses(self) -> int:
        return len(self.addresses)

    @property
    def num_instructions(self) -> int:
        return self.num_accesses * self.instructions_per_block

    def footprint(self) -> FrozenSet[int]:
        """The distinct blocks touched by this trace (computed once)."""
        if self._footprint is None:
            self._footprint = frozenset(self.addresses)
        return self._footprint

    @property
    def distinct_blocks(self) -> int:
        return len(self.footprint())

    def __iter__(self) -> Iterator[int]:
        return iter(self.addresses)

    def __len__(self) -> int:
        return self.num_accesses


@dataclass
class TraceSet:
    """Per-core traces for one simulated system."""

    traces: List[CoreTrace]
    layouts: Tuple[WorkloadAddressLayout, ...] = ()
    seed: int = 0
    name: str = ""
    workload_of_core: Dict[int, str] = field(default_factory=dict)
    _footprint: Optional[FrozenSet[int]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _by_core: Optional[Dict[int, CoreTrace]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.traces:
            raise TraceError("a trace set needs at least one core trace")
        seen = set()
        for trace in self.traces:
            if trace.core_id in seen:
                raise TraceError(f"duplicate trace for core {trace.core_id}")
            seen.add(trace.core_id)
        if not self.workload_of_core:
            self.workload_of_core = {t.core_id: t.workload for t in self.traces}

    @property
    def num_cores(self) -> int:
        return len(self.traces)

    @property
    def total_accesses(self) -> int:
        return sum(t.num_accesses for t in self.traces)

    def for_core(self, core_id: int) -> CoreTrace:
        if self._by_core is None:
            self._by_core = {t.core_id: t for t in self.traces}
        try:
            return self._by_core[core_id]
        except KeyError:
            raise TraceError(f"no trace for core {core_id}") from None

    def footprint(self) -> FrozenSet[int]:
        """Distinct blocks touched across all cores (computed once)."""
        if self._footprint is None:
            self._footprint = frozenset().union(
                *(trace.footprint() for trace in self.traces)
            )
        return self._footprint

    @property
    def distinct_blocks(self) -> int:
        return len(self.footprint())

    def __iter__(self) -> Iterator[CoreTrace]:
        return iter(self.traces)

    def __len__(self) -> int:
        return self.num_cores


__all__ = ["CoreTrace", "TraceSet"]
