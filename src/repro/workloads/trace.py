"""Trace containers: the columnar trace IR.

A :class:`CoreTrace` is the retire-order instruction-fetch stream of one core
at cache-block granularity.  Since PR 5 the canonical storage is *columnar*:
a single contiguous ``int64`` buffer — a NumPy array when NumPy is
importable, an ``array('q')`` otherwise, so the pure-Python backend keeps
zero hard dependencies.  Every consumer picks the view it needs:

* the NumPy simulation backend reads :attr:`CoreTrace.array` zero-copy and
  keys its cross-run memos on :attr:`CoreTrace.fingerprint` (a stable
  content digest, carried by the IR so memory-mapped cache loads and
  regenerated traces share warm precomputes);
* the Python loops iterate :attr:`CoreTrace.addresses`, a lazily
  materialized plain-``list`` view (iteration speed identical to the
  pre-columnar representation);
* the binary trace cache serializes the buffer bytes directly.

Traces are immutable once constructed — buffers loaded from the
memory-mapped cache are read-only, and nothing in the library writes to a
trace buffer.

A :class:`TraceSet` bundles the per-core traces of a whole CMP run together
with the address layouts used to generate them, which the simulator needs to
place virtualized SHIFT history buffers in non-conflicting regions.

Generators do not build traces element by element: they emit *runs* —
``(base, length)`` pairs describing contiguous block ranges — and
:func:`expand_runs` materializes the column in one vectorized pass
(``np.repeat`` + ``arange`` offsetting; see
:meth:`CoreTrace.from_runs`).
"""

from __future__ import annotations

import hashlib
from array import array
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from ..errors import TraceError
from .address_space import WorkloadAddressLayout

try:  # NumPy is optional everywhere in the workloads layer.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the array('q') paths
    _np = None

#: A contiguous straight-line block range: ``(base, num_blocks)``.
Run = Tuple[int, int]


def _as_column(addresses) -> "object":
    """Normalize any int sequence into the canonical ``int64`` column."""
    if _np is not None:
        if isinstance(addresses, _np.ndarray):
            if addresses.dtype == _np.int64 and addresses.ndim == 1:
                return addresses
            return addresses.astype(_np.int64).reshape(-1)
        return _np.asarray(addresses, dtype=_np.int64)
    if isinstance(addresses, array) and addresses.typecode == "q":
        return addresses
    return array("q", addresses)


def _column_bytes(column) -> memoryview:
    """The raw little-endian ``int64`` bytes of a column (no copy if possible)."""
    if _np is not None and isinstance(column, _np.ndarray):
        contiguous = _np.ascontiguousarray(column)
        # dtype equality is byte-order-aware: on little-endian hosts the
        # native int64 *is* '<i8', on big-endian hosts it is not (its
        # byteorder reports '=', never '>', so compare dtypes, not flags).
        if contiguous.dtype != _np.dtype("<i8"):  # pragma: no cover - BE hosts
            contiguous = contiguous.astype("<i8")
        return contiguous.data
    import sys

    if sys.byteorder == "big":  # pragma: no cover - BE hosts
        swapped = array("q", column)
        swapped.byteswap()
        return memoryview(swapped.tobytes())
    return memoryview(column)


def column_fingerprint(column) -> str:
    """Stable content digest of an address column (dtype-independent)."""
    digest = hashlib.sha256()
    digest.update(_column_bytes(column))
    return digest.hexdigest()


def expand_runs(runs: Sequence[Run], limit: Optional[int] = None):
    """Materialize ``(base, length)`` runs into one address column.

    Vectorized when NumPy is available: the per-run base is repeated over
    its length and a global ``arange`` minus the repeated run start yields
    the within-run offsets — one pass, no Python-level per-element work.
    ``limit`` truncates the expansion to the first ``limit`` blocks.
    """
    if _np is not None:
        if not runs:
            return _np.empty(0, dtype=_np.int64)
        bases = _np.fromiter((r[0] for r in runs), dtype=_np.int64, count=len(runs))
        lengths = _np.fromiter((r[1] for r in runs), dtype=_np.int64, count=len(runs))
        ends = _np.cumsum(lengths)
        total = int(ends[-1])
        starts = ends - lengths
        out = _np.repeat(bases - starts, lengths) + _np.arange(total, dtype=_np.int64)
        return out[:limit] if limit is not None and limit < total else out
    out = array("q")
    if limit is None:
        for base, length in runs:
            out.extend(range(base, base + length))
        return out
    remaining = limit
    for base, length in runs:
        if remaining <= 0:
            break
        take = length if length <= remaining else remaining
        out.extend(range(base, base + take))
        remaining -= take
    return out


class CoreTrace:
    """Retire-order fetch stream of a single core (block addresses).

    ``addresses`` accepts any integer sequence (or an existing ``int64``
    buffer, taken zero-copy) and is exposed back as a plain-list view; the
    canonical columnar buffer lives in :attr:`array`.
    """

    __slots__ = (
        "core_id",
        "instructions_per_block",
        "workload",
        "requests",
        "_column",
        "_list",
        "_footprint",
        "_fingerprint",
    )

    def __init__(
        self,
        core_id: int,
        addresses,
        instructions_per_block: int = 10,
        workload: str = "",
        requests: int = 0,
        fingerprint: Optional[str] = None,
    ) -> None:
        if core_id < 0:
            raise TraceError("core id cannot be negative")
        if instructions_per_block < 1:
            raise TraceError("a fetched block must retire at least one instruction")
        column = _as_column(addresses)
        if len(column) == 0:
            raise TraceError(f"core {core_id} trace is empty")
        self.core_id = core_id
        self.instructions_per_block = instructions_per_block
        self.workload = workload
        self.requests = requests
        self._column = column
        self._list: Optional[List[int]] = None
        self._footprint: Optional[FrozenSet[int]] = None
        self._fingerprint = fingerprint

    @classmethod
    def from_runs(
        cls,
        core_id: int,
        runs: Sequence[Run],
        limit: Optional[int] = None,
        **kwargs,
    ) -> "CoreTrace":
        """Build a trace by vectorized expansion of ``(base, length)`` runs."""
        return cls(core_id, expand_runs(runs, limit=limit), **kwargs)

    @property
    def array(self):
        """The canonical contiguous ``int64`` column (ndarray or array('q'))."""
        return self._column

    @property
    def addresses(self) -> List[int]:
        """Plain-``list`` view of the column (materialized once, cached)."""
        if self._list is None:
            if _np is not None and isinstance(self._column, _np.ndarray):
                self._list = self._column.tolist()
            else:
                self._list = list(self._column)
        return self._list

    @property
    def fingerprint(self) -> str:
        """Content digest of the column; the memo key of the numpy backend.

        Carried by the IR (and persisted in the trace cache's sidecar), so
        two loads of the same entry — or a regeneration producing identical
        content — share every content-keyed precompute.
        """
        if self._fingerprint is None:
            self._fingerprint = column_fingerprint(self._column)
        return self._fingerprint

    def window(self, start: int, stop: int) -> "CoreTrace":
        """Zero-copy view of accesses ``[start, stop)`` as a new trace.

        The returned trace shares the underlying column buffer (an ndarray
        slice or ``array('q')`` slice of a memory-mapped cache entry stays a
        view into the same pages for ndarrays), so the chunked engine can
        walk arbitrarily long traces while only ever materializing one
        window's plain-list view at a time.  The window fingerprint is
        derived from the parent's — ``<parent>:<start>:<stop>`` — without
        touching the window's bytes, so content-keyed backend memos stay
        distinct per window yet stable across runs.
        """
        stop = min(stop, len(self._column))
        if not 0 <= start < stop:
            raise TraceError(
                f"empty trace window [{start}, {stop}) for core {self.core_id}"
            )
        # ndarray slicing is a zero-copy view; array('q') slicing copies the
        # window, which is still bounded by the chunk size.
        column = self._column[start:stop]
        return CoreTrace(
            self.core_id,
            column,
            instructions_per_block=self.instructions_per_block,
            workload=self.workload,
            requests=self.requests,
            fingerprint=f"{self.fingerprint}:{start}:{stop}",
        )

    @property
    def num_accesses(self) -> int:
        return len(self._column)

    @property
    def num_instructions(self) -> int:
        return self.num_accesses * self.instructions_per_block

    def footprint(self) -> FrozenSet[int]:
        """The distinct blocks touched by this trace (computed once)."""
        if self._footprint is None:
            self._footprint = frozenset(self.addresses)
        return self._footprint

    @property
    def distinct_blocks(self) -> int:
        return len(self.footprint())

    def __iter__(self) -> Iterator[int]:
        return iter(self.addresses)

    def __len__(self) -> int:
        return self.num_accesses

    def __getitem__(self, index):
        return self.addresses[index]

    def __eq__(self, other) -> bool:
        if not isinstance(other, CoreTrace):
            return NotImplemented
        return (
            self.core_id == other.core_id
            and self.instructions_per_block == other.instructions_per_block
            and self.workload == other.workload
            and self.requests == other.requests
            and self.num_accesses == other.num_accesses
            and self.fingerprint == other.fingerprint
        )

    def __hash__(self) -> int:
        return hash((self.core_id, self.num_accesses, self.fingerprint))

    def __repr__(self) -> str:
        return (
            f"CoreTrace(core_id={self.core_id}, accesses={self.num_accesses}, "
            f"workload={self.workload!r}, requests={self.requests})"
        )

    def __getstate__(self):
        # Pickle the raw buffer bytes, not a memory-map or list view.
        return {
            "core_id": self.core_id,
            "instructions_per_block": self.instructions_per_block,
            "workload": self.workload,
            "requests": self.requests,
            "data": bytes(_column_bytes(self._column)),
            "fingerprint": self._fingerprint,
        }

    def __setstate__(self, state) -> None:
        self.core_id = state["core_id"]
        self.instructions_per_block = state["instructions_per_block"]
        self.workload = state["workload"]
        self.requests = state["requests"]
        if _np is not None:
            self._column = _np.frombuffer(state["data"], dtype="<i8").astype(
                _np.int64, copy=False
            )
        else:
            column = array("q")
            column.frombytes(state["data"])
            import sys

            if sys.byteorder == "big":  # pragma: no cover - BE hosts
                column.byteswap()
            self._column = column
        self._list = None
        self._footprint = None
        self._fingerprint = state["fingerprint"]


@dataclass
class TraceSet:
    """Per-core traces for one simulated system."""

    traces: List[CoreTrace]
    layouts: Tuple[WorkloadAddressLayout, ...] = ()
    seed: int = 0
    name: str = ""
    workload_of_core: Dict[int, str] = field(default_factory=dict)
    _footprint: Optional[FrozenSet[int]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _by_core: Optional[Dict[int, CoreTrace]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.traces:
            raise TraceError("a trace set needs at least one core trace")
        seen = set()
        for trace in self.traces:
            if trace.core_id in seen:
                raise TraceError(f"duplicate trace for core {trace.core_id}")
            seen.add(trace.core_id)
        if not self.workload_of_core:
            self.workload_of_core = {t.core_id: t.workload for t in self.traces}

    @property
    def num_cores(self) -> int:
        return len(self.traces)

    @property
    def total_accesses(self) -> int:
        return sum(t.num_accesses for t in self.traces)

    def for_core(self, core_id: int) -> CoreTrace:
        if self._by_core is None:
            self._by_core = {t.core_id: t for t in self.traces}
        try:
            return self._by_core[core_id]
        except KeyError:
            raise TraceError(f"no trace for core {core_id}") from None

    def footprint(self) -> FrozenSet[int]:
        """Distinct blocks touched across all cores (computed once)."""
        if self._footprint is None:
            self._footprint = frozenset().union(
                *(trace.footprint() for trace in self.traces)
            )
        return self._footprint

    @property
    def distinct_blocks(self) -> int:
        return len(self.footprint())

    def __iter__(self) -> Iterator[CoreTrace]:
        return iter(self.traces)

    def __len__(self) -> int:
        return self.num_cores


__all__ = [
    "CoreTrace",
    "TraceSet",
    "Run",
    "column_fingerprint",
    "expand_runs",
]
