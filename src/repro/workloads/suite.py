"""The workload suite of the paper, as synthetic-workload specifications.

The paper evaluates SHIFT on seven commercial server workloads: TPC-C on two
database engines (DB2 and Oracle), two TPC-H decision-support queries on
MonetDB, Darwin media streaming, Apache/SPECweb99 web serving and Nutch web
search.  :data:`WORKLOAD_SUITE` encodes each as a :class:`WorkloadSpec`: the
knobs that matter for instruction-fetch behaviour are the instruction
footprint (application + OS), the basic-block run length, the depth and
optionality of the call structure, and the amount of OS noise.

Footprints are expressed at *paper scale* (64-byte blocks; e.g. 24576 blocks
is a 1.5 MB application binary).  :func:`scaled_workload` shrinks a spec by
the same factor used for :func:`repro.config.scaled_system`, preserving the
footprint-to-L1-I ratio that determines prefetcher behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from ..errors import ConfigurationError


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one synthetic server workload.

    All ``*_blocks`` fields are 64-byte cache blocks at paper scale.
    """

    name: str
    description: str
    #: Application instruction footprint.
    app_code_blocks: int
    #: OS instruction footprint exercised by this workload.
    os_code_blocks: int
    #: Data footprint (used by :class:`repro.workloads.datastream.DataStreamGenerator`).
    data_blocks: int
    #: Mean basic-block run length in blocks (controls discontinuity rate).
    mean_run_blocks: float = 3.0
    #: Maximum basic-block runs per function.
    max_runs_per_function: int = 3
    #: Mean call sites per function.
    call_fanout: float = 1.5
    #: Fraction of call sites that are optional, and their taken-probability.
    optional_call_fraction: float = 0.25
    optional_call_probability: float = 0.5
    #: Request-level structure.
    num_request_types: int = 4
    entries_per_request: int = 4
    max_call_depth: int = 6
    mutation_probability: float = 0.05
    #: OS noise.
    os_noise_interval_blocks: float = 400.0
    os_handlers: int = 4
    os_handler_blocks: int = 12
    #: Trace length per core at paper scale (fetched blocks).
    blocks_per_core: int = 120_000
    #: Instructions retired per fetched block (timing model).
    instructions_per_block: int = 10

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("workload needs a name")
        for label, value in (
            ("application footprint", self.app_code_blocks),
            ("OS footprint", self.os_code_blocks),
            ("data footprint", self.data_blocks),
            ("trace length", self.blocks_per_core),
        ):
            if value <= 0:
                raise ConfigurationError(f"{label} must be positive")

    @property
    def total_code_blocks(self) -> int:
        return self.app_code_blocks + self.os_code_blocks

    def scaled(self, scale: int) -> "WorkloadSpec":
        """Shrink footprints and trace length by ``scale`` (floors applied)."""
        if scale < 1:
            raise ConfigurationError("scale factor must be >= 1")
        if scale == 1:
            return self
        return replace(
            self,
            app_code_blocks=max(256, self.app_code_blocks // scale),
            os_code_blocks=max(64, self.os_code_blocks // scale),
            data_blocks=max(256, self.data_blocks // scale),
            blocks_per_core=max(2_000, self.blocks_per_core // scale),
        )


def _spec(**kwargs) -> WorkloadSpec:
    return WorkloadSpec(**kwargs)


#: The seven workloads of the paper.  Footprints follow the qualitative
#: characterisation in the paper and its antecedents (OLTP and web workloads
#: have multi-megabyte instruction working sets; DSS queries are loop-heavy
#: with smaller footprints and longer runs).
WORKLOAD_SUITE: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        _spec(
            name="oltp_db2",
            description="TPC-C on IBM DB2 v8 (100 warehouses, 64 clients)",
            app_code_blocks=24_576,
            os_code_blocks=8_192,
            data_blocks=262_144,
            mean_run_blocks=2.8,
            call_fanout=1.8,
            num_request_types=5,
            os_noise_interval_blocks=350.0,
        ),
        _spec(
            name="oltp_oracle",
            description="TPC-C on Oracle 10g (100 warehouses, 16 clients)",
            app_code_blocks=28_672,
            os_code_blocks=8_192,
            data_blocks=262_144,
            mean_run_blocks=2.6,
            call_fanout=2.0,
            num_request_types=5,
            os_noise_interval_blocks=350.0,
        ),
        _spec(
            name="dss_qry2",
            description="TPC-H Qry2 on IBM DB2 (480 MB buffer pool)",
            app_code_blocks=10_240,
            os_code_blocks=4_096,
            data_blocks=524_288,
            mean_run_blocks=4.0,
            call_fanout=1.2,
            num_request_types=2,
            optional_call_fraction=0.15,
            mutation_probability=0.02,
            os_noise_interval_blocks=700.0,
        ),
        _spec(
            name="dss_qry17",
            description="TPC-H Qry17 on IBM DB2 (480 MB buffer pool)",
            app_code_blocks=12_288,
            os_code_blocks=4_096,
            data_blocks=524_288,
            mean_run_blocks=3.6,
            call_fanout=1.3,
            num_request_types=2,
            optional_call_fraction=0.15,
            mutation_probability=0.02,
            os_noise_interval_blocks=700.0,
        ),
        _spec(
            name="media_streaming",
            description="Darwin Streaming Server (7500 clients, 60 GB library)",
            app_code_blocks=16_384,
            os_code_blocks=12_288,
            data_blocks=1_048_576,
            mean_run_blocks=3.2,
            call_fanout=1.4,
            num_request_types=3,
            os_noise_interval_blocks=250.0,
        ),
        _spec(
            name="web_frontend",
            description="Apache HTTP Server v2.0 with SPECweb99 (16K connections)",
            app_code_blocks=20_480,
            os_code_blocks=12_288,
            data_blocks=262_144,
            mean_run_blocks=2.7,
            call_fanout=1.7,
            num_request_types=6,
            os_noise_interval_blocks=300.0,
        ),
        _spec(
            name="web_search",
            description="Nutch 1.2 / Lucene search over a 2 GB index segment",
            app_code_blocks=18_432,
            os_code_blocks=6_144,
            data_blocks=524_288,
            mean_run_blocks=3.0,
            call_fanout=1.6,
            num_request_types=4,
            os_noise_interval_blocks=450.0,
        ),
    )
}

#: Stable iteration order for reports and experiments.
WORKLOAD_NAMES: Tuple[str, ...] = tuple(WORKLOAD_SUITE)


def workload_by_name(name: str) -> WorkloadSpec:
    """Look up a workload spec, raising a helpful error for typos."""
    try:
        return WORKLOAD_SUITE[name]
    except KeyError:
        known = ", ".join(WORKLOAD_NAMES)
        raise ConfigurationError(f"unknown workload {name!r}; known workloads: {known}") from None


def scaled_workload(spec_or_name: "WorkloadSpec | str", scale: int = 16) -> WorkloadSpec:
    """Shrink a workload spec by ``scale`` to match :func:`repro.config.scaled_system`."""
    spec = workload_by_name(spec_or_name) if isinstance(spec_or_name, str) else spec_or_name
    return spec.scaled(scale)


__all__ = [
    "WorkloadSpec",
    "WORKLOAD_SUITE",
    "WORKLOAD_NAMES",
    "workload_by_name",
    "scaled_workload",
]
