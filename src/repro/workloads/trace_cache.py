"""On-disk cache of generated trace sets.

Trace generation is deterministic in (workload spec, system, seed, core
count, trace length), so its output can be cached and shared: within one
parallel experiment the baseline and the three prefetch engines all simulate
the same trace set, and across experiment invocations (sweeps, benches,
repeated ``--check`` runs) the same cells recur constantly.  Worker processes
of the parallel executor coordinate purely through this cache — the first
process to need a trace generates and publishes it, later ones load it.

Entries are pickle files named by a SHA-256 key over every input that can
influence generation, including the full workload-spec field dict, so editing
a workload definition naturally invalidates its entries.  Writes go through a
temporary file and :func:`os.replace`, which makes concurrent writers safe on
POSIX: both produce identical bytes and the rename is atomic.  A cache entry
is an optimization only — any read problem falls back to regeneration.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import asdict
from pathlib import Path
from typing import Optional

from ..config import SystemConfig
from .suite import WorkloadSpec
from .trace import TraceSet

#: Bump when the pickle payload or generation semantics change.
CACHE_FORMAT_VERSION = 2

#: Default cache directory (under the working directory, like ``.pytest_cache``).
DEFAULT_CACHE_DIR = ".trace_cache"


def trace_cache_key(
    specs: "tuple[WorkloadSpec, ...] | WorkloadSpec",
    system: SystemConfig,
    seed: int,
    num_cores: Optional[int],
    blocks_per_core: Optional[int],
) -> str:
    """Deterministic content key for one generated trace set.

    ``specs`` is a single spec, or the tuple of specs of a consolidation mix
    (order matters: it fixes the core-group assignment).  Of the system
    configuration only the core count influences generation (the specs are
    already scaled), so cache-geometry sweeps — LLC slice sizes, L1 sizes —
    share one cached trace set per (specs, cores, seed, length) point.
    """
    if isinstance(specs, WorkloadSpec):
        specs = (specs,)
    payload = {
        "version": CACHE_FORMAT_VERSION,
        "specs": [asdict(spec) for spec in specs],
        "cores": num_cores if num_cores is not None else system.num_cores,
        "seed": seed,
        "blocks_per_core": blocks_per_core,
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    )
    return digest.hexdigest()


class TraceCache:
    """A directory of pickled :class:`~repro.workloads.trace.TraceSet`\\ s."""

    def __init__(self, directory: "str | Path" = DEFAULT_CACHE_DIR) -> None:
        self._directory = Path(directory)
        self.hits = 0
        self.misses = 0

    @property
    def directory(self) -> Path:
        return self._directory

    def _path(self, key: str) -> Path:
        return self._directory / f"{key}.pkl"

    def load(self, key: str) -> Optional[TraceSet]:
        """Return the cached trace set for ``key``, or None."""
        try:
            with open(self._path(key), "rb") as handle:
                trace_set = pickle.load(handle)
        except (OSError, EOFError, pickle.UnpicklingError, AttributeError, ValueError):
            self.misses += 1
            return None
        if not isinstance(trace_set, TraceSet):
            self.misses += 1
            return None
        self.hits += 1
        return trace_set

    def store(self, key: str, trace_set: TraceSet) -> None:
        """Atomically publish ``trace_set`` under ``key``; best-effort."""
        try:
            self._directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix=f"{key}.", suffix=".tmp", dir=self._directory
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(trace_set, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_name, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full filesystem must not fail the experiment.
            pass


__all__ = [
    "TraceCache",
    "trace_cache_key",
    "CACHE_FORMAT_VERSION",
    "DEFAULT_CACHE_DIR",
]
