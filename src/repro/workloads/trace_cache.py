"""On-disk cache of generated trace sets.

Trace generation is deterministic in (workload spec, system, seed, core
count, trace length), so its output can be cached and shared: within one
parallel experiment the baseline and the three prefetch engines all simulate
the same trace set, and across experiment invocations (sweeps, benches,
repeated ``--check`` runs) the same cells recur constantly.  Worker processes
of the parallel executor coordinate purely through this cache — the first
process to need a trace generates and publishes it, later ones load it.

Entries are pickle files named ``v<version>-<sha256>.pkl``: the SHA-256 key
covers every input that can influence generation, including the full
workload-spec field dict, so editing a workload definition naturally
invalidates its entries.  Writes go through a temporary file and
:func:`os.replace`, which makes concurrent writers safe on POSIX: both
produce identical bytes and the rename is atomic.  A cache entry is an
optimization only — any read problem falls back to regeneration.

The cache is bounded: opening it prunes entries left by other format
versions (their keys can never be requested again), and after every store
the total size is capped at :data:`DEFAULT_MAX_BYTES` (override per cache
with ``max_bytes=`` or globally with ``REPRO_TRACE_CACHE_MAX_BYTES``;
``0`` disables the cap).  Eviction is least-recently-used: loads bump an
entry's mtime, and the oldest entries are removed first.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import tempfile
from dataclasses import asdict
from pathlib import Path
from typing import List, Optional, Tuple

from ..config import SystemConfig
from ..errors import ConfigurationError
from .suite import WorkloadSpec
from .trace import TraceSet

#: Bump when the pickle payload or generation semantics change.
CACHE_FORMAT_VERSION = 2

#: Default cache directory (under the working directory, like ``.pytest_cache``).
DEFAULT_CACHE_DIR = ".trace_cache"

#: Environment variable overriding the default size cap (bytes; 0 = unlimited).
MAX_BYTES_ENV_VAR = "REPRO_TRACE_CACHE_MAX_BYTES"

#: Default on-disk budget: enough for hundreds of scaled trace sets while
#: keeping an unattended sweep box from filling its disk.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Filename prefix of current-version entries.
_VERSION_PREFIX = f"v{CACHE_FORMAT_VERSION}-"

#: Name shapes this cache family has ever written: ``v<N>-<sha256>.pkl``
#: and the PR-2-era bare ``<sha256>.pkl``.  Pruning must never touch
#: anything else — the user may point the cache at a directory that also
#: holds unrelated pickles.
_ENTRY_NAME_RE = re.compile(r"^(?:v(\d+)-)?[0-9a-f]{64}\.pkl$")


def _resolve_max_bytes(max_bytes: Optional[int]) -> int:
    """Effective cap: explicit argument > environment > default."""
    if max_bytes is not None:
        if max_bytes < 0:
            raise ConfigurationError("trace cache max_bytes cannot be negative")
        return max_bytes
    raw = os.environ.get(MAX_BYTES_ENV_VAR, "").strip()
    if not raw:
        return DEFAULT_MAX_BYTES
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{MAX_BYTES_ENV_VAR} must be an integer byte count, got {raw!r}"
        ) from None
    if value < 0:
        raise ConfigurationError(f"{MAX_BYTES_ENV_VAR} cannot be negative")
    return value


def trace_cache_key(
    specs: "tuple[WorkloadSpec, ...] | WorkloadSpec",
    system: SystemConfig,
    seed: int,
    num_cores: Optional[int],
    blocks_per_core: Optional[int],
) -> str:
    """Deterministic content key for one generated trace set.

    ``specs`` is a single spec, or the tuple of specs of a consolidation mix
    (order matters: it fixes the core-group assignment).  Of the system
    configuration only the core count influences generation (the specs are
    already scaled), so cache-geometry sweeps — LLC slice sizes, L1 sizes —
    share one cached trace set per (specs, cores, seed, length) point.
    """
    if isinstance(specs, WorkloadSpec):
        specs = (specs,)
    payload = {
        "version": CACHE_FORMAT_VERSION,
        "specs": [asdict(spec) for spec in specs],
        "cores": num_cores if num_cores is not None else system.num_cores,
        "seed": seed,
        "blocks_per_core": blocks_per_core,
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    )
    return digest.hexdigest()


class TraceCache:
    """A bounded directory of pickled :class:`~repro.workloads.trace.TraceSet`\\ s."""

    def __init__(
        self,
        directory: "str | Path" = DEFAULT_CACHE_DIR,
        max_bytes: Optional[int] = None,
    ) -> None:
        self._directory = Path(directory)
        self._max_bytes = _resolve_max_bytes(max_bytes)
        self.hits = 0
        self.misses = 0
        self.evicted = 0
        self._prune_stale_versions()

    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def max_bytes(self) -> int:
        """Size cap in bytes (0 = unlimited)."""
        return self._max_bytes

    def _path(self, key: str) -> Path:
        return self._directory / f"{_VERSION_PREFIX}{key}.pkl"

    def _prune_stale_versions(self) -> None:
        """Drop entries written by *older* format versions — this version
        will never request their keys again — and the PR-2-era unversioned
        files.  Entries from newer versions are left alone: a newer checkout
        sharing the directory still needs them, and deleting them would make
        the two checkouts wipe each other's caches on every open.
        Best-effort, like every other filesystem operation here."""
        try:
            entries = list(self._directory.iterdir())
        except OSError:
            return
        for path in entries:
            match = _ENTRY_NAME_RE.match(path.name)
            if match is None:
                continue
            version = int(match.group(1)) if match.group(1) else 0
            if version >= CACHE_FORMAT_VERSION:
                continue
            try:
                path.unlink()
            except OSError:
                pass

    def _entries_by_age(self) -> List[Tuple[float, int, Path]]:
        """Current-version entries as (mtime, size, path), oldest first."""
        entries: List[Tuple[float, int, Path]] = []
        try:
            paths = list(self._directory.glob(f"{_VERSION_PREFIX}*.pkl"))
        except OSError:
            return entries
        for path in paths:
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()
        return entries

    def _enforce_cap(self) -> None:
        if not self._max_bytes:
            return
        entries = self._entries_by_age()
        total = sum(size for _mtime, size, _path in entries)
        for _mtime, size, path in entries:
            if total <= self._max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            self.evicted += 1

    def load(self, key: str) -> Optional[TraceSet]:
        """Return the cached trace set for ``key``, or None."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                trace_set = pickle.load(handle)
        except (OSError, EOFError, pickle.UnpicklingError, AttributeError, ValueError):
            self.misses += 1
            return None
        if not isinstance(trace_set, TraceSet):
            self.misses += 1
            return None
        try:
            os.utime(path)  # LRU touch: protect hot entries from eviction
        except OSError:
            pass
        self.hits += 1
        return trace_set

    def store(self, key: str, trace_set: TraceSet) -> None:
        """Atomically publish ``trace_set`` under ``key``; best-effort."""
        try:
            self._directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix=f"{key}.", suffix=".tmp", dir=self._directory
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(trace_set, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_name, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full filesystem must not fail the experiment.
            return
        self._enforce_cap()


__all__ = [
    "TraceCache",
    "trace_cache_key",
    "CACHE_FORMAT_VERSION",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_MAX_BYTES",
    "MAX_BYTES_ENV_VAR",
]
