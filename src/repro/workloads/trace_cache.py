"""On-disk cache of generated trace sets (binary, memory-mappable).

Trace generation is deterministic in (workload spec, system, seed, core
count, trace length), so its output can be cached and shared: within one
parallel experiment the baseline and the three prefetch engines all simulate
the same trace set, and across experiment invocations (sweeps, benches,
repeated ``--check`` runs) the same cells recur constantly.  Worker processes
of the parallel executor coordinate purely through this cache — the first
process to need a trace generates and publishes it, later ones load it.

Format v3 stores each entry as two files (the PR-2 pickle era is over):

``v3-<sha256>.npy``
    Every core's address column concatenated into one contiguous
    little-endian ``int64`` array, written as a standard NPY v1.0 file.
    The header is hand-rolled (:func:`_npy_header`) so the bytes are
    identical whether or not NumPy is installed — caches written by the
    pure-Python fallback and by NumPy hosts interoperate.
``v3-<sha256>.json``
    The sidecar header: per-core (offset, length) slices plus the trace
    metadata the columns cannot carry — core ids, workloads, request
    counts, content fingerprints, the address layouts and the set-level
    fields.  An entry is complete once its sidecar exists; writers publish
    the ``.npy`` first, so a visible sidecar always has its columns.

:meth:`TraceCache.load` memory-maps the column file read-only (NumPy
``mmap_mode="r"``): the per-core :class:`~repro.workloads.trace.CoreTrace`
buffers are zero-copy slices of the map, so ``REPRO_WORKERS=N`` worker
processes loading the same entry share one page-cache copy instead of N
private deserialized lists.  Sidecar fingerprints ride along — verified
against the column bytes on load, since the numpy backend keys cross-run
precompute memos on them — which keeps those memos warm across loads.

Concurrent workers are safe by construction: the SHA-256 key covers every
input that can influence generation, so two writers of one key produce
identical bytes; writes go through a temporary file and :func:`os.replace`
(atomic on POSIX); and every maintenance pass — version pruning, the LRU
size cap — tolerates entries another worker already deleted
(``FileNotFoundError`` is expected, not exceptional).  A cache entry is an
optimization only: any read problem falls back to regeneration.

The cache is bounded: opening it prunes entries left by *older* format
versions (their keys can never be requested again), and after every store
the total size is capped at :data:`DEFAULT_MAX_BYTES` (override per cache
with ``max_bytes=`` or globally with ``REPRO_TRACE_CACHE_MAX_BYTES``;
``0`` disables the cap).  Eviction is least-recently-used: loads bump an
entry's mtime, and the oldest entries are removed first.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import re
import sys
import tempfile
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .. import envvars
from ..config import SystemConfig
from ..errors import ConfigurationError, ReproError
from .address_space import AddressWindow, WorkloadAddressLayout
from .suite import WorkloadSpec
from .trace import CoreTrace, TraceSet, _column_bytes, column_fingerprint

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the array('q') paths
    _np = None

#: Bump when the on-disk payload or generation semantics change.
CACHE_FORMAT_VERSION = 3

#: Default cache directory (under the working directory, like ``.pytest_cache``).
DEFAULT_CACHE_DIR = ".trace_cache"

#: Environment variable overriding the default size cap (bytes; 0 =
#: unlimited).  Declared in :mod:`repro.envvars`; alias kept for imports.
MAX_BYTES_ENV_VAR = envvars.TRACE_CACHE_MAX_BYTES.name

#: Default on-disk budget: enough for hundreds of scaled trace sets while
#: keeping an unattended sweep box from filling its disk.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Filename prefix of current-version entries.
_VERSION_PREFIX = f"v{CACHE_FORMAT_VERSION}-"

#: Name shapes this cache family has ever written: the v3+ binary pair
#: ``v<N>-<sha256>.npy`` / ``.json``, the PR-2/4 pickle ``v<N>-<sha256>.pkl``
#: and the PR-2-era bare ``<sha256>.pkl`` (the *only* unversioned shape we
#: ever produced).  Pruning must never touch anything else — the user may
#: point the cache at a directory that also holds unrelated files, including
#: sha256-named artifacts of other content-addressed stores.
_ENTRY_NAME_RE = re.compile(
    r"^(?:v(\d+)-[0-9a-f]{64}\.(?:pkl|npy|json)|[0-9a-f]{64}\.pkl)$"
)

#: NPY v1.0 magic + version, shared by the hand-rolled writer and parser.
_NPY_MAGIC = b"\x93NUMPY\x01\x00"


def _resolve_max_bytes(max_bytes: Optional[int]) -> int:
    """Effective cap: explicit argument > environment > default."""
    if max_bytes is not None:
        if max_bytes < 0:
            raise ConfigurationError("trace cache max_bytes cannot be negative")
        return max_bytes
    raw = envvars.TRACE_CACHE_MAX_BYTES.read()
    if raw is None:
        return DEFAULT_MAX_BYTES
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{MAX_BYTES_ENV_VAR} must be an integer byte count, got {raw!r}"
        ) from None
    if value < 0:
        raise ConfigurationError(f"{MAX_BYTES_ENV_VAR} cannot be negative")
    return value


def trace_cache_key(
    specs: "tuple[WorkloadSpec, ...] | WorkloadSpec",
    system: SystemConfig,
    seed: int,
    num_cores: Optional[int],
    blocks_per_core: Optional[int],
) -> str:
    """Deterministic content key for one generated trace set.

    ``specs`` is a single spec, or the tuple of specs of a consolidation mix
    (order matters: it fixes the core-group assignment).  Of the system
    configuration only the core count influences generation (the specs are
    already scaled), so cache-geometry sweeps — LLC slice sizes, L1 sizes —
    share one cached trace set per (specs, cores, seed, length) point.
    """
    if isinstance(specs, WorkloadSpec):
        specs = (specs,)
    payload = {
        "version": CACHE_FORMAT_VERSION,
        "specs": [asdict(spec) for spec in specs],
        "cores": num_cores if num_cores is not None else system.num_cores,
        "seed": seed,
        "blocks_per_core": blocks_per_core,
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    )
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# NPY column file


def _npy_header(count: int) -> bytes:
    """A standard NPY v1.0 header for a 1-D little-endian ``int64`` array.

    Hand-rolled (rather than ``np.lib.format``) so the on-disk bytes do not
    depend on NumPy's presence or version: the header dict text is fixed and
    padded with spaces to the usual 64-byte alignment.
    """
    header = "{'descr': '<i8', 'fortran_order': False, 'shape': (%d,), }" % count
    raw = header.encode("latin1")
    pad = -(len(_NPY_MAGIC) + 2 + len(raw) + 1) % 64
    raw += b" " * pad + b"\n"
    return _NPY_MAGIC + len(raw).to_bytes(2, "little") + raw


def _parse_npy_header(blob: bytes) -> Tuple[int, int]:
    """Return ``(data_offset, count)`` of a v1.0 int64 NPY file, or raise."""
    if blob[: len(_NPY_MAGIC)] != _NPY_MAGIC:
        raise ValueError("not an NPY v1.0 file")
    header_len = int.from_bytes(blob[len(_NPY_MAGIC) : len(_NPY_MAGIC) + 2], "little")
    start = len(_NPY_MAGIC) + 2
    info = ast.literal_eval(blob[start : start + header_len].decode("latin1"))
    if info.get("descr") != "<i8" or info.get("fortran_order"):
        raise ValueError(f"unsupported NPY layout: {info!r}")
    shape = info.get("shape")
    if not (isinstance(shape, tuple) and len(shape) == 1):
        raise ValueError(f"expected a 1-D column, got shape {shape!r}")
    return start + header_len, int(shape[0])


def _load_column(path: Path, total: int):
    """The entry's concatenated column: memory-mapped with NumPy, read into
    an ``array('q')`` otherwise.  Raises on any mismatch."""
    if _np is not None:
        column = _np.load(path, mmap_mode="r")
        if column.dtype != _np.dtype("<i8") or column.ndim != 1 or column.size != total:
            raise ValueError("column file does not match its sidecar")
        return column
    from array import array

    blob = Path(path).read_bytes()
    offset, count = _parse_npy_header(blob)
    if count != total or len(blob) - offset != 8 * total:
        raise ValueError("column file does not match its sidecar")
    column = array("q")
    column.frombytes(blob[offset:])
    if sys.byteorder == "big":  # pragma: no cover - BE hosts
        column.byteswap()
    return column


# ---------------------------------------------------------------------------
# Sidecar header


def _layout_to_dict(layout: WorkloadAddressLayout) -> Dict[str, object]:
    return {
        "workload_index": layout.workload_index,
        "application_code": [layout.application_code.base, layout.application_code.size],
        "os_code": [layout.os_code.base, layout.os_code.size],
        "data": [layout.data.base, layout.data.size],
        "history": [layout.history.base, layout.history.size],
    }


def _layout_from_dict(data: Dict[str, object]) -> WorkloadAddressLayout:
    def window(field: str) -> AddressWindow:
        base, size = data[field]
        return AddressWindow(int(base), int(size))

    return WorkloadAddressLayout(
        workload_index=int(data["workload_index"]),
        application_code=window("application_code"),
        os_code=window("os_code"),
        data=window("data"),
        history=window("history"),
    )


def _sidecar_payload(trace_set: TraceSet) -> Dict[str, object]:
    cores = []
    offset = 0
    for trace in trace_set.traces:
        length = trace.num_accesses
        cores.append(
            {
                "core_id": trace.core_id,
                "offset": offset,
                "length": length,
                "instructions_per_block": trace.instructions_per_block,
                "workload": trace.workload,
                "requests": trace.requests,
                "fingerprint": trace.fingerprint,
            }
        )
        offset += length
    return {
        "format": "repro-trace-set",
        "version": CACHE_FORMAT_VERSION,
        "total": offset,
        "cores": cores,
        "layouts": [_layout_to_dict(layout) for layout in trace_set.layouts],
        "seed": trace_set.seed,
        "name": trace_set.name,
        "workload_of_core": {
            str(core): name for core, name in trace_set.workload_of_core.items()
        },
    }


def _trace_set_from_sidecar(header: Dict[str, object], column) -> TraceSet:
    traces = []
    for core in header["cores"]:
        offset = int(core["offset"])
        length = int(core["length"])
        core_column = column[offset : offset + length]
        fingerprint = core.get("fingerprint")
        # The fingerprint is correctness-load-bearing: the numpy backend
        # keys cross-run precompute memos on it, so a stale digest over
        # damaged bytes would poison runs of the *genuine* trace.  One
        # sha256 pass per core makes size-preserving corruption a miss.
        if fingerprint is not None and column_fingerprint(core_column) != fingerprint:
            raise ValueError("column bytes do not match the sidecar fingerprint")
        traces.append(
            CoreTrace(
                core_id=int(core["core_id"]),
                addresses=core_column,
                instructions_per_block=int(core["instructions_per_block"]),
                workload=str(core["workload"]),
                requests=int(core["requests"]),
                fingerprint=fingerprint,
            )
        )
    return TraceSet(
        traces=traces,
        layouts=tuple(_layout_from_dict(layout) for layout in header["layouts"]),
        seed=int(header["seed"]),
        name=str(header["name"]),
        workload_of_core={
            int(core): str(name) for core, name in header["workload_of_core"].items()
        },
    )


class TraceCache:
    """A bounded directory of binary, mmap-able trace-set entries."""

    def __init__(
        self,
        directory: "str | Path" = DEFAULT_CACHE_DIR,
        max_bytes: Optional[int] = None,
    ) -> None:
        self._directory = Path(directory)
        self._max_bytes = _resolve_max_bytes(max_bytes)
        self.hits = 0
        self.misses = 0
        self.evicted = 0
        self._prune_stale_versions()

    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def max_bytes(self) -> int:
        """Size cap in bytes (0 = unlimited)."""
        return self._max_bytes

    def _column_path(self, key: str) -> Path:
        return self._directory / f"{_VERSION_PREFIX}{key}.npy"

    def _sidecar_path(self, key: str) -> Path:
        return self._directory / f"{_VERSION_PREFIX}{key}.json"

    def _prune_stale_versions(self) -> None:
        """Drop entries written by *older* format versions — this version
        will never request their keys again — including every ``.pkl`` of
        the pickle era.  Entries from newer versions are left alone: a newer
        checkout sharing the directory still needs them, and deleting them
        would make the two checkouts wipe each other's caches on every open.
        Best-effort and concurrency-tolerant, like every other filesystem
        operation here."""
        try:
            entries = list(self._directory.iterdir())
        except OSError:
            return
        for path in entries:
            match = _ENTRY_NAME_RE.match(path.name)
            if match is None:
                continue
            version = int(match.group(1)) if match.group(1) else 0
            if version >= CACHE_FORMAT_VERSION:
                continue
            try:
                path.unlink()
            except OSError:  # already pruned by a sibling worker, or EPERM
                pass

    def _entries_by_age(self) -> List[Tuple[float, int, str]]:
        """Current-version entries as (mtime, total size, key), oldest first.

        The sidecar is the unit of entry existence; its mtime is the LRU
        clock and the column file's size is added to the entry's footprint.
        Column files without a sidecar (a crash or full disk between the
        two publishes, or a half-failed eviction) are listed as entries of
        their own so the size cap sees — and eventually reclaims — their
        bytes; nothing ever loads an orphan, so it ages out first.
        Entries deleted by a concurrent worker mid-listing are skipped.
        """
        entries: List[Tuple[float, int, str]] = []
        seen_keys = set()
        try:
            sidecars = list(self._directory.glob(f"{_VERSION_PREFIX}*.json"))
            columns = list(self._directory.glob(f"{_VERSION_PREFIX}*.npy"))
        except OSError:
            return entries
        for sidecar in sidecars:
            key = sidecar.name[len(_VERSION_PREFIX) : -len(".json")]
            size = 0
            try:
                stat = sidecar.stat()
            except OSError:  # vanished between glob and stat
                continue
            seen_keys.add(key)
            size += stat.st_size
            try:
                size += self._column_path(key).stat().st_size
            except OSError:
                pass
            entries.append((stat.st_mtime, size, key))
        for column in columns:
            key = column.name[len(_VERSION_PREFIX) : -len(".npy")]
            if key in seen_keys:
                continue
            try:
                stat = column.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, key))
        entries.sort()
        return entries

    def _remove_entry(self, key: str) -> bool:
        """Delete one entry (sidecar first, so readers never see a sidecar
        without having had its columns).  True if this process removed it;
        a concurrent worker winning the race counts as already-removed."""
        removed = False
        for path in (self._sidecar_path(key), self._column_path(key)):
            try:
                path.unlink()
                removed = True
            except FileNotFoundError:
                continue
            except OSError:
                continue
        return removed

    def _enforce_cap(self) -> None:
        if not self._max_bytes:
            return
        entries = self._entries_by_age()
        total = sum(size for _mtime, size, _key in entries)
        for _mtime, size, key in entries:
            if total <= self._max_bytes:
                break
            # Whether this worker or a concurrent one deleted the files,
            # the bytes are gone — count them against the total either way.
            if self._remove_entry(key):
                self.evicted += 1
            total -= size

    def load(self, key: str) -> Optional[TraceSet]:
        """Return the cached trace set for ``key``, or None.

        With NumPy the column file is memory-mapped read-only and the
        per-core traces are zero-copy slices: concurrent workers share the
        kernel page cache.  Any inconsistency — missing files, truncation,
        corrupt JSON, mismatched sizes — is a miss, never an error.
        """
        sidecar_path = self._sidecar_path(key)
        column_path = self._column_path(key)
        try:
            header = json.loads(sidecar_path.read_text())
            if (
                not isinstance(header, dict)
                or header.get("format") != "repro-trace-set"
                or header.get("version") != CACHE_FORMAT_VERSION
            ):
                raise ValueError("unrecognized sidecar")
            column = _load_column(column_path, int(header["total"]))
            trace_set = _trace_set_from_sidecar(header, column)
        except (OSError, ValueError, KeyError, TypeError, SyntaxError, ReproError):
            # ReproError covers CoreTrace/TraceSet/AddressWindow validation
            # rejecting a parseable-but-damaged sidecar (e.g. a zeroed
            # instructions_per_block) — a miss like every other corruption.
            self.misses += 1
            return None
        for path in (sidecar_path, column_path):
            try:
                os.utime(path)  # LRU touch: protect hot entries from eviction
            except OSError:
                pass
        self.hits += 1
        return trace_set

    def store(self, key: str, trace_set: TraceSet) -> None:
        """Atomically publish ``trace_set`` under ``key``; best-effort.

        Both files go through write-to-temp + :func:`os.replace`, columns
        before sidecar, so readers only ever observe complete entries and
        concurrent writers of the same key (which produce identical bytes)
        cannot corrupt each other.
        """
        header = _sidecar_payload(trace_set)
        try:
            self._directory.mkdir(parents=True, exist_ok=True)
            self._replace_with_temp(key, self._column_path(key), self._column_blobs(trace_set))
            self._replace_with_temp(
                key,
                self._sidecar_path(key),
                [json.dumps(header, sort_keys=True, separators=(",", ":")).encode()],
            )
        except OSError:
            # A read-only or full filesystem must not fail the experiment.
            return
        self._enforce_cap()

    @staticmethod
    def _column_blobs(trace_set: TraceSet) -> List[bytes]:
        """The NPY file contents as chunks (header, then each core's bytes)."""
        blobs: List[bytes] = [_npy_header(trace_set.total_accesses)]
        for trace in trace_set.traces:
            blobs.append(_column_bytes(trace.array))
        return blobs

    def _replace_with_temp(self, key: str, destination: Path, blobs) -> None:
        fd, tmp_name = tempfile.mkstemp(
            prefix=f"{key}.", suffix=".tmp", dir=self._directory
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                for blob in blobs:
                    handle.write(blob)
            os.replace(tmp_name, destination)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise


__all__ = [
    "TraceCache",
    "trace_cache_key",
    "CACHE_FORMAT_VERSION",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_MAX_BYTES",
    "MAX_BYTES_ENV_VAR",
]
