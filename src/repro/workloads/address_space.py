"""Physical-address-space layout for synthetic workloads.

All addresses handled by the library are *block* addresses: a block address of
``n`` denotes the 64-byte cache block starting at byte address ``n * 64``.
Each workload (and each software stack in a consolidated system) receives a
disjoint window of the block-address space so that instruction footprints of
different workloads never alias, mirroring separate OS images in the paper's
consolidation experiments (Section 5.5).

The layout also reserves a window for the SHIFT history buffer (the ``HBBase``
region of Section 4.2), which is hidden from the "operating system" — i.e. it
is never handed out to workload code or data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import ConfigurationError

#: Default base block address for application code of the first workload.
CODE_REGION_BASE = 0x0010_0000
#: Spacing between the code regions of consecutive workloads (in blocks).
CODE_REGION_SPACING = 0x0100_0000
#: Base block address of the operating-system code shared by a software stack.
OS_REGION_OFFSET = 0x0080_0000
#: Base block address for data regions.
DATA_REGION_BASE = 0x4000_0000
#: Spacing between data regions of consecutive workloads (in blocks).
DATA_REGION_SPACING = 0x0400_0000
#: Base block address reserved for virtualized history buffers (HBBase region).
HISTORY_REGION_BASE = 0x8000_0000
#: Spacing between the history buffers of consecutive workloads (in blocks).
HISTORY_REGION_SPACING = 0x0001_0000


@dataclass(frozen=True)
class AddressWindow:
    """A contiguous, half-open window ``[base, base + size)`` of block addresses."""

    base: int
    size: int

    def __post_init__(self) -> None:
        if self.base < 0 or self.size <= 0:
            raise ConfigurationError(
                "address window must have a non-negative base and positive size"
            )

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, block_address: int) -> bool:
        return self.base <= block_address < self.end

    def overlaps(self, other: "AddressWindow") -> bool:
        return self.base < other.end and other.base < self.end


@dataclass(frozen=True)
class WorkloadAddressLayout:
    """Address-space windows assigned to a single workload instance."""

    workload_index: int
    application_code: AddressWindow
    os_code: AddressWindow
    data: AddressWindow
    history: AddressWindow

    def all_windows(self) -> List[AddressWindow]:
        return [self.application_code, self.os_code, self.data, self.history]


def layout_for_workload(
    workload_index: int,
    application_code_blocks: int,
    os_code_blocks: int,
    data_blocks: int,
    history_blocks: int,
) -> WorkloadAddressLayout:
    """Compute disjoint address windows for workload number ``workload_index``.

    Parameters
    ----------
    workload_index:
        Position of the workload (and its software stack) in the system.  Each
        index receives its own code, data and history windows.
    application_code_blocks / os_code_blocks / data_blocks / history_blocks:
        Number of cache blocks to reserve for each region.
    """
    if workload_index < 0:
        raise ConfigurationError("workload index cannot be negative")
    for name, size in (
        ("application code", application_code_blocks),
        ("OS code", os_code_blocks),
        ("data", data_blocks),
        ("history", history_blocks),
    ):
        if size <= 0:
            raise ConfigurationError(f"{name} region must have a positive number of blocks")
        if size >= CODE_REGION_SPACING:
            raise ConfigurationError(f"{name} region of {size} blocks exceeds its address window")

    code_base = CODE_REGION_BASE + workload_index * CODE_REGION_SPACING
    layout = WorkloadAddressLayout(
        workload_index=workload_index,
        application_code=AddressWindow(code_base, application_code_blocks),
        os_code=AddressWindow(code_base + OS_REGION_OFFSET, os_code_blocks),
        data=AddressWindow(DATA_REGION_BASE + workload_index * DATA_REGION_SPACING, data_blocks),
        history=AddressWindow(
            HISTORY_REGION_BASE + workload_index * HISTORY_REGION_SPACING, history_blocks
        ),
    )
    windows = layout.all_windows()
    for i, first in enumerate(windows):
        for second in windows[i + 1 :]:
            if first.overlaps(second):
                raise ConfigurationError("internal error: workload address windows overlap")
    return layout


class BlockAllocator:
    """Sequential allocator of contiguous block-address ranges inside a window."""

    def __init__(self, window: AddressWindow) -> None:
        self._window = window
        self._next = window.base

    @property
    def window(self) -> AddressWindow:
        return self._window

    @property
    def allocated_blocks(self) -> int:
        return self._next - self._window.base

    @property
    def remaining_blocks(self) -> int:
        return self._window.end - self._next

    def allocate(self, num_blocks: int) -> int:
        """Reserve ``num_blocks`` contiguous blocks and return the base address."""
        if num_blocks <= 0:
            raise ConfigurationError("cannot allocate a non-positive number of blocks")
        if self._next + num_blocks > self._window.end:
            raise ConfigurationError(
                f"address window exhausted: requested {num_blocks} blocks, "
                f"only {self.remaining_blocks} remain"
            )
        base = self._next
        self._next += num_blocks
        return base
