"""Synthetic instruction code bases.

A :class:`SyntheticCodeBase` is a parameterised stand-in for the binary of a
commercial server application: a set of functions, each a short sequence of
straight-line *basic-block runs*, connected by call sites.  The layout of the
functions in the (block) address space is produced by a
:class:`~repro.workloads.address_space.BlockAllocator`, so a function occupies
a contiguous range of cache blocks and different functions occupy disjoint
ranges inside the workload's application-code window.

The design goal is to reproduce the *statistical* properties of server
instruction streams that drive the paper's results rather than any particular
program: multi-megabyte footprints, short sequential runs (a handful of cache
blocks) separated by control-flow discontinuities, and a deep, largely acyclic
call structure.  Call sites carry a *taken probability* so that two executions
of the same function can differ, which is what limits the coverage of any
history-based prefetcher on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Dict, Iterator, List, Sequence, Tuple

from ..errors import ConfigurationError
from .address_space import AddressWindow, BlockAllocator


@dataclass(frozen=True)
class BasicBlockRun:
    """A straight-line run of ``num_blocks`` consecutive instruction blocks."""

    base: int
    num_blocks: int

    def __post_init__(self) -> None:
        if self.base < 0 or self.num_blocks <= 0:
            raise ConfigurationError("basic-block run must have a valid base and positive length")

    @property
    def end(self) -> int:
        return self.base + self.num_blocks

    def blocks(self) -> Iterator[int]:
        """Block addresses of the run, in fetch order."""
        return iter(range(self.base, self.end))


@dataclass(frozen=True)
class CallSite:
    """A call made after run number ``run_index`` of the caller completes.

    ``probability`` is the chance the call is taken on a given execution;
    mandatory calls use 1.0, optional (input-dependent) calls use less.
    """

    run_index: int
    callee: int
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.run_index < 0:
            raise ConfigurationError("call site run index cannot be negative")
        if not (0.0 < self.probability <= 1.0):
            raise ConfigurationError("call probability must be in (0, 1]")


@dataclass(frozen=True)
class Function:
    """A synthetic function: contiguous basic-block runs plus call sites."""

    fid: int
    runs: Tuple[BasicBlockRun, ...]
    call_sites: Tuple[CallSite, ...] = ()

    def __post_init__(self) -> None:
        if not self.runs:
            raise ConfigurationError("a function needs at least one basic-block run")
        for site in self.call_sites:
            if site.run_index >= len(self.runs):
                raise ConfigurationError("call site placed after a run the function does not have")

    @property
    def first_block(self) -> int:
        return self.runs[0].base

    @property
    def num_blocks(self) -> int:
        return sum(run.num_blocks for run in self.runs)

    def calls_after_run(self, run_index: int) -> List[CallSite]:
        return [site for site in self.call_sites if site.run_index == run_index]


@dataclass(frozen=True)
class SyntheticCodeBase:
    """The full set of functions of one synthetic application binary."""

    functions: Tuple[Function, ...]
    window: AddressWindow

    def __post_init__(self) -> None:
        if not self.functions:
            raise ConfigurationError("a code base needs at least one function")

    @property
    def num_functions(self) -> int:
        return len(self.functions)

    @property
    def footprint_blocks(self) -> int:
        return sum(func.num_blocks for func in self.functions)

    def function(self, fid: int) -> Function:
        return self.functions[fid]

    def walk_runs(
        self,
        fid: int,
        rng: Random,
        out: List[Tuple[int, int]],
        max_depth: int,
        _depth: int = 0,
    ) -> None:
        """Emit one execution of function ``fid`` as ``(base, length)`` runs.

        This is the columnar-IR emission path: instead of appending block
        addresses one by one, each straight-line run contributes a single
        ``(base, num_blocks)`` pair, and the caller expands all runs in one
        vectorized pass (:func:`repro.workloads.trace.expand_runs`).  The
        RNG draw sequence — one draw per optional call site, in run order —
        is exactly that of :meth:`walk`, so both paths produce identical
        streams.
        """
        func = self.functions[fid]
        for run_index, run in enumerate(func.runs):
            out.append((run.base, run.num_blocks))
            if _depth >= max_depth:
                continue
            for site in func.calls_after_run(run_index):
                if site.probability >= 1.0 or rng.random() < site.probability:
                    self.walk_runs(site.callee, rng, out, max_depth, _depth + 1)

    def walk(
        self,
        fid: int,
        rng: Random,
        out: List[int],
        max_depth: int,
        _depth: int = 0,
    ) -> None:
        """Emit the fetch stream of one execution of function ``fid``.

        Block addresses are appended to ``out`` in retire order.  Optional
        call sites are decided with ``rng``, which is what makes two
        executions of the same request differ.
        """
        runs: List[Tuple[int, int]] = []
        self.walk_runs(fid, rng, runs, max_depth, _depth)
        for base, length in runs:
            out.extend(range(base, base + length))


@dataclass
class CodeBaseBuilder:
    """Builds a :class:`SyntheticCodeBase` inside an address window.

    Parameters mirror the knobs of :class:`repro.workloads.suite.WorkloadSpec`:

    target_blocks:
        Instruction footprint to lay out (the builder stops once the
        allocator has handed out at least this many blocks).
    mean_run_blocks:
        Mean length of a basic-block run (geometric distribution, min 1).
    max_runs_per_function:
        Functions have between 1 and this many runs.
    call_fanout:
        Mean number of call sites per function (calls target functions with a
        *larger* fid, so the static call graph is acyclic).
    optional_call_fraction / optional_call_probability:
        Fraction of call sites that are optional, and the probability an
        optional site is taken on a given execution.
    """

    allocator: BlockAllocator
    target_blocks: int
    mean_run_blocks: float = 3.0
    max_runs_per_function: int = 3
    call_fanout: float = 1.5
    optional_call_fraction: float = 0.25
    optional_call_probability: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.target_blocks <= 0:
            raise ConfigurationError("code base target footprint must be positive")
        if self.target_blocks > self.allocator.remaining_blocks:
            raise ConfigurationError(
                f"target footprint of {self.target_blocks} blocks does not fit in the "
                f"window ({self.allocator.remaining_blocks} blocks remain)"
            )
        if self.mean_run_blocks < 1.0:
            raise ConfigurationError("mean run length must be at least one block")
        if self.max_runs_per_function < 1:
            raise ConfigurationError("functions need at least one run")
        if not (0.0 <= self.optional_call_fraction <= 1.0):
            raise ConfigurationError("optional call fraction must be in [0, 1]")
        if not (0.0 < self.optional_call_probability <= 1.0):
            raise ConfigurationError("optional call probability must be in (0, 1]")

    def _draw_run_length(self, rng: Random) -> int:
        # Geometric with the requested mean: p = 1 / mean.
        p = 1.0 / self.mean_run_blocks
        length = 1
        while rng.random() > p:
            length += 1
        return length

    def build(self) -> SyntheticCodeBase:
        rng = Random(self.seed)
        window = self.allocator.window

        # Phase 1: lay the functions out contiguously.
        skeletons: List[Tuple[BasicBlockRun, ...]] = []
        laid_out = 0
        while laid_out < self.target_blocks:
            num_runs = rng.randint(1, self.max_runs_per_function)
            runs: List[BasicBlockRun] = []
            for _ in range(num_runs):
                length = min(self._draw_run_length(rng), self.allocator.remaining_blocks)
                if length == 0:
                    break
                base = self.allocator.allocate(length)
                runs.append(BasicBlockRun(base=base, num_blocks=length))
                laid_out += length
            if runs:
                skeletons.append(tuple(runs))
            if self.allocator.remaining_blocks == 0:
                break

        # Phase 2: wire the call graph (forward edges only, so it is acyclic).
        functions: List[Function] = []
        num_functions = len(skeletons)
        for fid, runs in enumerate(skeletons):
            sites: List[CallSite] = []
            if fid + 1 < num_functions:
                num_calls = 0
                while rng.random() < self.call_fanout / (self.call_fanout + 1.0):
                    num_calls += 1
                    if num_calls >= 4:
                        break
                for _ in range(num_calls):
                    callee = rng.randint(fid + 1, num_functions - 1)
                    run_index = rng.randrange(len(runs))
                    probability = 1.0
                    if rng.random() < self.optional_call_fraction:
                        probability = self.optional_call_probability
                    sites.append(
                        CallSite(run_index=run_index, callee=callee, probability=probability)
                    )
            functions.append(Function(fid=fid, runs=runs, call_sites=tuple(sites)))

        return SyntheticCodeBase(functions=tuple(functions), window=window)


def footprint_histogram(codebase: SyntheticCodeBase) -> Dict[int, int]:
    """Histogram of function sizes (blocks), useful for sanity checks."""
    histogram: Dict[int, int] = {}
    for func in codebase.functions:
        histogram[func.num_blocks] = histogram.get(func.num_blocks, 0) + 1
    return histogram


def roots(codebase: SyntheticCodeBase, limit: int | None = None) -> Sequence[int]:
    """Function ids that no other function calls (request entry candidates)."""
    called = {site.callee for func in codebase.functions for site in func.call_sites}
    result = [func.fid for func in codebase.functions if func.fid not in called]
    if not result:
        result = [codebase.functions[0].fid]
    return result[:limit] if limit is not None else result


__all__ = [
    "BasicBlockRun",
    "CallSite",
    "Function",
    "SyntheticCodeBase",
    "CodeBaseBuilder",
    "footprint_histogram",
    "roots",
]
