"""Synthetic server-workload substrate.

The paper evaluates SHIFT on commercial server workloads (TPC-C on DB2 and
Oracle, TPC-H queries, Darwin media streaming, Apache/SPECweb99, Nutch web
search) traced with a full-system simulator.  Neither the workloads nor the
simulator are available, so this package builds the closest synthetic
equivalent: a parameterised model of server software that produces per-core
retire-order instruction-fetch traces with the properties that drive the
paper's results —

* multi-megabyte-class instruction working sets that exceed the L1-I capacity,
* recurring request-level control flow (temporal instruction streams) with
  per-request variation,
* deep call stacks that create frequent discontinuities in the fetch stream,
* cross-core homogeneity (every core serves the same request mix), and
* operating-system noise (traps, interrupts, scheduler invocations).

The public entry points are :class:`repro.workloads.suite.WorkloadSpec`, the
:data:`repro.workloads.suite.WORKLOAD_SUITE` registry of the paper's seven
workloads, and :class:`repro.workloads.generator.WorkloadTraceGenerator`.
"""

from .codebase import BasicBlockRun, CallSite, Function, SyntheticCodeBase, CodeBaseBuilder
from .request import RequestType, RequestTraceFactory
from .osnoise import OSNoiseModel
from .trace import CoreTrace, TraceSet
from .generator import WorkloadTraceGenerator, generate_traces
from .suite import (
    WorkloadSpec,
    WORKLOAD_SUITE,
    WORKLOAD_NAMES,
    workload_by_name,
    scaled_workload,
)
from .consolidation import ConsolidationMix, generate_consolidated_traces
from .datastream import DataStreamGenerator

__all__ = [
    "BasicBlockRun",
    "CallSite",
    "Function",
    "SyntheticCodeBase",
    "CodeBaseBuilder",
    "RequestType",
    "RequestTraceFactory",
    "OSNoiseModel",
    "CoreTrace",
    "TraceSet",
    "WorkloadTraceGenerator",
    "generate_traces",
    "WorkloadSpec",
    "WORKLOAD_SUITE",
    "WORKLOAD_NAMES",
    "workload_by_name",
    "scaled_workload",
    "ConsolidationMix",
    "generate_consolidated_traces",
    "DataStreamGenerator",
]
