"""Request-level control flow.

Server workloads process a stream of requests (transactions, queries, HTTP
requests), and every request of the same *type* executes largely the same
code: that recurrence is what temporal-stream prefetchers like PIF and SHIFT
exploit.  A :class:`RequestType` is a sequence of entry functions of the
synthetic code base — the "phases" of serving the request (parse, look up,
execute, render).  A :class:`RequestTraceFactory` owns a small set of request
types plus a mix distribution and emits the block-granularity fetch stream of
one request at a time.

Per-request variation comes from two sources: optional call sites inside the
code base (decided by the per-core RNG on every execution) and, for a small
fraction of requests, a *mutated* phase order, modelling requests that take an
unusual path through the server.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import List, Sequence, Tuple

from ..errors import ConfigurationError
from .codebase import SyntheticCodeBase, roots


@dataclass(frozen=True)
class RequestType:
    """One kind of request: an ordered tuple of entry functions and a weight."""

    name: str
    entry_functions: Tuple[int, ...]
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.entry_functions:
            raise ConfigurationError("a request type needs at least one entry function")
        if self.weight <= 0.0:
            raise ConfigurationError("request mix weight must be positive")


class RequestTraceFactory:
    """Builds request types over a code base and emits request fetch streams."""

    def __init__(
        self,
        codebase: SyntheticCodeBase,
        num_request_types: int = 4,
        entries_per_request: int = 4,
        max_call_depth: int = 6,
        mutation_probability: float = 0.05,
        seed: int = 0,
    ) -> None:
        if num_request_types < 1:
            raise ConfigurationError("need at least one request type")
        if entries_per_request < 1:
            raise ConfigurationError("requests need at least one entry function")
        if max_call_depth < 0:
            raise ConfigurationError("call depth cannot be negative")
        if not (0.0 <= mutation_probability < 1.0):
            raise ConfigurationError("mutation probability must be in [0, 1)")

        self._codebase = codebase
        self._max_call_depth = max_call_depth
        self._mutation_probability = mutation_probability

        rng = Random(seed)
        entry_pool: Sequence[int] = roots(codebase)
        if len(entry_pool) < entries_per_request:
            # Small code bases may not have enough uncalled roots; fall back to
            # sampling any function as an entry point.
            entry_pool = [func.fid for func in codebase.functions]

        request_types: List[RequestType] = []
        for i in range(num_request_types):
            entries = tuple(
                rng.sample(list(entry_pool), k=min(entries_per_request, len(entry_pool)))
            )
            # Skewed mix: the first request type dominates, like the hot
            # transaction of TPC-C dominates the mix.
            weight = 1.0 / (1.0 + i)
            request_types.append(RequestType(name=f"rq{i}", entry_functions=entries, weight=weight))
        self._request_types: Tuple[RequestType, ...] = tuple(request_types)
        total = sum(rt.weight for rt in self._request_types)
        self._cumulative: List[float] = []
        acc = 0.0
        for rt in self._request_types:
            acc += rt.weight / total
            self._cumulative.append(acc)

    @property
    def codebase(self) -> SyntheticCodeBase:
        return self._codebase

    @property
    def request_types(self) -> Tuple[RequestType, ...]:
        return self._request_types

    def sample_request_type(self, rng: Random) -> RequestType:
        """Draw a request type according to the mix distribution."""
        draw = rng.random()
        for request_type, boundary in zip(self._request_types, self._cumulative, strict=True):
            if draw <= boundary:
                return request_type
        return self._request_types[-1]

    def emit_request_runs(
        self, request_type: RequestType, rng: Random, out: List[Tuple[int, int]]
    ) -> int:
        """Append one execution of ``request_type`` as ``(base, length)`` runs.

        The columnar-IR emission path: same RNG draw order as
        :meth:`emit_request` (one mutation draw, then the walks), but the
        output is a run list the trace generator expands vectorized.
        Returns the number of block addresses the runs cover.
        """
        before = len(out)
        entries: Sequence[int] = request_type.entry_functions
        if self._mutation_probability > 0.0 and rng.random() < self._mutation_probability:
            shuffled = list(entries)
            rng.shuffle(shuffled)
            entries = shuffled
        for fid in entries:
            self._codebase.walk_runs(fid, rng, out, max_depth=self._max_call_depth)
        return sum(length for _base, length in out[before:])

    def emit_request(self, request_type: RequestType, rng: Random, out: List[int]) -> int:
        """Append one execution of ``request_type`` to ``out``.

        Returns the number of block addresses emitted.
        """
        runs: List[Tuple[int, int]] = []
        emitted = self.emit_request_runs(request_type, rng, runs)
        for base, length in runs:
            out.extend(range(base, base + length))
        return emitted


__all__ = ["RequestType", "RequestTraceFactory"]
