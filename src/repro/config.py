"""System configuration for the SHIFT reproduction.

This module encodes Table I of the paper (system and application parameters)
as dataclasses, together with a *scaled* configuration used by default for
pure-Python experiments.  The scaled configuration shrinks the L1-I cache and
the instruction working sets of the synthetic workloads by the same factor, so
that the ratios that drive the paper's results (instruction working set vs.
L1-I capacity, history-buffer reach vs. working set) are preserved while the
simulations complete in seconds rather than hours.

Two entry points are provided:

* :func:`paper_system` — the 16-core Lean-OoO CMP of Table I (32 KB L1-I,
  512 KB LLC per core, 32K-record histories).
* :func:`scaled_system` — the same system shrunk by ``scale`` (default 16).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from . import envvars
from .errors import ConfigurationError

#: Cache block size used throughout the paper (bytes).
BLOCK_SIZE = 64

#: Physical address width assumed by the paper (bits).
PHYSICAL_ADDRESS_BITS = 40

#: Block-address width (40-bit physical addresses, 64-byte blocks).
BLOCK_ADDRESS_BITS = PHYSICAL_ADDRESS_BITS - 6

#: Core clock frequency used for all core types (Hz).
CORE_FREQUENCY_HZ = 2_000_000_000

#: The uncore of Table I is a 16-tile die (4x4 mesh).  Configurations with
#: fewer cores are partially populated dies — their NoC keeps the 16-tile
#: geometry — while more cores require a larger mesh.
MIN_MESH_TILES = 16

#: Smallest LLC slice :func:`scaled_system` will build (a slice below this
#: has too few sets to be a meaningful cache at any associativity).
SCALED_LLC_FLOOR_BYTES = 4 * 1024

#: Environment variable selecting the simulation backend for every driver
#: (``experiments``, ``sweeps``, ``bench``) when ``--backend`` is not given.
#: Backends change only execution strategy, never results: reports are
#: byte-identical across backends (see :mod:`repro.sim.backends`).
#: Declared in :mod:`repro.envvars`; this alias keeps the historical import.
BACKEND_ENV_VAR = envvars.BACKEND.name

#: Backend used when neither an explicit argument nor the environment
#: variable selects one.
DEFAULT_BACKEND = "python"


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of a private cache (L1-I or L1-D)."""

    size_bytes: int
    associativity: int
    block_size: int = BLOCK_SIZE
    load_to_use_cycles: int = 2
    mshrs: int = 32

    def __post_init__(self) -> None:
        _require(self.size_bytes > 0, "cache size must be positive")
        _require(self.associativity > 0, "associativity must be positive")
        _require(self.block_size > 0, "block size must be positive")
        _require(
            self.size_bytes % (self.block_size * self.associativity) == 0,
            "cache size must be a whole number of sets",
        )

    @property
    def num_blocks(self) -> int:
        """Total number of blocks the cache can hold."""
        return self.size_bytes // self.block_size

    @property
    def num_sets(self) -> int:
        """Number of sets in the cache."""
        return self.num_blocks // self.associativity


@dataclass(frozen=True)
class LLCConfig:
    """Shared NUCA last-level cache (called "L2 NUCA" in Table I)."""

    size_bytes_per_core: int = 512 * 1024
    associativity: int = 16
    block_size: int = BLOCK_SIZE
    banks: int = 16
    hit_latency_cycles: int = 5
    mshrs: int = 64

    def __post_init__(self) -> None:
        _require(self.size_bytes_per_core > 0, "LLC slice size must be positive")
        _require(self.banks > 0, "LLC must have at least one bank")

    def total_size_bytes(self, num_cores: int) -> int:
        """Aggregate LLC capacity for ``num_cores`` tiles."""
        return self.size_bytes_per_core * num_cores

    def total_blocks(self, num_cores: int) -> int:
        """Aggregate number of LLC blocks for ``num_cores`` tiles."""
        return self.total_size_bytes(num_cores) // self.block_size


@dataclass(frozen=True)
class InterconnectConfig:
    """2D mesh on-chip network."""

    rows: int = 4
    columns: int = 4
    cycles_per_hop: int = 3

    def __post_init__(self) -> None:
        _require(self.rows > 0 and self.columns > 0, "mesh dimensions must be positive")
        _require(self.cycles_per_hop >= 0, "hop latency cannot be negative")

    @property
    def num_tiles(self) -> int:
        return self.rows * self.columns

    @classmethod
    def for_cores(cls, num_cores: int, cycles_per_hop: int = 3) -> "InterconnectConfig":
        """The most-square mesh covering ``num_cores`` tiles.

        The mesh never shrinks below the 16-tile die of Table I
        (:data:`MIN_MESH_TILES`): fewer cores populate the same uncore.
        Beyond that it prefers an exact near-square factorization
        (32 -> 4x8); for awkward counts (primes) it falls back to the
        smallest near-square mesh with at least ``num_cores`` tiles
        (17 -> 4x5).
        """
        _require(num_cores >= 1, "system needs at least one core")
        tiles = max(num_cores, MIN_MESH_TILES)
        base = math.isqrt(tiles)
        if base * base < tiles:
            base += 1
        for columns in range(base, 2 * base + 1):
            if tiles % columns == 0:
                return cls(
                    rows=tiles // columns, columns=columns, cycles_per_hop=cycles_per_hop
                )
        rows = (tiles + base - 1) // base
        return cls(rows=rows, columns=base, cycles_per_hop=cycles_per_hop)

    def average_hop_count(self) -> float:
        """Average Manhattan distance between two uniformly random tiles."""
        # For an R x C mesh the expected |dx| + |dy| over uniform pairs is
        # (R^2 - 1) / (3 R) + (C^2 - 1) / (3 C).
        rows, cols = self.rows, self.columns
        return (rows * rows - 1) / (3.0 * rows) + (cols * cols - 1) / (3.0 * cols)

    def average_latency_cycles(self) -> float:
        """Average one-way NoC traversal latency in cycles."""
        return self.average_hop_count() * self.cycles_per_hop


@dataclass(frozen=True)
class MemoryConfig:
    """Off-chip main memory."""

    access_latency_ns: float = 45.0
    frequency_hz: int = CORE_FREQUENCY_HZ

    @property
    def access_latency_cycles(self) -> int:
        """Main-memory latency expressed in core cycles."""
        return int(round(self.access_latency_ns * 1e-9 * self.frequency_hz))


@dataclass(frozen=True)
class CoreConfig:
    """A core microarchitecture design point (Table I / Section 2.3).

    The trace-driven timing model does not simulate the out-of-order engine;
    instead, each core type is characterised by a base IPC (throughput when
    the front end never stalls) and a *stall exposure* factor: the fraction of
    an instruction-fetch miss latency that actually stalls retirement.  Wider,
    more aggressive cores overlap slightly more of the front-end stall with
    useful work already in the window, so their exposure is lower.
    """

    name: str
    kind: str  # "fat_ooo" | "lean_ooo" | "lean_io"
    dispatch_width: int
    rob_entries: int
    lsq_entries: int
    area_mm2: float
    base_ipc: float
    stall_exposure: float
    frequency_hz: int = CORE_FREQUENCY_HZ

    def __post_init__(self) -> None:
        _require(
            self.kind in {"fat_ooo", "lean_ooo", "lean_io"}, f"unknown core kind {self.kind!r}"
        )
        _require(self.dispatch_width > 0, "dispatch width must be positive")
        _require(
            0.0 < self.base_ipc <= self.dispatch_width, "base IPC must be in (0, dispatch width]"
        )
        _require(0.0 < self.stall_exposure <= 1.0, "stall exposure must be in (0, 1]")
        _require(self.area_mm2 > 0.0, "core area must be positive")


#: The three core design points evaluated in the paper (areas include L1s,
#: 40 nm technology).
FAT_OOO = CoreConfig(
    name="Fat-OoO (Xeon-class)",
    kind="fat_ooo",
    dispatch_width=4,
    rob_entries=128,
    lsq_entries=32,
    area_mm2=25.0,
    base_ipc=2.0,
    stall_exposure=0.70,
)

LEAN_OOO = CoreConfig(
    name="Lean-OoO (Cortex-A15-class)",
    kind="lean_ooo",
    dispatch_width=3,
    rob_entries=60,
    lsq_entries=16,
    area_mm2=4.5,
    base_ipc=1.5,
    stall_exposure=0.85,
)

LEAN_IO = CoreConfig(
    name="Lean-IO (Cortex-A8-class)",
    kind="lean_io",
    dispatch_width=2,
    rob_entries=0,
    lsq_entries=0,
    area_mm2=1.3,
    base_ipc=1.0,
    stall_exposure=1.00,
)

CORE_TYPES: Dict[str, CoreConfig] = {
    "fat_ooo": FAT_OOO,
    "lean_ooo": LEAN_OOO,
    "lean_io": LEAN_IO,
}


@dataclass(frozen=True)
class SpatialRegionConfig:
    """Spatial-region compaction parameters shared by PIF and SHIFT.

    A spatial region record covers ``region_blocks`` consecutive instruction
    blocks: the trigger block plus ``region_blocks - 1`` neighbours, encoded
    as a bit vector (Section 4.1).
    """

    region_blocks: int = 8

    def __post_init__(self) -> None:
        _require(self.region_blocks >= 2, "a spatial region must cover at least 2 blocks")

    @property
    def bit_vector_bits(self) -> int:
        return self.region_blocks - 1

    @property
    def record_bits(self) -> int:
        """Bits per spatial region record (trigger block address + bit vector)."""
        return (BLOCK_ADDRESS_BITS) + self.bit_vector_bits


@dataclass(frozen=True)
class StreamBufferConfig:
    """Per-core stream address buffer parameters (Section 4.1)."""

    num_streams: int = 4
    capacity_records: int = 12
    lookahead_records: int = 5

    def __post_init__(self) -> None:
        _require(self.num_streams >= 1, "need at least one stream buffer")
        _require(self.capacity_records >= 1, "stream buffer capacity must be positive")
        _require(self.lookahead_records >= 1, "lookahead must be at least one record")


@dataclass(frozen=True)
class PIFConfig:
    """Per-core Proactive Instruction Fetch configuration (Section 5.1)."""

    history_entries: int = 32 * 1024
    index_entries: int = 8 * 1024
    spatial_region: SpatialRegionConfig = field(default_factory=SpatialRegionConfig)
    stream_buffer: StreamBufferConfig = field(default_factory=StreamBufferConfig)

    def __post_init__(self) -> None:
        _require(self.history_entries >= 1, "history buffer needs at least one entry")
        _require(self.index_entries >= 1, "index table needs at least one entry")

    @property
    def history_bits(self) -> int:
        return self.history_entries * self.spatial_region.record_bits

    @property
    def index_entry_bits(self) -> int:
        # Block address tag + pointer into the history buffer.
        pointer_bits = max(1, (self.history_entries - 1).bit_length())
        return BLOCK_ADDRESS_BITS + pointer_bits

    @property
    def index_bits(self) -> int:
        return self.index_entries * self.index_entry_bits

    @property
    def storage_bytes_per_core(self) -> int:
        return (self.history_bits + self.index_bits + 7) // 8


@dataclass(frozen=True)
class SHIFTConfig:
    """Shared History Instruction Fetch configuration (Section 4)."""

    history_entries: int = 32 * 1024
    spatial_region: SpatialRegionConfig = field(default_factory=SpatialRegionConfig)
    stream_buffer: StreamBufferConfig = field(default_factory=StreamBufferConfig)
    virtualized: bool = True
    #: Number of spatial-region records packed into a 64-byte LLC block
    #: (Section 4.2: 41-bit records, 12 per block).
    records_per_llc_block: int = 12
    #: History-buffer pointer width stored per LLC tag.  ``None`` (the
    #: default) derives it from ``history_entries`` (15 bits for the paper's
    #: 32K records, 11 bits for a 2048-entry scaled history); an explicit
    #: width is validated against :meth:`required_pointer_bits`.
    index_pointer_bits: Optional[int] = None
    #: When True the history read latency is ignored (ZeroLat-SHIFT).
    zero_latency_history: bool = False

    def __post_init__(self) -> None:
        _require(self.history_entries >= 1, "history buffer needs at least one entry")
        _require(self.records_per_llc_block >= 1, "need at least one record per LLC block")
        required = self.required_pointer_bits()
        if self.index_pointer_bits is None:
            object.__setattr__(self, "index_pointer_bits", required)
        else:
            _require(self.index_pointer_bits >= 1, "index pointer must have at least one bit")
            _require(
                self.index_pointer_bits >= required,
                f"index_pointer_bits={self.index_pointer_bits} cannot address "
                f"{self.history_entries} history entries (need {required} bits)",
            )

    @property
    def history_llc_blocks(self) -> int:
        """Number of LLC cache lines consumed by the virtualized history buffer."""
        records = self.history_entries
        per_block = self.records_per_llc_block
        return (records + per_block - 1) // per_block

    @property
    def history_llc_bytes(self) -> int:
        return self.history_llc_blocks * BLOCK_SIZE

    @property
    def index_bytes(self) -> int:
        """Bytes of LLC-tag index pointers across the whole history."""
        return (self.history_entries * self.index_pointer_bits + 7) // 8

    @property
    def storage_bytes_total(self) -> int:
        """Aggregate SHIFT storage: virtualized history blocks + tag pointers.

        Shared by all cores; divide by the core count for the per-core cost
        the paper's ~14x reduction claim compares against PIF.
        """
        return self.history_llc_bytes + self.index_bytes

    def required_pointer_bits(self) -> int:
        """Pointer width actually needed to address every history entry."""
        return max(1, (self.history_entries - 1).bit_length())


@dataclass(frozen=True)
class NextLineConfig:
    """Simple next-N-line prefetcher configuration."""

    degree: int = 1

    def __post_init__(self) -> None:
        _require(self.degree >= 1, "next-line degree must be at least 1")


@dataclass(frozen=True)
class SystemConfig:
    """A complete CMP configuration (Table I)."""

    num_cores: int = 16
    core: CoreConfig = LEAN_OOO
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=32 * 1024, associativity=2)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=32 * 1024, associativity=2)
    )
    llc: LLCConfig = field(default_factory=LLCConfig)
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    #: Scale factor relative to the paper configuration (1 = paper scale).
    scale: int = 1

    def __post_init__(self) -> None:
        _require(self.num_cores >= 1, "system needs at least one core")
        _require(
            self.interconnect.num_tiles >= self.num_cores,
            "interconnect must have at least one tile per core",
        )
        _require(self.scale >= 1, "scale factor must be >= 1")

    def with_core(self, core: CoreConfig) -> "SystemConfig":
        """Return a copy of this configuration with a different core type."""
        return replace(self, core=core)

    @property
    def llc_total_blocks(self) -> int:
        return self.llc.total_blocks(self.num_cores)

    def llc_demand_latency_cycles(self) -> float:
        """Average latency of an L1 miss served by the LLC (NoC + bank access)."""
        round_trip_noc = 2.0 * self.interconnect.average_latency_cycles()
        return round_trip_noc + self.llc.hit_latency_cycles

    def memory_demand_latency_cycles(self) -> float:
        """Average latency of an L1 miss served by main memory."""
        return self.llc_demand_latency_cycles() + self.memory.access_latency_cycles


def paper_system(
    core: CoreConfig = LEAN_OOO,
    num_cores: int = 16,
    llc_bytes_per_core: Optional[int] = None,
) -> SystemConfig:
    """The CMP configuration of Table I (16 cores by default), at paper scale.

    The mesh is auto-sized to cover ``num_cores`` tiles and the LLC scales
    one slice per core; ``llc_bytes_per_core`` overrides the 512 KB slice
    (the LLC sensitivity axis of Section 5.4).
    """
    if llc_bytes_per_core is None:
        llc_bytes_per_core = 512 * 1024
    _require(llc_bytes_per_core > 0, "LLC slice size must be positive")
    return SystemConfig(
        num_cores=num_cores,
        core=core,
        llc=LLCConfig(size_bytes_per_core=llc_bytes_per_core),
        interconnect=InterconnectConfig.for_cores(num_cores),
    )


def scaled_system(
    core: CoreConfig = LEAN_OOO,
    num_cores: int = 16,
    scale: int = 16,
    llc_bytes_per_core: Optional[int] = None,
) -> SystemConfig:
    """A shrunken configuration that preserves the paper's capacity ratios.

    The L1 caches and LLC slices shrink by ``scale``; associativities and
    latencies are unchanged, and the mesh is auto-sized to ``num_cores``
    tiles.  ``llc_bytes_per_core`` overrides the *paper-scale* LLC slice
    size before shrinking.  Workload working sets and prefetcher history
    sizes should be shrunk by the same factor (see
    :func:`repro.workloads.suite.scaled_workload` and
    :func:`scaled_shift_config` / :func:`scaled_pif_config`).
    """
    _require(scale >= 1, "scale factor must be >= 1")
    explicit_llc = llc_bytes_per_core is not None
    if llc_bytes_per_core is None:
        llc_bytes_per_core = 512 * 1024
    _require(llc_bytes_per_core > 0, "LLC slice size must be positive")
    l1_bytes = max(1024, (32 * 1024) // scale)
    llc_bytes = max(SCALED_LLC_FLOOR_BYTES, llc_bytes_per_core // scale)
    # An explicit override that the floor would round up must error, not
    # silently produce a system identical to a larger sweep point.
    _require(
        not explicit_llc or llc_bytes_per_core // scale >= SCALED_LLC_FLOOR_BYTES,
        f"LLC slice of {llc_bytes_per_core} bytes shrinks below the "
        f"{SCALED_LLC_FLOOR_BYTES}-byte scaled floor at scale {scale}; "
        f"use at least {SCALED_LLC_FLOOR_BYTES * scale} bytes per core",
    )
    return SystemConfig(
        num_cores=num_cores,
        core=core,
        l1i=CacheConfig(size_bytes=l1_bytes, associativity=2),
        l1d=CacheConfig(size_bytes=l1_bytes, associativity=2),
        llc=LLCConfig(size_bytes_per_core=llc_bytes),
        interconnect=InterconnectConfig.for_cores(num_cores),
        scale=scale,
    )


def paper_pif_config(history_entries: int = 32 * 1024) -> PIFConfig:
    """PIF design point from Section 5.1 (PIF_32K by default)."""
    index_entries = max(64, history_entries // 4)
    return PIFConfig(history_entries=history_entries, index_entries=index_entries)


def paper_shift_config(history_entries: int = 32 * 1024, **kwargs) -> SHIFTConfig:
    """SHIFT design point from Section 4.2 (32K shared records by default)."""
    return SHIFTConfig(history_entries=history_entries, **kwargs)


def scaled_pif_config(scale: int = 16, history_entries: int = 32 * 1024) -> PIFConfig:
    """PIF configuration shrunk by ``scale`` to match :func:`scaled_system`."""
    entries = max(16, history_entries // scale)
    return PIFConfig(history_entries=entries, index_entries=max(16, entries // 4))


def scaled_shift_config(scale: int = 16, history_entries: int = 32 * 1024, **kwargs) -> SHIFTConfig:
    """SHIFT configuration shrunk by ``scale`` to match :func:`scaled_system`."""
    entries = max(16, history_entries // scale)
    return SHIFTConfig(history_entries=entries, **kwargs)


def pif_equal_cost_entries(shift: SHIFTConfig, scale: int = 1) -> Tuple[int, int]:
    """History / index entries of the equal-storage-cost PIF design (PIF_2K).

    The paper's PIF_2K point gives each core 2K history records and 512 index
    entries so that the aggregate 16-core storage matches SHIFT's 240 KB index
    overhead.  We keep the paper's 16:1 ratio between the shared SHIFT history
    and the per-core equal-cost PIF history.

    ``shift`` is the *paper-scale* SHIFT configuration; pass the same
    ``scale`` used for :func:`scaled_system` to shrink the equal-cost point
    together with the rest of the scaled system.
    """
    _require(scale >= 1, "scale factor must be >= 1")
    history = max(4, shift.history_entries // (16 * scale))
    index = max(4, history // 4)
    return history, index
