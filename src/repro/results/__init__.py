"""Content-addressed on-disk cache of simulation results.

Every experiment cell is deterministic in its inputs: the trace set is a
pure function of (workload specs, core count, seed, trace length) — that is
what :func:`~repro.experiments.cells.trace_key_for` digests — and the
simulation on top of it is a pure function of the engine, its history
budget, and the full :class:`~repro.config.SystemConfig`.  A
:class:`SimulationResult` can therefore be cached under a content key and
reused across runs: re-running an experiment or a sweep after changing one
axis value recomputes only the cells whose key changed, and a long-running
service (:mod:`repro.serve`) answers repeated requests from disk instead of
from the simulator.

The key (:func:`result_cache_key`) is the SHA-256 of

* the cell's *trace key* — the generation-input digest the trace cache
  already uses, covering workload specs, core count, seed and trace length;
* the engine name and its history-budget override;
* a digest of the resolved :class:`~repro.config.SystemConfig` (so L1/LLC
  geometry, latencies and scale all invalidate results);
* a *code-version tag* (:data:`SIM_CODE_VERSION`) that must be bumped
  whenever simulation semantics change — the invalidation lever for code,
  as the config digest is for parameters.

The execution *backend* is deliberately excluded: results are byte-identical
across backends (pinned by the parity tests), so a result computed by one
backend is valid for all.

Entries follow the trace-cache v3 discipline exactly: a raw NPY ``int64``
column (per-core counters, then LLC bank-access counts) plus a JSON sidecar
(``r1-<sha256>.npy`` / ``.json``), published via temp file +
:func:`os.replace` (columns before sidecar, so a visible sidecar always has
its column), bounded by an LRU byte cap
(``REPRO_RESULT_CACHE_MAX_BYTES``), pruned of stale format versions on
open, and tolerant of concurrent workers — identical keys produce identical
bytes, and any read problem (truncation, corruption, version skew) is a
miss, never an error.

The cached payload is purely integer counters, and every report metric
(coverage, speedup, MPKI, LLC hit ratios) is derived from those integers
plus the reconstructed system config, so reports built from cached results
are *byte*-identical to cold runs — the invariant CI enforces.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import sys
import tempfile
import threading
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .. import envvars
from ..config import SystemConfig
from ..errors import ConfigurationError
from ..sim.engine import CoreResult, SimulationResult
from ..sim.llc import LLCStats
from ..workloads.trace_cache import _npy_header, _parse_npy_header

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the array('q') paths
    _np = None

#: Bump when the on-disk entry layout changes (key prefix + sidecar format).
RESULT_FORMAT_VERSION = 1

#: Code-version tag folded into every result key.  Bump whenever simulation
#: *semantics* change — an engine fix, a timing-model change, a new counter —
#: so previously cached results can never be served for the new code.  The
#: config digest invalidates parameter changes; this tag invalidates code.
SIM_CODE_VERSION = "sim-v1-pr6"

#: Default cache directory (sibling of ``.trace_cache``).
DEFAULT_RESULT_CACHE_DIR = ".result_cache"

#: Environment variable naming a default cache directory, to switch the
#: CLIs on without the ``--result-cache`` flag (``--no-result-cache`` still
#: wins).  Declared in :mod:`repro.envvars`; alias kept for imports.
RESULT_CACHE_ENV_VAR = envvars.RESULT_CACHE.name

#: Environment variable overriding the size cap (bytes; 0 = unlimited).
#: Declared in :mod:`repro.envvars`; alias kept for imports.
MAX_BYTES_ENV_VAR = envvars.RESULT_CACHE_MAX_BYTES.name

#: Default on-disk budget.  Result entries are a few hundred bytes of
#: counters each, so 64 MB holds ~10^5 cells — months of sweep traffic.
DEFAULT_MAX_BYTES = 64 * 1024 * 1024

#: Filename prefix of current-version entries.
_VERSION_PREFIX = f"r{RESULT_FORMAT_VERSION}-"

#: Every name shape this cache family has ever written.  Pruning must not
#: touch anything else: the directory may be shared with other
#: content-addressed stores (the trace cache uses ``v<N>-`` prefixes).
_ENTRY_NAME_RE = re.compile(r"^r(\d+)-[0-9a-f]{64}\.(?:npy|json)$")

#: CoreResult counter fields, in column order.  Append-only: the sidecar
#: records the list it was written with, and a mismatch is a miss.
_CORE_FIELDS: Tuple[str, ...] = (
    "core_id",
    "accesses",
    "instructions",
    "demand_hits",
    "prefetch_hits",
    "late_hits",
    "misses",
    "prefetches_issued",
    "prefetches_unused",
    "history_block_reads",
    "llc_hits",
    "memory_misses",
)

#: LLCStats scalar fields, in sidecar order (bank_accesses rides the column).
_LLC_FIELDS: Tuple[str, ...] = (
    "total_blocks",
    "num_sets",
    "associativity",
    "banks",
    "pinned_blocks",
    "resident_blocks",
    "demand_hits",
    "demand_misses",
    "prefetch_hits",
    "prefetch_misses",
    "history_reads",
)


def _resolve_max_bytes(max_bytes: Optional[int]) -> int:
    """Effective cap: explicit argument > environment > default."""
    if max_bytes is not None:
        if max_bytes < 0:
            raise ConfigurationError("result cache max_bytes cannot be negative")
        return max_bytes
    raw = envvars.RESULT_CACHE_MAX_BYTES.read()
    if raw is None:
        return DEFAULT_MAX_BYTES
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{MAX_BYTES_ENV_VAR} must be an integer byte count, got {raw!r}"
        ) from None
    if value < 0:
        raise ConfigurationError(f"{MAX_BYTES_ENV_VAR} cannot be negative")
    return value


def system_digest(system: SystemConfig) -> str:
    """Canonical content digest of a resolved system configuration.

    Every field of the (frozen, primitives-only) config tree participates,
    so any geometry or latency change produces a different result key.
    """
    payload = json.dumps(asdict(system), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


#: :class:`~repro.experiments.cells.CellSpec` fields that may legitimately
#: be read by the execution path without participating in the result key.
#: ``backend`` is execution strategy only — results are byte-identical
#: across backends (pinned by the parity tests), so a result computed by
#: one backend is valid for all.  The ``cache-key`` checker of
#: :mod:`repro.analysis` cross-references every cell field the execution
#: path reads against the fields reachable from :func:`result_cache_key`;
#: anything uncovered and not listed here fails the analysis gate.
RESULT_KEY_EXEMPT_CELL_FIELDS = frozenset({"backend"})


def result_cache_key(cell, code_version: str = SIM_CODE_VERSION) -> str:
    """The content key of one cell's :class:`SimulationResult`.

    ``cell`` is a :class:`~repro.experiments.cells.CellSpec`.  The backend
    field is excluded on purpose (results are backend-invariant); everything
    else that can influence the counters is covered by the trace key, the
    engine fields, the chunk geometry, the system digest, or the
    code-version tag.  ``chunk_blocks`` participates even though reports are
    chunking-invariant: the chunking CI checks compare a chunked run against
    a monolithic one, and serving both from one entry would turn that
    equality check into a tautology.
    """
    from ..experiments.cells import system_for_cell, trace_key_for

    payload = {
        "format": RESULT_FORMAT_VERSION,
        "code": code_version,
        "trace": trace_key_for(cell),
        "engine": cell.engine,
        "history_entries": cell.history_entries,
        "chunk_blocks": cell.chunk_blocks,
        "system": system_digest(system_for_cell(cell)),
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    )
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# SimulationResult <-> (sidecar header, int64 column)


def _result_column(result: SimulationResult) -> List[int]:
    """The entry's integer column: per-core counter rows, then LLC banks."""
    column: List[int] = []
    for core in result.cores:
        column.extend(int(getattr(core, field)) for field in _CORE_FIELDS)
    if result.llc is not None:
        column.extend(int(count) for count in result.llc.bank_accesses)
    return column


def _result_header(result: SimulationResult, column_length: int) -> Dict[str, object]:
    llc: Optional[Dict[str, object]] = None
    if result.llc is not None:
        llc = {field: int(getattr(result.llc, field)) for field in _LLC_FIELDS}
        llc["bank_accesses_len"] = len(result.llc.bank_accesses)
    return {
        "format": "repro-simulation-result",
        "version": RESULT_FORMAT_VERSION,
        "prefetcher_name": result.prefetcher_name,
        "storage_bytes_per_core": int(result.storage_bytes_per_core),
        "core_fields": list(_CORE_FIELDS),
        "num_cores": len(result.cores),
        "llc": llc,
        "total": column_length,
    }


def _result_from_entry(header: Dict[str, object], column, system: SystemConfig) -> SimulationResult:
    if list(header["core_fields"]) != list(_CORE_FIELDS):
        raise ValueError("entry was written with a different counter layout")
    num_cores = int(header["num_cores"])
    width = len(_CORE_FIELDS)
    cores: List[CoreResult] = []
    for index in range(num_cores):
        row = column[index * width : (index + 1) * width]
        cores.append(CoreResult(**{f: int(v) for f, v in zip(_CORE_FIELDS, row)}))
    llc_header = header["llc"]
    llc: Optional[LLCStats] = None
    if llc_header is not None:
        banks_len = int(llc_header["bank_accesses_len"])
        offset = num_cores * width
        bank_accesses = [int(v) for v in column[offset : offset + banks_len]]
        if len(bank_accesses) != banks_len:
            raise ValueError("column is shorter than its sidecar claims")
        llc = LLCStats(
            **{f: int(llc_header[f]) for f in _LLC_FIELDS},
            bank_accesses=bank_accesses,
        )
    return SimulationResult(
        prefetcher_name=str(header["prefetcher_name"]),
        system=system,
        cores=cores,
        storage_bytes_per_core=int(header["storage_bytes_per_core"]),
        llc=llc,
    )


def _column_blob(values: List[int]) -> bytes:
    """Little-endian int64 bytes of a python integer list."""
    if _np is not None:
        return _np.asarray(values, dtype="<i8").tobytes()
    from array import array

    column = array("q", values)
    if sys.byteorder == "big":  # pragma: no cover - BE hosts
        column.byteswap()
    return column.tobytes()


def _load_column(path: Path, total: int) -> List[int]:
    """The entry's integer column as plain python ints; raises on mismatch.

    Result columns are tiny (a dozen ints per core), so unlike trace columns
    they are read eagerly, never memory-mapped.
    """
    blob = path.read_bytes()
    offset, count = _parse_npy_header(blob)
    if count != total or len(blob) - offset != 8 * total:
        raise ValueError("column file does not match its sidecar")
    from array import array

    column = array("q")
    column.frombytes(blob[offset:])
    if sys.byteorder == "big":  # pragma: no cover - BE hosts
        column.byteswap()
    return list(column)


class ResultCache:
    """A bounded directory of content-addressed simulation results.

    The same discipline as :class:`~repro.workloads.trace_cache.TraceCache`:
    atomic publication, LRU byte cap, stale-version pruning, and total
    tolerance of concurrent workers and damaged entries (any read problem is
    a miss).  ``hits`` / ``misses`` / ``stored`` / ``evicted`` count this
    process's traffic and feed the report and service statistics.
    """

    def __init__(
        self,
        directory: "str | Path" = DEFAULT_RESULT_CACHE_DIR,
        max_bytes: Optional[int] = None,
        code_version: str = SIM_CODE_VERSION,
    ) -> None:
        self._directory = Path(directory)
        self._max_bytes = _resolve_max_bytes(max_bytes)
        self._code_version = code_version
        #: Guards the traffic counters: one ResultCache is shared by every
        #: job thread of a ``repro.serve`` deployment, and unsynchronized
        #: ``+= 1`` increments lose updates under concurrency.  On-disk
        #: state needs no lock — publication is atomic (temp +
        #: ``os.replace``) and any read problem is a miss by design.
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stored = 0
        self.evicted = 0
        self._prune_stale_versions()

    @property
    def directory(self) -> Path:
        """The cache's root directory (created on first store)."""
        return self._directory

    @property
    def max_bytes(self) -> int:
        """Size cap in bytes (0 = unlimited)."""
        return self._max_bytes

    @property
    def code_version(self) -> str:
        """The simulation-code version tag entries are keyed under."""
        return self._code_version

    def key_for(self, cell) -> str:
        """The result key of a cell under this cache's code-version tag."""
        return result_cache_key(cell, code_version=self._code_version)

    def stats(self) -> Dict[str, int]:
        """This process's cache traffic (the report/service counters)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "stored": self.stored,
                "evicted": self.evicted,
            }

    def usage(self) -> Dict[str, int]:
        """Current on-disk footprint: entry count and total bytes."""
        entries = self._entries_by_age()
        return {
            "entries": len(entries),
            "bytes": sum(size for _mtime, size, _key in entries),
        }

    def _column_path(self, key: str) -> Path:
        return self._directory / f"{_VERSION_PREFIX}{key}.npy"

    def _sidecar_path(self, key: str) -> Path:
        return self._directory / f"{_VERSION_PREFIX}{key}.json"

    def _prune_stale_versions(self) -> None:
        """Drop entries of *older* format versions; leave newer ones alone
        (a newer checkout sharing the directory still needs them)."""
        try:
            entries = list(self._directory.iterdir())
        except OSError:
            return
        for path in entries:
            match = _ENTRY_NAME_RE.match(path.name)
            if match is None or int(match.group(1)) >= RESULT_FORMAT_VERSION:
                continue
            try:
                path.unlink()
            except OSError:  # already pruned by a sibling worker, or EPERM
                pass

    def _entries_by_age(self) -> List[Tuple[float, int, str]]:
        """Current-version entries as (mtime, size, key), oldest first; the
        sidecar is the unit of existence, orphan columns age out first."""
        entries: List[Tuple[float, int, str]] = []
        seen_keys = set()
        try:
            sidecars = list(self._directory.glob(f"{_VERSION_PREFIX}*.json"))
            columns = list(self._directory.glob(f"{_VERSION_PREFIX}*.npy"))
        except OSError:
            return entries
        for sidecar in sidecars:
            key = sidecar.name[len(_VERSION_PREFIX) : -len(".json")]
            try:
                stat = sidecar.stat()
            except OSError:  # vanished between glob and stat
                continue
            seen_keys.add(key)
            size = stat.st_size
            try:
                size += self._column_path(key).stat().st_size
            except OSError:
                pass
            entries.append((stat.st_mtime, size, key))
        for column in columns:
            key = column.name[len(_VERSION_PREFIX) : -len(".npy")]
            if key in seen_keys:
                continue
            try:
                stat = column.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, key))
        entries.sort()
        return entries

    def _remove_entry(self, key: str) -> bool:
        """Delete one entry, sidecar first; concurrent deletion is fine."""
        removed = False
        for path in (self._sidecar_path(key), self._column_path(key)):
            try:
                path.unlink()
                removed = True
            except OSError:
                continue
        return removed

    def _enforce_cap(self) -> None:
        if not self._max_bytes:
            return
        entries = self._entries_by_age()
        total = sum(size for _mtime, size, _key in entries)
        for _mtime, size, key in entries:
            if total <= self._max_bytes:
                break
            if self._remove_entry(key):
                with self._lock:
                    self.evicted += 1
            total -= size

    def load(self, key: str, system: SystemConfig) -> Optional[SimulationResult]:
        """The cached result for ``key``, rebuilt against ``system``.

        The system config is *not* stored — it is a pure function of the
        cell, and its digest is part of the key, so the caller-resolved
        config is by construction the one the result was computed against.
        Any inconsistency on disk is a miss, never an error.
        """
        sidecar_path = self._sidecar_path(key)
        column_path = self._column_path(key)
        try:
            header = json.loads(sidecar_path.read_text())
            if (
                not isinstance(header, dict)
                or header.get("format") != "repro-simulation-result"
                or header.get("version") != RESULT_FORMAT_VERSION
            ):
                raise ValueError("unrecognized sidecar")
            column = _load_column(column_path, int(header["total"]))
            result = _result_from_entry(header, column, system)
        except (OSError, ValueError, KeyError, TypeError, SyntaxError):
            with self._lock:
                self.misses += 1
            return None
        for path in (sidecar_path, column_path):
            try:
                os.utime(path)  # LRU touch: protect hot entries from eviction
            except OSError:
                pass
        with self._lock:
            self.hits += 1
        return result

    def store(self, key: str, result: SimulationResult) -> None:
        """Atomically publish ``result`` under ``key``; best-effort."""
        column = _result_column(result)
        header = _result_header(result, len(column))
        try:
            self._directory.mkdir(parents=True, exist_ok=True)
            self._replace_with_temp(
                key,
                self._column_path(key),
                _npy_header(len(column)) + _column_blob(column),
            )
            self._replace_with_temp(
                key,
                self._sidecar_path(key),
                json.dumps(header, sort_keys=True, separators=(",", ":")).encode(),
            )
        except OSError:
            # A read-only or full filesystem must not fail the experiment.
            return
        with self._lock:
            self.stored += 1
        self._enforce_cap()

    def _replace_with_temp(self, key: str, destination: Path, blob: bytes) -> None:
        fd, tmp_name = tempfile.mkstemp(
            prefix=f"{key}.", suffix=".tmp", dir=self._directory
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_name, destination)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise


def as_result_cache(cache: "ResultCache | str | Path | None") -> Optional[ResultCache]:
    """Normalize the ``result_cache=`` argument the drivers accept."""
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def resolve_result_cache_dir(
    explicit: "str | Path | None" = None,
    disabled: bool = False,
    default: "str | None" = None,
) -> Optional[str]:
    """CLI/service resolution: flag > environment > caller default.

    ``disabled`` (the ``--no-result-cache`` flag) wins over everything.
    """
    if disabled:
        return None
    if explicit is not None:
        return str(explicit)
    env = envvars.RESULT_CACHE.read()
    if env:
        return env
    return default


__all__ = [
    "ResultCache",
    "as_result_cache",
    "resolve_result_cache_dir",
    "result_cache_key",
    "system_digest",
    "RESULT_FORMAT_VERSION",
    "SIM_CODE_VERSION",
    "DEFAULT_RESULT_CACHE_DIR",
    "RESULT_CACHE_ENV_VAR",
    "MAX_BYTES_ENV_VAR",
    "DEFAULT_MAX_BYTES",
]
