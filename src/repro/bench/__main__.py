"""Command-line driver: ``python -m repro.bench [--quick] [--check-against]``."""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..cli import add_options, envvar_epilog
from . import (
    BENCHMARK_NAMES,
    DEFAULT_REGRESSION_TOLERANCE,
    bench_experiment,
    bench_hotloop,
    check_against,
    write_bench_json,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark the optimized simulation against the frozen "
        "PR-1 engine (and the numpy backend against the python one), record "
        "BENCH_*.json trajectory files, and optionally gate against a "
        "committed baseline.  With --trace-cache the experiment benchmark "
        "additionally times a warm-cache pass.  The hotloop benchmark's "
        "trace_scale section measures chunked streaming (--chunk-blocks) "
        "peak memory against a monolithic run.",
        epilog=envvar_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    add_options(parser, "seed", "trace-cache")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized smoke run: 2 workloads, short traces, single repeat",
    )
    parser.add_argument(
        "--benchmarks",
        default=",".join(BENCHMARK_NAMES),
        help=f"comma-separated subset of: {', '.join(BENCHMARK_NAMES)}",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats (best-of); default 1/3"
    )
    parser.add_argument("--out", default=".", metavar="DIR", help="output directory")
    parser.add_argument(
        "--check-against",
        default=None,
        metavar="PATH",
        help="bench-regression gate: fail if the fresh hotloop speedup "
        "ratios drop more than the tolerance below this committed baseline "
        "(e.g. BENCH_hotloop.json)",
    )
    parser.add_argument(
        "--regression-tolerance",
        type=float,
        default=DEFAULT_REGRESSION_TOLERANCE,
        help="relative speedup-ratio headroom for --check-against "
        f"(default: {DEFAULT_REGRESSION_TOLERANCE})",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    selected = [name.strip() for name in args.benchmarks.split(",") if name.strip()]
    unknown = [name for name in selected if name not in BENCHMARK_NAMES]
    if unknown:
        print(f"error: unknown benchmarks {unknown}; known: {BENCHMARK_NAMES}", file=sys.stderr)
        return 2
    if args.check_against and "hotloop" not in selected:
        print("error: --check-against needs the hotloop benchmark selected", file=sys.stderr)
        return 2
    baseline = None
    if args.check_against:
        # Read the baseline before any (multi-minute) timing runs so a bad
        # path or corrupt file fails fast with the CLI's error contract.
        try:
            baseline = json.loads(Path(args.check_against).read_text())
        except OSError as error:
            print(f"error: cannot read baseline {args.check_against}: {error}", file=sys.stderr)
            return 2
        except json.JSONDecodeError as error:
            print(
                f"error: baseline {args.check_against} is not valid JSON: {error}",
                file=sys.stderr,
            )
            return 2
    status = 0
    for name in selected:
        if name == "experiment":
            result = bench_experiment(
                quick=args.quick,
                seed=args.seed,
                repeats=args.repeats or 1,
                trace_cache=args.trace_cache,
            )
            headline = (
                f"experiment: {result['baseline']['seconds']}s legacy -> "
                f"{result['optimized']['seconds']}s optimized "
                f"({result['speedup']}x), results_match={result['results_match']}"
            )
            if not result["results_match"] or not result["paper_ordering_holds"]:
                status = 1
        else:
            result = bench_hotloop(quick=args.quick, seed=args.seed, repeats=args.repeats or 3)
            per_engine = ", ".join(
                f"{engine}={data['speedup']}x" for engine, data in result["engines"].items()
            )
            headline = f"hotloop: total {result['total_speedup']}x ({per_engine})"
            backend = result.get("backend", {})
            if backend.get("numpy_available"):
                per_backend = ", ".join(
                    f"{engine}={data.get('numpy_speedup', '-')}x"
                    for engine, data in result["engines"].items()
                )
                headline += (
                    f"\n  numpy backend: total {backend['total_numpy_speedup']}x "
                    f"({per_backend}), backends_match={backend['backends_match']}"
                )
                if not backend["backends_match"]:
                    status = 1
            generation = result.get("trace_generation")
            if generation:
                headline += (
                    f"\n  trace generation: {generation['cold_seconds']}s cold -> "
                    f"{generation['warm_seconds']}s warm mmap loads "
                    f"({generation['warm_speedup']}x; pickle-vs-binary load "
                    f"{generation['old_vs_new_load_ratio']}x)"
                )
            if baseline is not None:
                violations = check_against(
                    result, baseline, tolerance=args.regression_tolerance
                )
                if violations:
                    status = 1
                    print("bench-regression gate FAILED:", file=sys.stderr)
                    for violation in violations:
                        print(f"  - {violation}", file=sys.stderr)
                else:
                    print(
                        f"bench-regression gate passed vs {args.check_against} "
                        f"(tolerance {args.regression_tolerance:.0%})"
                    )
        path = write_bench_json(result, args.out)
        print(headline)
        print(f"  -> {path}")
    return status


if __name__ == "__main__":
    sys.exit(main())
