"""Command-line driver: ``python -m repro.bench [--quick]``."""

from __future__ import annotations

import argparse
import sys

from . import BENCHMARK_NAMES, bench_experiment, bench_hotloop, write_bench_json


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark the optimized simulation against the frozen "
        "PR-1 engine and record BENCH_*.json trajectory files.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized smoke run: 2 workloads, short traces, single repeat",
    )
    parser.add_argument(
        "--benchmarks",
        default=",".join(BENCHMARK_NAMES),
        help=f"comma-separated subset of: {', '.join(BENCHMARK_NAMES)}",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats (best-of); default 1/3"
    )
    parser.add_argument("--out", default=".", metavar="DIR", help="output directory")
    parser.add_argument(
        "--trace-cache",
        default=None,
        metavar="DIR",
        help="also time the experiment with a warm on-disk trace cache",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    selected = [name.strip() for name in args.benchmarks.split(",") if name.strip()]
    unknown = [name for name in selected if name not in BENCHMARK_NAMES]
    if unknown:
        print(f"error: unknown benchmarks {unknown}; known: {BENCHMARK_NAMES}", file=sys.stderr)
        return 2
    status = 0
    for name in selected:
        if name == "experiment":
            result = bench_experiment(
                quick=args.quick,
                seed=args.seed,
                repeats=args.repeats or 1,
                trace_cache=args.trace_cache,
            )
            headline = (
                f"experiment: {result['baseline']['seconds']}s legacy -> "
                f"{result['optimized']['seconds']}s optimized "
                f"({result['speedup']}x), results_match={result['results_match']}"
            )
            if not result["results_match"] or not result["paper_ordering_holds"]:
                status = 1
        else:
            result = bench_hotloop(quick=args.quick, seed=args.seed, repeats=args.repeats or 3)
            per_engine = ", ".join(
                f"{engine}={data['speedup']}x" for engine, data in result["engines"].items()
            )
            headline = f"hotloop: total {result['total_speedup']}x ({per_engine})"
        path = write_bench_json(result, args.out)
        print(headline)
        print(f"  -> {path}")
    return status


if __name__ == "__main__":
    sys.exit(main())
