"""Micro-benchmark harness: optimized hot loops vs. the frozen PR-1 engine.

Two benchmarks, each emitting one ``BENCH_*.json`` file so performance
becomes part of the repo's recorded trajectory:

* ``experiment`` — wall clock of the default ``--system scaled --check``
  experiment, serial, on the frozen PR-1 implementation
  (:mod:`repro.sim._legacy`) versus the optimized cell-based driver, plus a
  warm-trace-cache run.  The JSON records the speedups and asserts the two
  implementations produced identical reports and that the paper ordering
  holds.
* ``hotloop`` — per-engine simulation time (none / next-line / PIF / SHIFT)
  on a single workload trace, legacy versus optimized, isolating the
  :mod:`repro.sim._fastpath` gains from trace generation and driver
  overhead.

Run with ``python -m repro.bench --quick`` for a CI-sized smoke version.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..config import scaled_pif_config, scaled_shift_config
from ..experiments import (
    DEFAULT_ENGINES,
    ExperimentReport,
    ExperimentRow,
    run_experiment,
)
from ..experiments import _outcome_for  # shared so reports are comparable
from ..experiments.cells import system_for
from ..sim import _legacy
from ..workloads.generator import generate_traces
from ..workloads.suite import WORKLOAD_NAMES, scaled_workload, workload_by_name

#: Workload subset used by ``--quick`` (OLTP and web: the two extremes).
QUICK_WORKLOADS = ("oltp_db2", "web_search")

#: Trace length per core for ``--quick`` (scaled default is 7500).
QUICK_BLOCKS = 3000

BENCHMARK_NAMES = ("experiment", "hotloop")


def _legacy_experiment(
    workloads: Sequence[str],
    system: str = "scaled",
    scale: int = 16,
    seed: int = 0,
    blocks_per_core: Optional[int] = None,
) -> ExperimentReport:
    """The PR-1 serial experiment: shared trace per workload, legacy loops."""
    sys_config = system_for(system, scale)
    effective_scale = sys_config.scale
    pif_config = scaled_pif_config(effective_scale)
    shift_config = scaled_shift_config(effective_scale)
    report = ExperimentReport(system_name=system)
    for name in workloads:
        spec = scaled_workload(workload_by_name(name), effective_scale)
        trace_set = generate_traces(spec, sys_config, seed=seed, blocks_per_core=blocks_per_core)
        results = {}
        for engine in DEFAULT_ENGINES:
            kwargs = (
                {"pif_config": pif_config}
                if engine == "pif"
                else {"shift_config": shift_config}
                if engine == "shift"
                else {}
            )
            results[engine] = _legacy.legacy_simulate(trace_set, sys_config, engine, **kwargs)
        baseline = results["none"]
        row = ExperimentRow(
            workload=name,
            baseline_mpki=baseline.mpki,
            baseline_miss_ratio=baseline.miss_ratio,
        )
        for engine, result in results.items():
            if engine == "none":
                continue
            row.outcomes[engine] = _outcome_for(engine, result, baseline, sys_config)
        report.rows.append(row)
    return report


def _llc_independent_rows(report: ExperimentReport) -> List[Dict[str, object]]:
    """Rows projected onto the metrics the frozen PR-1 engine can produce.

    The PR-1 reference predates the shared-LLC model, so speedups (which now
    charge classified memory misses and real history reads) and the LLC /
    storage fields are not comparable; the miss-level counters — coverage,
    MPKI, accuracy — must still match exactly.
    """
    return [
        {
            "workload": row.workload,
            "baseline_mpki": row.baseline_mpki,
            "baseline_miss_ratio": row.baseline_miss_ratio,
            "outcomes": {
                name: {
                    "coverage": outcome.coverage,
                    "mpki": outcome.mpki,
                    "prefetch_accuracy": outcome.prefetch_accuracy,
                }
                for name, outcome in row.outcomes.items()
            },
        }
        for row in report.rows
    ]


def bench_experiment(
    quick: bool = False,
    seed: int = 0,
    repeats: int = 1,
    trace_cache: "str | Path | None" = None,
) -> Dict[str, object]:
    """Time the default scaled experiment: PR-1 legacy vs. optimized."""
    workloads = list(QUICK_WORKLOADS if quick else WORKLOAD_NAMES)
    blocks = QUICK_BLOCKS if quick else None

    legacy_seconds = []
    legacy_report: Optional[ExperimentReport] = None
    for _ in range(repeats):
        started = time.perf_counter()
        legacy_report = _legacy_experiment(workloads, seed=seed, blocks_per_core=blocks)
        legacy_seconds.append(time.perf_counter() - started)

    # The in-process trace memo would otherwise carry traces between
    # repeats (and masquerade as the disk cache), so clear it before every
    # timed run: each optimized repeat regenerates traces exactly like the
    # legacy baseline, and the warm-cache variant really reads from disk.
    from ..experiments import cells as _cells

    optimized_seconds = []
    optimized_report: Optional[ExperimentReport] = None
    for _ in range(repeats):
        _cells._TRACE_MEMO.clear()
        started = time.perf_counter()
        optimized_report = run_experiment(
            workloads=workloads, seed=seed, blocks_per_core=blocks
        )
        optimized_seconds.append(time.perf_counter() - started)

    cached_seconds: List[float] = []
    if trace_cache is not None:
        # Populate, then time the warm-cache run (the steady state of
        # sweeps and repeated --check invocations).
        run_experiment(
            workloads=workloads, seed=seed, blocks_per_core=blocks, trace_cache=trace_cache
        )
        for _ in range(repeats):
            _cells._TRACE_MEMO.clear()
            started = time.perf_counter()
            run_experiment(
                workloads=workloads,
                seed=seed,
                blocks_per_core=blocks,
                trace_cache=trace_cache,
            )
            cached_seconds.append(time.perf_counter() - started)

    assert legacy_report is not None and optimized_report is not None
    legacy_rows = _llc_independent_rows(legacy_report)
    optimized_rows = _llc_independent_rows(optimized_report)
    best_legacy = min(legacy_seconds)
    best_optimized = min(optimized_seconds)
    result: Dict[str, object] = {
        "benchmark": "experiment",
        "description": "default `python -m repro.experiments --system scaled --check` "
        "workload, serial: frozen PR-1 engine vs optimized cell driver",
        "config": {
            "workloads": workloads,
            "seed": seed,
            "blocks_per_core": blocks,
            "quick": quick,
            "repeats": repeats,
        },
        "baseline": {"name": "pr1-serial-legacy", "seconds": round(best_legacy, 4)},
        "optimized": {"name": "cell-driver-fastpath", "seconds": round(best_optimized, 4)},
        "speedup": round(best_legacy / best_optimized, 3),
        # Miss-level counters (coverage/MPKI/accuracy) must be identical;
        # the optimized driver additionally models the shared LLC, which
        # the frozen PR-1 engine cannot, so timing fields are not compared.
        "results_match": legacy_rows == optimized_rows,
        "compared_fields": ["coverage", "mpki", "prefetch_accuracy"],
        "paper_ordering_holds": not optimized_report.check_paper_ordering(),
    }
    if cached_seconds:
        best_cached = min(cached_seconds)
        result["optimized_trace_cache"] = {
            "name": "cell-driver-fastpath+trace-cache",
            "seconds": round(best_cached, 4),
        }
        result["speedup_trace_cache"] = round(best_legacy / best_cached, 3)
    return result


def bench_hotloop(
    quick: bool = False, seed: int = 0, repeats: int = 3, workload: str = "oltp_db2"
) -> Dict[str, object]:
    """Per-engine simulation time on one trace: legacy vs. optimized loops."""
    sys_config = system_for("scaled", 16)
    spec = scaled_workload(workload_by_name(workload), sys_config.scale)
    blocks = QUICK_BLOCKS if quick else None
    trace_set = generate_traces(spec, sys_config, seed=seed, blocks_per_core=blocks)
    if quick:
        repeats = 1
    pif_config = scaled_pif_config(sys_config.scale)
    shift_config = scaled_shift_config(sys_config.scale)
    engine_kwargs = {
        "none": {},
        "next_line": {},
        "pif": {"pif_config": pif_config},
        "shift": {"shift_config": shift_config},
    }
    engines: Dict[str, object] = {}
    total_legacy = 0.0
    total_optimized = 0.0
    from functools import partial

    from ..sim import simulate

    for engine, kwargs in engine_kwargs.items():
        legacy_best = min(
            _timed(partial(_legacy.legacy_simulate, trace_set, sys_config, engine, **kwargs))
            for _ in range(repeats)
        )
        optimized_best = min(
            _timed(partial(simulate, trace_set, sys_config, engine, **kwargs))
            for _ in range(repeats)
        )
        total_legacy += legacy_best
        total_optimized += optimized_best
        engines[engine] = {
            "legacy_seconds": round(legacy_best, 4),
            "optimized_seconds": round(optimized_best, 4),
            "speedup": round(legacy_best / optimized_best, 3),
        }
    return {
        "benchmark": "hotloop",
        "description": "per-engine simulation of one workload trace: frozen PR-1 "
        "loops vs repro.sim._fastpath (which additionally models the shared LLC)",
        "config": {
            "workload": workload,
            "seed": seed,
            "blocks_per_core": blocks,
            "accesses": trace_set.total_accesses,
            "quick": quick,
            "repeats": repeats,
        },
        "engines": engines,
        "total_speedup": round(total_legacy / total_optimized, 3),
    }


def _timed(thunk) -> float:
    started = time.perf_counter()
    thunk()
    return time.perf_counter() - started


def write_bench_json(result: Dict[str, object], out_dir: "str | Path" = ".") -> Path:
    """Write one benchmark result to ``BENCH_<name>.json`` in ``out_dir``."""
    payload = dict(result)
    payload["created"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    payload["python"] = platform.python_version()
    Path(out_dir).mkdir(parents=True, exist_ok=True)
    path = Path(out_dir) / f"BENCH_{result['benchmark']}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


__all__ = [
    "BENCHMARK_NAMES",
    "QUICK_WORKLOADS",
    "QUICK_BLOCKS",
    "bench_experiment",
    "bench_hotloop",
    "write_bench_json",
]
