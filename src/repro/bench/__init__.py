"""Micro-benchmark harness: optimized hot loops vs. the frozen PR-1 engine.

Two benchmarks, each emitting one ``BENCH_*.json`` file so performance
becomes part of the repo's recorded trajectory:

* ``experiment`` — wall clock of the default ``--system scaled --check``
  experiment, serial, on the frozen PR-1 implementation
  (:mod:`repro.sim._legacy`) versus the optimized cell-based driver, plus a
  warm-trace-cache run.  The JSON records the speedups and asserts the two
  implementations produced identical reports and that the paper ordering
  holds.
* ``hotloop`` — per-engine simulation time (none / next-line / PIF / SHIFT)
  on a single workload trace: legacy versus optimized Python loops, and
  ``python`` versus ``numpy`` backend (warm-cache, best-of-repeats),
  isolating the :mod:`repro.sim._fastpath` / :mod:`repro.sim.backends`
  gains from trace generation and driver overhead.  The result also
  carries a ``trace_generation`` section (cold vectorized generation vs
  warm memory-mapped cache loads per suite entry, plus the v2-pickle
  old-vs-new load ratio), so trace production is part of the same
  regression wall as replay, and a ``trace_scale`` section (peak chunked
  simulation memory on 10x vs 100x traces plus exact chunked-vs-monolithic
  report equality), so the out-of-core chunked-streaming bound of
  ARCHITECTURE.md is part of it too.

:func:`check_against` is the CI bench-regression gate: it compares a fresh
hotloop run's *speedup ratios* against the committed ``BENCH_hotloop.json``
and fails on a >15% relative drop (ratios, unlike seconds, transfer across
machines).  Run with ``python -m repro.bench --quick`` for a CI-sized
smoke version, or ``--check-against BENCH_hotloop.json`` for the gate.
"""

# repro: allow-file[determinism] timing harness: perf_counter/strftime feed
# only the measurement fields of BENCH_*.json, never simulation results
from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..config import scaled_pif_config, scaled_shift_config
from ..experiments import (
    DEFAULT_ENGINES,
    ExperimentReport,
    ExperimentRow,
    run_experiment,
)
from ..experiments import _outcome_for  # shared so reports are comparable
from ..experiments.cells import system_for
from ..sim import _legacy
from ..workloads.generator import generate_traces
from ..workloads.suite import WORKLOAD_NAMES, scaled_workload, workload_by_name

#: Workload subset used by ``--quick`` (OLTP and web: the two extremes).
QUICK_WORKLOADS = ("oltp_db2", "web_search")

#: Trace length per core for ``--quick`` (scaled default is 7500).
QUICK_BLOCKS = 3000

BENCHMARK_NAMES = ("experiment", "hotloop")


def _legacy_experiment(
    workloads: Sequence[str],
    system: str = "scaled",
    scale: int = 16,
    seed: int = 0,
    blocks_per_core: Optional[int] = None,
) -> ExperimentReport:
    """The PR-1 serial experiment: shared trace per workload, legacy loops."""
    sys_config = system_for(system, scale)
    effective_scale = sys_config.scale
    pif_config = scaled_pif_config(effective_scale)
    shift_config = scaled_shift_config(effective_scale)
    report = ExperimentReport(system_name=system)
    for name in workloads:
        spec = scaled_workload(workload_by_name(name), effective_scale)
        trace_set = generate_traces(spec, sys_config, seed=seed, blocks_per_core=blocks_per_core)
        results = {}
        for engine in DEFAULT_ENGINES:
            kwargs = (
                {"pif_config": pif_config}
                if engine == "pif"
                else {"shift_config": shift_config}
                if engine == "shift"
                else {}
            )
            results[engine] = _legacy.legacy_simulate(trace_set, sys_config, engine, **kwargs)
        baseline = results["none"]
        row = ExperimentRow(
            workload=name,
            baseline_mpki=baseline.mpki,
            baseline_miss_ratio=baseline.miss_ratio,
        )
        for engine, result in results.items():
            if engine == "none":
                continue
            row.outcomes[engine] = _outcome_for(engine, result, baseline, sys_config)
        report.rows.append(row)
    return report


def _llc_independent_rows(report: ExperimentReport) -> List[Dict[str, object]]:
    """Rows projected onto the metrics the frozen PR-1 engine can produce.

    The PR-1 reference predates the shared-LLC model, so speedups (which now
    charge classified memory misses and real history reads) and the LLC /
    storage fields are not comparable; the miss-level counters — coverage,
    MPKI, accuracy — must still match exactly.
    """
    return [
        {
            "workload": row.workload,
            "baseline_mpki": row.baseline_mpki,
            "baseline_miss_ratio": row.baseline_miss_ratio,
            "outcomes": {
                name: {
                    "coverage": outcome.coverage,
                    "mpki": outcome.mpki,
                    "prefetch_accuracy": outcome.prefetch_accuracy,
                }
                for name, outcome in row.outcomes.items()
            },
        }
        for row in report.rows
    ]


def bench_experiment(
    quick: bool = False,
    seed: int = 0,
    repeats: int = 1,
    trace_cache: "str | Path | None" = None,
) -> Dict[str, object]:
    """Time the default scaled experiment: PR-1 legacy vs. optimized."""
    workloads = list(QUICK_WORKLOADS if quick else WORKLOAD_NAMES)
    blocks = QUICK_BLOCKS if quick else None

    legacy_seconds = []
    legacy_report: Optional[ExperimentReport] = None
    for _ in range(repeats):
        started = time.perf_counter()
        legacy_report = _legacy_experiment(workloads, seed=seed, blocks_per_core=blocks)
        legacy_seconds.append(time.perf_counter() - started)

    # The in-process trace memo would otherwise carry traces between
    # repeats (and masquerade as the disk cache), so clear it before every
    # timed run: each optimized repeat regenerates traces exactly like the
    # legacy baseline, and the warm-cache variant really reads from disk.
    from ..experiments import cells as _cells

    optimized_seconds = []
    optimized_report: Optional[ExperimentReport] = None
    for _ in range(repeats):
        _cells._TRACE_MEMO.clear()
        started = time.perf_counter()
        optimized_report = run_experiment(
            workloads=workloads, seed=seed, blocks_per_core=blocks
        )
        optimized_seconds.append(time.perf_counter() - started)

    cached_seconds: List[float] = []
    if trace_cache is not None:
        # Populate, then time the warm-cache run (the steady state of
        # sweeps and repeated --check invocations).
        run_experiment(
            workloads=workloads, seed=seed, blocks_per_core=blocks, trace_cache=trace_cache
        )
        for _ in range(repeats):
            _cells._TRACE_MEMO.clear()
            started = time.perf_counter()
            run_experiment(
                workloads=workloads,
                seed=seed,
                blocks_per_core=blocks,
                trace_cache=trace_cache,
            )
            cached_seconds.append(time.perf_counter() - started)

    assert legacy_report is not None and optimized_report is not None
    legacy_rows = _llc_independent_rows(legacy_report)
    optimized_rows = _llc_independent_rows(optimized_report)
    best_legacy = min(legacy_seconds)
    best_optimized = min(optimized_seconds)
    result: Dict[str, object] = {
        "benchmark": "experiment",
        "description": "default `python -m repro.experiments --system scaled --check` "
        "workload, serial: frozen PR-1 engine vs optimized cell driver",
        "config": {
            "workloads": workloads,
            "seed": seed,
            "blocks_per_core": blocks,
            "quick": quick,
            "repeats": repeats,
        },
        "baseline": {"name": "pr1-serial-legacy", "seconds": round(best_legacy, 4)},
        "optimized": {"name": "cell-driver-fastpath", "seconds": round(best_optimized, 4)},
        "speedup": round(best_legacy / best_optimized, 3),
        # Miss-level counters (coverage/MPKI/accuracy) must be identical;
        # the optimized driver additionally models the shared LLC, which
        # the frozen PR-1 engine cannot, so timing fields are not compared.
        "results_match": legacy_rows == optimized_rows,
        "compared_fields": ["coverage", "mpki", "prefetch_accuracy"],
        "paper_ordering_holds": not optimized_report.check_paper_ordering(),
    }
    if cached_seconds:
        best_cached = min(cached_seconds)
        result["optimized_trace_cache"] = {
            "name": "cell-driver-fastpath+trace-cache",
            "seconds": round(best_cached, 4),
        }
        result["speedup_trace_cache"] = round(best_legacy / best_cached, 3)
    return result


def _bench_trace_generation(
    quick: bool, seed: int, repeats: int
) -> Dict[str, object]:
    """Per-suite-entry trace production: cold generation vs warm cache loads.

    *Cold* is a full vectorized generation of the entry's trace set;
    *warm* is a :class:`~repro.workloads.trace_cache.TraceCache` load of the
    binary entry (a JSON sidecar read plus a read-only ``mmap`` of the
    column file) — the steady state of sweeps and parallel workers.  The
    old-vs-new load ratio times a pickle round trip of the same trace set
    against the binary load: pickling is what the v2 cache did on every
    load in every worker process.
    """
    import pickle
    import tempfile

    from ..workloads.trace_cache import TraceCache, trace_cache_key

    names = list(QUICK_WORKLOADS if quick else WORKLOAD_NAMES)
    blocks = QUICK_BLOCKS if quick else None
    sys_config = system_for("scaled", 16)
    suite: Dict[str, object] = {}
    cold_total = warm_total = pickle_total = 0.0
    with tempfile.TemporaryDirectory(prefix="bench-trace-cache-") as tmp:
        cache = TraceCache(tmp, max_bytes=0)
        for name in names:
            spec = scaled_workload(workload_by_name(name), sys_config.scale)
            key = trace_cache_key(spec, sys_config, seed, None, blocks)
            trace_set = None
            cold_runs = []
            for _ in range(repeats):
                started = time.perf_counter()
                trace_set = generate_traces(
                    spec, sys_config, seed=seed, blocks_per_core=blocks
                )
                cold_runs.append(time.perf_counter() - started)
            cache.store(key, trace_set)
            warm_runs = []
            for _ in range(repeats):
                started = time.perf_counter()
                loaded = cache.load(key)
                warm_runs.append(time.perf_counter() - started)
            assert loaded is not None and loaded == trace_set
            # The v2 cache pickled list-backed traces: every load in every
            # worker process re-materialized each address as a Python int.
            # Rebuild that payload shape for an honest old-vs-new ratio.
            legacy_payload = pickle.dumps(
                [
                    (t.core_id, t.addresses, t.instructions_per_block, t.workload)
                    for t in trace_set.traces
                ],
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            pickle_runs = []
            for _ in range(repeats):
                started = time.perf_counter()
                pickle.loads(legacy_payload)
                pickle_runs.append(time.perf_counter() - started)
            cold, warm = min(cold_runs), min(warm_runs)
            cold_total += cold
            warm_total += warm
            pickle_total += min(pickle_runs)
            suite[name] = {
                "cold_seconds": round(cold, 4),
                "warm_seconds": round(warm, 6),
                "warm_speedup": round(cold / warm, 1) if warm else 0.0,
            }
    result: Dict[str, object] = {
        "description": "per-suite-entry trace production: cold vectorized "
        "generation vs warm binary-cache load (JSON sidecar + read-only mmap), "
        "plus the v2-era list-payload pickle deserialization for the "
        "old-vs-new load ratio",
        "config": {"workloads": names, "blocks_per_core": blocks, "repeats": repeats},
        "suite": suite,
        "cold_seconds": round(cold_total, 4),
        "warm_seconds": round(warm_total, 6),
        "warm_speedup": round(cold_total / warm_total, 1) if warm_total else 0.0,
        "pickle_load_seconds": round(pickle_total, 6),
        "old_vs_new_load_ratio": (
            round(pickle_total / warm_total, 2) if warm_total else 0.0
        ),
    }
    return result


def _bench_trace_scale(
    quick: bool, seed: int, workload: str = "oltp_db2"
) -> Dict[str, object]:
    """Out-of-core chunked streaming: peak memory must be flat in trace length.

    Simulates SHIFT with a fixed ``--chunk-blocks`` window on a 10x and a
    100x trace and compares peak simulation memory (``tracemalloc``):
    ``peak_flatness`` is the 100x peak over the 10x peak, which a healthy
    chunked path keeps near 1.0 — the working set is one window plus the
    serialized boundary checkpoint, both independent of trace length — and
    the CI gate caps at :data:`_GATE_TRACE_SCALE_FLATNESS_MAX`.  The 100x
    monolithic run, whose peak grows with the full trace (the Python loops
    materialize each lane's address list), is the contrast:
    ``monolithic_vs_chunked`` is the memory reduction chunking buys at
    this length, and ``chunked_matches_monolithic`` asserts the chunked
    report is exactly the monolithic one (counter-for-counter, on both
    backends when numpy is present) — the chunking-invariance contract of
    ARCHITECTURE.md.  Peaks are absolute bytes, so the flatness ratio
    transfers across machines the same way the speedup ratios do.

    The wall-clock side times the same 100x chunked run on the python
    loops against the numpy backend's warm-state vectorized replay
    (best-of-repeats, warm-cache — the steady state of sweeps, same
    rationale as the hotloop backend timings): ``chunked_numpy_speedup``
    is the full-run ratio at the canonical 1000-block window and carries
    an absolute CI floor (:data:`_GATE_CHUNKED_NUMPY_MIN_SPEEDUP`), and
    ``chunk_size_curve`` repeats the measurement at 500/1000/5000-block
    windows so the checkpoint-overhead vs vectorization-win tradeoff is
    visible: smaller windows mean more boundary state swaps per solved
    window, larger ones amortize them but solve more per memo entry.
    """
    import tracemalloc
    from dataclasses import asdict
    from functools import partial

    from ..sim import available_backends, simulate

    chunk_blocks = 1000
    blocks_mid = chunk_blocks * 10
    blocks_large = chunk_blocks * 100
    num_cores = 4
    timing_repeats = 1 if quick else 3
    curve_windows = (500, 1000, 5000)
    sys_config = system_for("scaled", 16, num_cores)
    shift_config = scaled_shift_config(sys_config.scale)
    spec = scaled_workload(workload_by_name(workload), sys_config.scale)
    mid = generate_traces(spec, sys_config, seed=seed, blocks_per_core=blocks_mid)
    large = generate_traces(spec, sys_config, seed=seed, blocks_per_core=blocks_large)

    def _run(trace_set, window, backend="python"):
        return simulate(
            trace_set,
            sys_config,
            "shift",
            backend=backend,
            chunk_blocks=window,
            shift_config=shift_config,
        )

    def _peak_of(thunk):
        tracemalloc.start()
        try:
            value = thunk()
            _current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return value, peak

    _mid_result, mid_peak = _peak_of(partial(_run, mid, chunk_blocks))
    chunked_result, chunked_peak = _peak_of(partial(_run, large, chunk_blocks))
    mono_result, mono_peak = _peak_of(partial(_run, large, None))

    def _same_report(a, b):
        return [asdict(c) for c in a.cores] == [asdict(c) for c in b.cores] and (
            asdict(a.llc) == asdict(b.llc)
        )

    matches = _same_report(chunked_result, mono_result)
    numpy_available = "numpy" in available_backends()
    curve = []
    chunked_numpy_speedup = None
    for window in curve_windows:
        # The gate window feeds the absolute chunked_numpy_speedup floor,
        # so it samples twice as deep: the warm numpy run is short enough
        # that a scheduler-noise burst can inflate every run in a shallow
        # best-of and push the ratio under the floor spuriously.
        repeats = timing_repeats * 2 if window == chunk_blocks else timing_repeats
        python_best = min(
            _timed(partial(_run, large, window)) for _ in range(repeats)
        )
        point = {
            "chunk_blocks": window,
            "python_seconds": round(python_best, 4),
        }
        if numpy_available:
            # Warm-cache best-of: the first repeat pays the memo fill, so
            # the numpy side always gets at least two runs (quick included)
            # — a cold-only ratio would gate the wrong thing.  It also
            # samples twice as deep as the python side: the warm runs are
            # ~6x shorter, so their best-of needs more draws to escape a
            # scheduler-noise burst.
            numpy_runs = [
                _timed_result(partial(_run, large, window, "numpy"))
                for _ in range(max(2, repeats * 2))
            ]
            numpy_best = min(seconds for seconds, _result in numpy_runs)
            point["numpy_seconds"] = round(numpy_best, 4)
            point["numpy_speedup"] = round(python_best / numpy_best, 3)
            matches = matches and _same_report(numpy_runs[-1][1], mono_result)
            if window == chunk_blocks:
                chunked_numpy_speedup = point["numpy_speedup"]
        curve.append(point)
    result = {
        "description": "out-of-core chunked streaming: SHIFT with a fixed "
        "--chunk-blocks window on 10x and 100x traces; peak tracemalloc bytes "
        "must be flat in trace length (peak_flatness, CI-capped), the 100x "
        "monolithic run is the memory-reduction contrast, the chunked report "
        "must equal the monolithic one exactly on every backend, and the "
        "chunk-size curve times chunked python vs warm-state chunked numpy "
        "(best-of-repeats) per window size",
        "config": {
            "workload": workload,
            "engine": "shift",
            "seed": seed,
            "num_cores": num_cores,
            "chunk_blocks": chunk_blocks,
            "blocks_mid": blocks_mid,
            "blocks_large": blocks_large,
            "timing_repeats": timing_repeats,
            "curve_windows": list(curve_windows),
        },
        "chunked_mid_peak_bytes": mid_peak,
        "chunked_large_peak_bytes": chunked_peak,
        "monolithic_large_peak_bytes": mono_peak,
        "peak_flatness": round(chunked_peak / mid_peak, 3) if mid_peak else 0.0,
        "monolithic_vs_chunked": (
            round(mono_peak / chunked_peak, 2) if chunked_peak else 0.0
        ),
        "chunked_matches_monolithic": matches,
        "chunk_size_curve": curve,
    }
    if chunked_numpy_speedup is not None:
        result["chunked_numpy_speedup"] = chunked_numpy_speedup
    return result


def bench_hotloop(
    quick: bool = False, seed: int = 0, repeats: int = 3, workload: str = "oltp_db2"
) -> Dict[str, object]:
    """Per-engine simulation time on one trace: legacy vs. optimized loops,
    plus the numpy-vs-python backend comparison.

    Backend timings are best-of-``repeats``: with ``repeats >= 2`` the
    numpy numbers are *warm-cache* throughput — the backend's trace-pure
    precomputations (hit flags, record streams, solved timelines) are
    memoized across runs of the same trace set, which is the steady state
    of sweeps and repeated ``--check`` invocations.  Exact-counter
    equality between the backends is asserted (``backends_match``).
    """
    sys_config = system_for("scaled", 16)
    spec = scaled_workload(workload_by_name(workload), sys_config.scale)
    blocks = QUICK_BLOCKS if quick else None
    trace_set = generate_traces(spec, sys_config, seed=seed, blocks_per_core=blocks)
    if quick:
        repeats = 1
    pif_config = scaled_pif_config(sys_config.scale)
    shift_config = scaled_shift_config(sys_config.scale)
    engine_kwargs = {
        "none": {},
        "next_line": {},
        "pif": {"pif_config": pif_config},
        "shift": {"shift_config": shift_config},
    }
    engines: Dict[str, object] = {}
    total_legacy = 0.0
    total_optimized = 0.0
    from dataclasses import asdict
    from functools import partial

    from ..sim import available_backends, simulate

    numpy_available = "numpy" in available_backends()
    backends_match = True
    total_numpy = 0.0
    for engine, kwargs in engine_kwargs.items():
        legacy_best = min(
            _timed(partial(_legacy.legacy_simulate, trace_set, sys_config, engine, **kwargs))
            for _ in range(repeats)
        )
        python_runs = [
            _timed_result(
                partial(simulate, trace_set, sys_config, engine, backend="python", **kwargs)
            )
            for _ in range(repeats)
        ]
        optimized_best = min(seconds for seconds, _result in python_runs)
        total_legacy += legacy_best
        total_optimized += optimized_best
        engines[engine] = {
            "legacy_seconds": round(legacy_best, 4),
            "optimized_seconds": round(optimized_best, 4),
            "speedup": round(legacy_best / optimized_best, 3),
        }
        if numpy_available:
            # Warm numpy runs are 10-100x shorter than the python loops
            # they are compared against, so one scheduler-noise burst can
            # inflate a shallow best-of and swing the gated ratio; the
            # cheap side samples deeper to pin the denominator.
            numpy_runs = [
                _timed_result(
                    partial(simulate, trace_set, sys_config, engine, backend="numpy", **kwargs)
                )
                for _ in range(max(2, repeats * 3))
            ]
            numpy_best = min(seconds for seconds, _result in numpy_runs)
            total_numpy += numpy_best
            engines[engine]["numpy_seconds"] = round(numpy_best, 4)
            engines[engine]["numpy_speedup"] = round(optimized_best / numpy_best, 3)
            # Parity check against one (deterministic) run of each backend,
            # reusing results the timing loops already produced.
            python_result = python_runs[-1][1]
            numpy_result = numpy_runs[-1][1]
            if [asdict(c) for c in python_result.cores] != [
                asdict(c) for c in numpy_result.cores
            ] or asdict(python_result.llc) != asdict(numpy_result.llc):
                backends_match = False
    result: Dict[str, object] = {
        "benchmark": "hotloop",
        "description": "per-engine simulation of one workload trace: frozen PR-1 "
        "loops vs repro.sim._fastpath (which additionally models the shared LLC), "
        "and python vs numpy backend (warm-cache, best-of-repeats)",
        "config": {
            "workload": workload,
            "seed": seed,
            "blocks_per_core": blocks,
            "accesses": trace_set.total_accesses,
            "quick": quick,
            "repeats": repeats,
        },
        "engines": engines,
        "total_speedup": round(total_legacy / total_optimized, 3),
        "backend": {
            "numpy_available": numpy_available,
        },
    }
    if numpy_available:
        result["backend"]["backends_match"] = backends_match
        result["backend"]["total_numpy_speedup"] = round(total_optimized / total_numpy, 3)
    result["trace_generation"] = _bench_trace_generation(quick, seed, repeats)
    result["trace_scale"] = _bench_trace_scale(quick, seed)
    return result


def _timed(thunk) -> float:
    started = time.perf_counter()
    thunk()
    return time.perf_counter() - started


def _timed_result(thunk):
    """Like :func:`_timed` but keeps the run's return value."""
    started = time.perf_counter()
    value = thunk()
    return time.perf_counter() - started, value


#: Relative headroom the bench-regression gate allows before failing.
DEFAULT_REGRESSION_TOLERANCE = 0.15

#: Config keys that must match for two hotloop runs to be comparable.
#: ``repeats``/``quick`` matter because warm-cache numpy timings need
#: ``repeats >= 2`` — a cold single-repeat run would false-fail against a
#: warm baseline.
_COMPARABLE_CONFIG_KEYS = ("workload", "seed", "blocks_per_core", "accesses", "repeats", "quick")

#: Per-engine numpy-vs-python ratios below this in the *baseline* are not
#: gated: they mark engines running through the exact Python fallback,
#: where the ratio is timing noise around 1.0, not a speedup that could
#: regress.
_GATE_MIN_BASELINE_SPEEDUP = 1.5

#: Engines with an *absolute* warm numpy-speedup floor, independent of the
#: committed baseline.  SHIFT graduated from the Python-fallback exemption
#: when the epoch-split solver landed (~20x measured); if a change knocks
#: it back onto the exact fallback the ratio collapses to ~1.0 and this
#: floor fails the gate even against a stale pre-solver baseline.
_GATE_ENGINE_MIN_SPEEDUP = {"shift": 8.0}

#: Ceiling on ``trace_scale.peak_flatness`` — chunked peak simulation
#: memory at 100x the trace length over the peak at 10x, same chunk
#: window.  A healthy chunked path sits near 1.0 (the working set is one
#: window plus the boundary checkpoint, independent of trace length); a
#: ratio above this ceiling means chunked streaming lost its bounded
#: working set and scales with the full trace again.  Absolute, not
#: baseline-relative: the bound is the contract.
_GATE_TRACE_SCALE_FLATNESS_MAX = 1.5

#: Absolute floor on ``trace_scale.chunked_numpy_speedup`` — the warm
#: full-run ratio of chunked python over chunked numpy at the canonical
#: 1000-block window.  Like the SHIFT hotloop floor, this is independent
#: of the committed baseline: if warm-state resumption regresses to the
#: exact Python fallback the ratio collapses to ~1.0 and CI fails even
#: against a stale baseline.  Only enforced where numpy is available.
_GATE_CHUNKED_NUMPY_MIN_SPEEDUP = 5.0

#: Cap applied to the committed trace-generation warm speedup before the
#: tolerance: warm loads are sub-millisecond mmap opens, so beyond ~10x
#: the ratio measures filesystem latency on the recording machine, not the
#: code path.  The clamped gate still enforces >= 8.5x at the default
#: tolerance — far above the 3x floor the refactor promises.
_GATE_TRACE_GEN_SPEEDUP_CAP = 10.0


def check_against(
    current: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = DEFAULT_REGRESSION_TOLERANCE,
) -> List[str]:
    """Compare a fresh benchmark result against a committed baseline.

    Returns a list of regressions (empty = gate passes).  The gate
    compares *speedup ratios* — the aggregate legacy-vs-optimized ratio
    and the per-engine warm-cache numpy-vs-python ratios — rather than
    absolute seconds, so it is portable across machines: a ratio that
    drops more than ``tolerance`` below the committed value means the
    optimized path (or the numpy backend) lost ground relative to the
    same-machine reference it is measured against.  Ratios that do not
    measure a real speedup are excluded as pure timing noise: per-engine
    legacy-vs-optimized ratios hover near 1.0 (only their aggregate is
    gated) and numpy ratios of Python-fallback engines sit below
    :data:`_GATE_MIN_BASELINE_SPEEDUP` in the baseline.  Engines listed
    in :data:`_GATE_ENGINE_MIN_SPEEDUP` additionally carry an *absolute*
    warm-speedup floor (SHIFT: 8x) that holds regardless of the committed
    baseline, so losing the vectorized path fails CI even if the baseline
    predates it.  The
    trace-generation warm speedup is gated against the committed value
    clamped to :data:`_GATE_TRACE_GEN_SPEEDUP_CAP` (the uncapped ratio is
    dominated by sub-millisecond load times).  The ``trace_scale`` section
    carries three absolute gates: ``chunked_matches_monolithic`` must be
    true (chunking invariance), ``peak_flatness`` must stay below
    :data:`_GATE_TRACE_SCALE_FLATNESS_MAX` (the out-of-core memory
    bound), and — where numpy is available — ``chunked_numpy_speedup``
    must clear :data:`_GATE_CHUNKED_NUMPY_MIN_SPEEDUP` (the warm-state
    vectorized chunked replay).  A backend divergence (``backends_match``
    gone false) always fails.
    """
    violations: List[str] = []
    if current.get("benchmark") != baseline.get("benchmark"):
        return [
            f"benchmark mismatch: current {current.get('benchmark')!r} vs "
            f"baseline {baseline.get('benchmark')!r}"
        ]
    current_config = dict(current.get("config", {}))
    baseline_config = dict(baseline.get("config", {}))
    for key in _COMPARABLE_CONFIG_KEYS:
        if key in baseline_config and current_config.get(key) != baseline_config[key]:
            violations.append(
                f"config.{key} differs (current {current_config.get(key)!r} vs "
                f"baseline {baseline_config[key]!r}); runs are not comparable"
            )
    if violations:
        return violations

    def _check_ratio(name: str, cur, base) -> None:
        if not isinstance(cur, (int, float)) or not isinstance(base, (int, float)):
            return
        floor = base * (1.0 - tolerance)
        if cur < floor:
            violations.append(
                f"{name} regressed: {cur} vs committed {base} "
                f"(floor {floor:.3f} at {tolerance:.0%} tolerance)"
            )

    _check_ratio("total_speedup", current.get("total_speedup"), baseline.get("total_speedup"))
    baseline_backend = dict(baseline.get("backend", {}))
    current_backend = dict(current.get("backend", {}))
    if baseline_backend.get("numpy_available") and current_backend.get("numpy_available"):
        if current_backend.get("backends_match") is False:
            violations.append("backend.backends_match is false: backends diverged")
    elif baseline_backend.get("numpy_available") and not current_backend.get("numpy_available"):
        violations.append("baseline has numpy backend results but numpy is unavailable here")
    current_engines = dict(current.get("engines", {}))
    for engine, baseline_data in dict(baseline.get("engines", {})).items():
        current_data = current_engines.get(engine)
        if current_data is None:
            violations.append(f"engine {engine!r} missing from current results")
            continue
        baseline_ratio = baseline_data.get("numpy_speedup")
        if (
            isinstance(baseline_ratio, (int, float))
            and baseline_ratio >= _GATE_MIN_BASELINE_SPEEDUP
            and "numpy_speedup" in current_data
        ):
            _check_ratio(
                f"engines.{engine}.numpy_speedup",
                current_data.get("numpy_speedup"),
                baseline_ratio,
            )
        absolute_floor = _GATE_ENGINE_MIN_SPEEDUP.get(engine)
        if absolute_floor is not None and current_backend.get("numpy_available"):
            current_ratio = current_data.get("numpy_speedup")
            if not isinstance(current_ratio, (int, float)):
                violations.append(
                    f"engines.{engine}.numpy_speedup missing from current "
                    f"results (absolute floor {absolute_floor}x)"
                )
            elif current_ratio < absolute_floor:
                violations.append(
                    f"engines.{engine}.numpy_speedup below absolute floor: "
                    f"{current_ratio} vs required {absolute_floor}x "
                    "(vectorized path lost or regressed to the Python fallback)"
                )
    baseline_gen = baseline.get("trace_generation")
    if isinstance(baseline_gen, dict) and isinstance(
        baseline_gen.get("warm_speedup"), (int, float)
    ):
        current_gen = current.get("trace_generation")
        if not isinstance(current_gen, dict):
            violations.append("trace_generation section missing from current results")
        else:
            _check_ratio(
                "trace_generation.warm_speedup",
                current_gen.get("warm_speedup"),
                min(float(baseline_gen["warm_speedup"]), _GATE_TRACE_GEN_SPEEDUP_CAP),
            )
    if isinstance(baseline.get("trace_scale"), dict):
        current_scale = current.get("trace_scale")
        if not isinstance(current_scale, dict):
            violations.append("trace_scale section missing from current results")
        else:
            if current_scale.get("chunked_matches_monolithic") is not True:
                violations.append(
                    "trace_scale.chunked_matches_monolithic is false: the "
                    "chunked run's report diverged from the monolithic one"
                )
            ratio = current_scale.get("peak_flatness")
            if not isinstance(ratio, (int, float)):
                violations.append("trace_scale.peak_flatness missing from current results")
            elif ratio > _GATE_TRACE_SCALE_FLATNESS_MAX:
                violations.append(
                    f"trace_scale.peak_flatness above ceiling: {ratio} vs allowed "
                    f"{_GATE_TRACE_SCALE_FLATNESS_MAX} (chunked streaming "
                    "lost its bounded working set)"
                )
            if current_backend.get("numpy_available"):
                warm_ratio = current_scale.get("chunked_numpy_speedup")
                if not isinstance(warm_ratio, (int, float)):
                    violations.append(
                        "trace_scale.chunked_numpy_speedup missing from current "
                        f"results (absolute floor {_GATE_CHUNKED_NUMPY_MIN_SPEEDUP}x)"
                    )
                elif warm_ratio < _GATE_CHUNKED_NUMPY_MIN_SPEEDUP:
                    violations.append(
                        "trace_scale.chunked_numpy_speedup below absolute floor: "
                        f"{warm_ratio} vs required {_GATE_CHUNKED_NUMPY_MIN_SPEEDUP}x "
                        "(warm-state vectorized replay lost or regressed to the "
                        "Python fallback)"
                    )
    return violations


def write_bench_json(result: Dict[str, object], out_dir: "str | Path" = ".") -> Path:
    """Write one benchmark result to ``BENCH_<name>.json`` in ``out_dir``."""
    payload = dict(result)
    payload["created"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    payload["python"] = platform.python_version()
    Path(out_dir).mkdir(parents=True, exist_ok=True)
    path = Path(out_dir) / f"BENCH_{result['benchmark']}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


__all__ = [
    "BENCHMARK_NAMES",
    "QUICK_WORKLOADS",
    "QUICK_BLOCKS",
    "DEFAULT_REGRESSION_TOLERANCE",
    "bench_experiment",
    "bench_hotloop",
    "check_against",
    "write_bench_json",
]
