"""Single source of truth for the shared command-line options.

Before this module existed, ``--system``/``--scale``/``--blocks``/``--seed``/
``--workers``/``--trace-cache``/``--backend``/``--json`` were re-declared in
``experiments/__main__.py``, ``sweeps/__main__.py`` and ``bench/__main__.py``
with drifting defaults, spellings (``--cores`` vs ``--num-cores``) and help
strings.  Each shared flag is now defined exactly once in
:data:`SHARED_OPTIONS`; a CLI picks the subset it needs with
:func:`add_options`.  Module-specific flags (``--axis``, ``--check``,
``--quick``, ...) stay in their own ``__main__`` — the lint gate
(``tools/check_cli_options.py``, run in CI) only bans re-declaring the
*shared* option strings outside this module.

``--cores`` and ``--num-cores`` are aliases of one destination, so both
historical spellings keep working on every CLI.

The result cache is controlled by three layers (see
:func:`repro.results.resolve_result_cache_dir`): ``--result-cache [DIR]``
turns it on (bare flag uses the default directory), the
``REPRO_RESULT_CACHE`` environment variable supplies a default, and
``--no-result-cache`` wins over both — which is how a ``repro.serve``
deployment (cache on by default) and a one-shot batch run (cache off by
default) share one option set.
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict, Optional

from . import envvars
from .errors import ConfigurationError
from .results import (
    DEFAULT_RESULT_CACHE_DIR,
    RESULT_CACHE_ENV_VAR,
    resolve_result_cache_dir,
)
from .workloads.suite import WORKLOAD_NAMES
from .workloads.trace_cache import DEFAULT_CACHE_DIR


def _add_system(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--system",
        choices=("scaled", "paper"),
        default="scaled",
        help="system configuration (default: scaled)",
    )


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=int,
        default=16,
        help="shrink factor for the scaled system (default: 16)",
    )


def _add_workloads(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workloads",
        default=None,
        help=f"comma-separated subset of: {', '.join(WORKLOAD_NAMES)}",
    )


def _add_cores(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cores",
        "--num-cores",
        dest="cores",
        type=int,
        default=None,
        help="cores to trace (default: all)",
    )


def _add_blocks(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--blocks",
        type=int,
        default=None,
        help="trace length per core in blocks (default: per-workload)",
    )


def _add_seed(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0, help="workload RNG seed (default: 0)")


def _add_workers(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan experiment cells over N processes (default: $REPRO_WORKERS or serial)",
    )


def _add_trace_cache(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-cache",
        default=None,
        metavar="DIR",
        help=f"directory to cache generated traces in (e.g. {DEFAULT_CACHE_DIR})",
    )


def _add_backend(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="simulation backend: python or numpy "
        "(default: $REPRO_BACKEND or python); results are identical",
    )


def _add_chunk_blocks(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--chunk-blocks",
        type=int,
        default=None,
        metavar="N",
        help="stream each core's trace through the engine in windows of N "
        f"blocks (default: ${envvars.CHUNK_BLOCKS.name} or monolithic); "
        "reports are byte-identical for every geometry — see ARCHITECTURE.md",
    )


def _add_json(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the report as canonical JSON to PATH",
    )


def _add_result_cache(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--result-cache",
        nargs="?",
        const=DEFAULT_RESULT_CACHE_DIR,
        default=None,
        metavar="DIR",
        help="content-addressed simulation-result cache: re-runs recompute "
        f"only changed cells (bare flag uses {DEFAULT_RESULT_CACHE_DIR}; "
        f"${RESULT_CACHE_ENV_VAR} supplies a default directory)",
    )
    parser.add_argument(
        "--no-result-cache",
        action="store_true",
        help=f"disable the result cache even if ${RESULT_CACHE_ENV_VAR} is set",
    )


#: Canonical definition of every shared option, keyed by registry name.
SHARED_OPTIONS: Dict[str, Callable[[argparse.ArgumentParser], None]] = {
    "system": _add_system,
    "scale": _add_scale,
    "workloads": _add_workloads,
    "cores": _add_cores,
    "blocks": _add_blocks,
    "seed": _add_seed,
    "workers": _add_workers,
    "trace-cache": _add_trace_cache,
    "backend": _add_backend,
    "chunk-blocks": _add_chunk_blocks,
    "json": _add_json,
    "result-cache": _add_result_cache,
}

#: The option strings the shared registry owns.  ``tools/check_cli_options.py``
#: fails the lint gate when any of these is re-declared outside this module.
SHARED_OPTION_STRINGS = frozenset(
    {
        "--system",
        "--scale",
        "--workloads",
        "--cores",
        "--num-cores",
        "--blocks",
        "--seed",
        "--workers",
        "--trace-cache",
        "--backend",
        "--chunk-blocks",
        "--json",
        "--result-cache",
        "--no-result-cache",
    }
)


def add_options(parser: argparse.ArgumentParser, *names: str) -> argparse.ArgumentParser:
    """Attach the named shared options to ``parser`` and return it."""
    for name in names:
        try:
            SHARED_OPTIONS[name](parser)
        except KeyError:
            raise KeyError(
                f"unknown shared option {name!r}; known: {', '.join(sorted(SHARED_OPTIONS))}"
            ) from None
    return parser


def envvar_epilog() -> str:
    """Shared ``--help`` epilog: the envvar registry plus the docs pointer.

    Every subcommand renders the same declared registry (so a knob such as
    ``REPRO_CHUNK_BLOCKS`` appears in each ``--help`` the moment it is
    declared in :mod:`repro.envvars`) and points at ARCHITECTURE.md for the
    subsystem map and the chunked-streaming invariants.
    """
    return (
        "environment variables (see repro/envvars.py):\n"
        + envvars.help_text()
        + "\n\nsubsystem map and chunked-streaming (--chunk-blocks) invariants:"
        " see ARCHITECTURE.md"
    )


def result_cache_from_args(
    args: argparse.Namespace, default: Optional[str] = None
) -> Optional[str]:
    """The result-cache directory an invocation asked for (None = off).

    Resolution order: ``--no-result-cache`` > ``--result-cache [DIR]`` >
    ``$REPRO_RESULT_CACHE`` > ``default`` (the per-command policy: None for
    the batch CLIs, the default directory for ``repro.serve``).
    """
    return resolve_result_cache_dir(
        explicit=getattr(args, "result_cache", None),
        disabled=getattr(args, "no_result_cache", False),
        default=default,
    )


def workloads_from_args(args: argparse.Namespace) -> Optional[list]:
    """Split the comma-separated ``--workloads`` value (None = full suite)."""
    raw = getattr(args, "workloads", None)
    return raw.split(",") if raw else None


def resolve_chunk_blocks(explicit: Optional[int]) -> Optional[int]:
    """Effective chunked-streaming window (None = monolithic).

    Resolution order: the explicit ``--chunk-blocks`` value >
    ``$REPRO_CHUNK_BLOCKS`` > monolithic.  Validation happens here so both
    sources produce the same error messages naming their origin.
    """
    if explicit is not None:
        if explicit < 1:
            raise ConfigurationError(
                f"--chunk-blocks must be a positive block count, got {explicit!r}"
            )
        return explicit
    raw = envvars.CHUNK_BLOCKS.read()
    if raw is None:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{envvars.CHUNK_BLOCKS.name} must be an integer block count, got {raw!r}"
        ) from None
    if value < 1:
        raise ConfigurationError(
            f"{envvars.CHUNK_BLOCKS.name} must be a positive block count, got {raw!r}"
        )
    return value


def chunk_blocks_from_args(args: argparse.Namespace) -> Optional[int]:
    """The chunked-streaming window an invocation asked for (None = monolithic)."""
    return resolve_chunk_blocks(getattr(args, "chunk_blocks", None))


__all__ = [
    "SHARED_OPTIONS",
    "SHARED_OPTION_STRINGS",
    "add_options",
    "chunk_blocks_from_args",
    "envvar_epilog",
    "resolve_chunk_blocks",
    "result_cache_from_args",
    "workloads_from_args",
]
