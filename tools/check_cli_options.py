#!/usr/bin/env python3
"""Back-compat shim: the cli-options lint now lives in ``repro.analysis``.

This entry point (wired into CI and imported by
``tests/test_cli_and_facade.py``) delegates to the ``cli-options`` checker
of :mod:`repro.analysis.cli_options`; run ``python -m repro.analysis`` for
the full invariant suite.

Exit status: 0 clean, 1 duplicates found.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"


def find_duplicates(package_root: Path = PACKAGE_ROOT) -> list:
    """(path, line, option) triples for every banned declaration."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.analysis.cli_options import find_duplicates as _find

    return _find(package_root)


def main() -> int:
    duplicates = find_duplicates()
    if not duplicates:
        print("cli-options check OK: shared flags declared only in repro/cli.py")
        return 0
    print("shared CLI options re-declared outside repro/cli.py:", file=sys.stderr)
    for path, lineno, option in duplicates:
        relative = path.relative_to(REPO_ROOT)
        print(
            f"  {relative}:{lineno}: {option} — use repro.cli.add_options instead",
            file=sys.stderr,
        )
    return 1


if __name__ == "__main__":
    sys.exit(main())
