#!/usr/bin/env python3
"""Lint gate: shared CLI options may only be declared in ``repro/cli.py``.

The shared flag set (``--system``, ``--scale``, ``--blocks``, ``--seed``,
``--workers``, ``--trace-cache``, ``--backend``, ``--json``,
``--result-cache``, ...) used to be re-declared across the module CLIs with
drifting defaults and help strings; ``repro.cli`` is now their single
source of truth.  This script walks every python file under ``src/repro``
except ``cli.py`` and fails when an ``add_argument`` call (re)declares one
of the shared option strings — the flake8-style per-file check wired into
the CI lint job and ``tests/test_cli_and_facade.py``.

Exit status: 0 clean, 1 duplicates found.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"
ALLOWED_FILE = PACKAGE_ROOT / "cli.py"


def _shared_option_strings() -> frozenset:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.cli import SHARED_OPTION_STRINGS

    return SHARED_OPTION_STRINGS


def find_duplicates(package_root: Path = PACKAGE_ROOT) -> list:
    """(path, line, option) triples for every banned declaration."""
    banned = _shared_option_strings()
    duplicates = []
    for path in sorted(package_root.rglob("*.py")):
        if path == ALLOWED_FILE:
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"
            ):
                continue
            for arg in node.args:
                if (
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and arg.value in banned
                ):
                    duplicates.append((path, node.lineno, arg.value))
    return duplicates


def main() -> int:
    duplicates = find_duplicates()
    if not duplicates:
        print("cli-options check OK: shared flags declared only in repro/cli.py")
        return 0
    print("shared CLI options re-declared outside repro/cli.py:", file=sys.stderr)
    for path, lineno, option in duplicates:
        relative = path.relative_to(REPO_ROOT)
        print(
            f"  {relative}:{lineno}: {option} — use repro.cli.add_options instead",
            file=sys.stderr,
        )
    return 1


if __name__ == "__main__":
    sys.exit(main())
