"""End-to-end experiment driver: the paper's qualitative result must hold."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import format_report, run_experiment
from repro.experiments.__main__ import build_parser, main

#: Small-but-representative settings so the end-to-end check stays fast.
FAST = dict(num_cores=4, blocks_per_core=4_000, seed=0)


@pytest.fixture(scope="module")
def fast_report():
    return run_experiment(system="scaled", workloads=["oltp_db2", "web_search"], **FAST)


class TestRunExperiment:
    def test_paper_ordering_holds_on_sampled_workloads(self, fast_report):
        violations = fast_report.check_paper_ordering(tolerance=0.10)
        assert violations == []

    def test_report_rows_and_outcomes(self, fast_report):
        assert [row.workload for row in fast_report.rows] == ["oltp_db2", "web_search"]
        for row in fast_report.rows:
            assert row.baseline_mpki > 0
            assert set(row.outcomes) == {"next_line", "pif", "shift"}
            for outcome in row.outcomes.values():
                assert 0.0 <= outcome.coverage <= 1.0
                assert outcome.speedup >= 1.0
                assert 0.0 <= outcome.prefetch_accuracy <= 1.0

    def test_prefetching_reduces_mpki(self, fast_report):
        for row in fast_report.rows:
            assert row.outcomes["shift"].mpki < row.baseline_mpki
            assert row.outcomes["pif"].mpki < row.baseline_mpki

    def test_table_formatting(self, fast_report):
        table = format_report(fast_report)
        assert "oltp_db2" in table
        assert "web_search" in table
        assert "shift cov" in table

    def test_storage_cost_is_surfaced(self, fast_report):
        """The paper's storage-reduction claim must be reported.

        SHIFT's shared history amortizes over the sharers, so this 4-core
        report shows ~4x; the 16-core default reaches the paper's ~14x
        (see test_config's storage accounting).
        """
        for row in fast_report.rows:
            pif = row.outcomes["pif"]
            shift = row.outcomes["shift"]
            assert pif.storage_bytes_per_core > 0
            assert shift.storage_bytes_per_core > 0
            assert pif.storage_bytes_per_core / shift.storage_bytes_per_core > 2
            assert row.outcomes["next_line"].storage_bytes_per_core == 0
        table = format_report(fast_report)
        assert "storage/core:" in table
        assert "SHIFT storage reduction vs PIF:" in table

    def test_storage_and_llc_fields_round_trip(self, fast_report):
        from repro.experiments import ExperimentReport

        restored = ExperimentReport.from_json(fast_report.to_json())
        assert restored.to_json() == fast_report.to_json()
        for original, loaded in zip(fast_report.rows, restored.rows):
            assert loaded.baseline_llc_hit_ratio == original.baseline_llc_hit_ratio
            for engine, outcome in original.outcomes.items():
                assert (
                    loaded.outcomes[engine].storage_bytes_per_core
                    == outcome.storage_bytes_per_core
                )
                assert loaded.outcomes[engine].llc_hit_ratio == outcome.llc_hit_ratio

    def test_llc_hit_ratios_populated(self, fast_report):
        for row in fast_report.rows:
            assert 0.0 < row.baseline_llc_hit_ratio <= 1.0
            for outcome in row.outcomes.values():
                assert 0.0 < outcome.llc_hit_ratio <= 1.0

    def test_table_shows_only_engines_that_ran(self):
        report = run_experiment(
            system="scaled",
            workloads=["oltp_db2"],
            engines=("none", "pif"),
            **FAST,
        )
        table = format_report(report)
        assert "pif cov" in table
        assert "next_line" not in table
        assert "shift" not in table

    def test_baseline_engine_required(self):
        with pytest.raises(ConfigurationError):
            run_experiment(engines=("pif", "shift"), **FAST)

    def test_unknown_system_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment(system="huge", **FAST)


class TestCommandLine:
    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.system == "scaled"
        assert args.scale == 16
        assert not args.check

    def test_main_check_passes_on_sampled_workloads(self, capsys):
        exit_code = main(
            [
                "--system",
                "scaled",
                "--workloads",
                "oltp_db2,web_search",
                "--cores",
                "4",
                "--blocks",
                "4000",
                "--check",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "oltp_db2" in captured.out
        assert "paper ordering holds" in captured.out
