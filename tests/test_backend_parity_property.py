"""Property test: experiment reports are byte-identical across backends.

Randomized small systems (core count, seed, workload subset, trace length,
history budget, LLC slice) run through :func:`repro.experiments.run_experiment`
under the ``python`` and ``numpy`` backends; ``ExperimentReport.to_json()``
must agree byte for byte, serially and with ``REPRO_WORKERS=2``.

The SHIFT-specific cases pin the epoch-split solver's hard edges: history
wraparound mid-epoch, a non-zero trainer core (the delayed-visibility path),
consolidated groups with unequal lane lengths including empty and
single-access lanes (epochs of length 0 and 1), and the parallel-worker
path through the vectorized replay.  Each direct-simulation case asserts
the numpy backend actually took the vectorized path (the solution memo is
populated) so parity cannot silently come from the Python fallback.
"""

import random
from dataclasses import asdict

import pytest

from repro.config import scaled_shift_config, scaled_system
from repro.experiments import run_experiment
from repro.sim import SimulationEngine
from repro.sim.prefetchers import ConsolidatedSHIFTPrefetcher, SHIFTPrefetcher
from repro.workloads.generator import generate_traces
from repro.workloads.suite import WORKLOAD_NAMES, scaled_workload, workload_by_name
from repro.workloads.trace import CoreTrace, TraceSet

pytest.importorskip("numpy")

from repro.sim.backends import numpy_backend  # noqa: E402

#: Fixed seeds make the sampled configurations reproducible in CI.
PROPERTY_SEEDS = (1, 2, 3, 4, 5)


def random_config(seed: int) -> dict:
    rng = random.Random(seed)
    return {
        "workloads": rng.sample(list(WORKLOAD_NAMES), rng.randint(1, 2)),
        "num_cores": rng.choice([1, 2, 3, 4]),
        "blocks_per_core": rng.choice([400, 700, 1_100]),
        "seed": rng.randint(0, 10_000),
        "history_entries": rng.choice([None, 8 * 1024, 64 * 1024]),
        "llc_kb_per_core": rng.choice([None, 256, 1_024]),
    }


@pytest.mark.parametrize("config_seed", PROPERTY_SEEDS)
def test_reports_byte_identical_across_backends(config_seed):
    config = random_config(config_seed)
    python_report = run_experiment(backend="python", **config)
    numpy_report = run_experiment(backend="numpy", **config)
    assert python_report.to_json() == numpy_report.to_json()


def test_reports_byte_identical_with_parallel_workers(tmp_path):
    config = random_config(99)
    serial = run_experiment(backend="python", **config)
    for backend in ("python", "numpy"):
        parallel = run_experiment(
            backend=backend, workers=2, trace_cache=tmp_path, **config
        )
        assert serial.to_json() == parallel.to_json()


def test_reports_byte_identical_under_backend_env(monkeypatch, tmp_path):
    """REPRO_BACKEND routes whole experiments (including worker processes)
    through the numpy backend without changing a byte of the report."""
    config = random_config(123)
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    baseline = run_experiment(**config)
    monkeypatch.setenv("REPRO_BACKEND", "numpy")
    via_env = run_experiment(**config)
    assert baseline.to_json() == via_env.to_json()


def _assert_same_simulation(python_result, numpy_result):
    assert [asdict(c) for c in python_result.cores] == [
        asdict(c) for c in numpy_result.cores
    ]
    assert asdict(python_result.llc) == asdict(numpy_result.llc)


def _run_shift_pair(make_prefetcher, trace_set, system):
    """Simulate with fresh prefetchers per backend; the numpy run must take
    the vectorized epoch-split path, not the exact Python fallback."""
    prefetchers, results = {}, {}
    numpy_backend._SHIFT_CACHE.clear()
    for backend in ("python", "numpy"):
        prefetchers[backend] = make_prefetcher()
        engine = SimulationEngine(
            system=system, prefetcher=prefetchers[backend], backend=backend
        )
        results[backend] = engine.run(trace_set)
    assert numpy_backend._SHIFT_CACHE, "numpy run fell back to the Python loops"
    _assert_same_simulation(results["python"], results["numpy"])
    return prefetchers


class TestShiftEpochSplitEdges:
    """Hard edges of the vectorized SHIFT replay (see module docstring)."""

    def test_history_wraparound_mid_epoch(self):
        """A 16-record history against a 4-core trace overwrites the ring
        many times over; stale-position reads must resolve identically."""
        system = scaled_system()
        config = scaled_shift_config(16, history_entries=256)  # 16 records
        trace_set = generate_traces(
            scaled_workload(workload_by_name("oltp_db2"), 16),
            system,
            seed=21,
            num_cores=4,
            blocks_per_core=1_200,
        )
        prefetchers = _run_shift_pair(
            lambda: SHIFTPrefetcher(num_cores=4, config=config), trace_set, system
        )
        reference = prefetchers["python"]
        assert reference._history.writes > config.history_entries
        # The solver's write-back leaves the shared state exactly where the
        # python loops leave it, so a later resumed run stays exact too.
        for backend in ("numpy",):
            candidate = prefetchers[backend]
            assert candidate._history._records == reference._history._records
            assert candidate._history.writes == reference._history.writes
            assert candidate._index._entries == reference._index._entries

    def test_nonzero_trainer_core(self):
        """Cores below the trainer see an append one step late (delta=1);
        only a non-default trainer exercises that path."""
        system = scaled_system()
        trace_set = generate_traces(
            scaled_workload(workload_by_name("web_search"), 16),
            system,
            seed=17,
            num_cores=3,
            blocks_per_core=900,
        )
        _run_shift_pair(
            lambda: SHIFTPrefetcher(
                num_cores=3, config=scaled_shift_config(16), trainer_core=2
            ),
            trace_set,
            system,
        )

    def test_consolidated_unequal_lanes_and_degenerate_epochs(self):
        """Handcrafted consolidated groups: lane lengths 900/1/700/1
        (single-access lanes are the shortest the trace layer allows), plus
        a region-alternating burst in the trainer feed that emits a record
        on every access — epochs of length 0 and 1 between consecutive
        appends."""
        rng = random.Random(42)

        def stream(length, base):
            addresses = []
            while len(addresses) < length:
                start = base + rng.randrange(0, 300)
                addresses.extend(range(start, start + rng.randrange(1, 12)))
            return addresses[:length]

        trainer0 = stream(840, 0)
        for i in range(60):  # alternate far regions: one record per access
            trainer0.append(0 if i % 2 else 2_048)
        lanes = [
            CoreTrace(0, trainer0),
            CoreTrace(1, stream(1, 0)),
            CoreTrace(2, stream(700, 10_000)),
            CoreTrace(3, stream(1, 10_000)),
        ]
        trace_set = TraceSet(traces=lanes)
        system = scaled_system(num_cores=4)
        _run_shift_pair(
            lambda: ConsolidatedSHIFTPrefetcher(
                groups=[(0, 1), (2, 3)],
                config=scaled_shift_config(16, history_entries=512),
            ),
            trace_set,
            system,
        )

    def test_serial_vs_env_workers_byte_identical(self, monkeypatch, tmp_path):
        """REPRO_WORKERS=2 fans shift cells over worker processes; their
        vectorized replays must reproduce the serial python report."""
        params = {
            "workloads": ["oltp_db2"],
            "engines": ["none", "shift"],
            "num_cores": 4,
            "blocks_per_core": 700,
            "seed": 5,
        }
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        serial_python = run_experiment(backend="python", **params)
        serial_numpy = run_experiment(backend="numpy", **params)
        monkeypatch.setenv("REPRO_WORKERS", "2")
        parallel_numpy = run_experiment(
            backend="numpy", trace_cache=tmp_path, **params
        )
        assert serial_python.to_json() == serial_numpy.to_json()
        assert serial_python.to_json() == parallel_numpy.to_json()
