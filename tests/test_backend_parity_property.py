"""Property test: experiment reports are byte-identical across backends.

Randomized small systems (core count, seed, workload subset, trace length,
history budget, LLC slice) run through :func:`repro.experiments.run_experiment`
under the ``python`` and ``numpy`` backends; ``ExperimentReport.to_json()``
must agree byte for byte, serially and with ``REPRO_WORKERS=2``.
"""

import random

import pytest

from repro.experiments import run_experiment
from repro.workloads.suite import WORKLOAD_NAMES

pytest.importorskip("numpy")

#: Fixed seeds make the sampled configurations reproducible in CI.
PROPERTY_SEEDS = (1, 2, 3, 4, 5)


def random_config(seed: int) -> dict:
    rng = random.Random(seed)
    return {
        "workloads": rng.sample(list(WORKLOAD_NAMES), rng.randint(1, 2)),
        "num_cores": rng.choice([1, 2, 3, 4]),
        "blocks_per_core": rng.choice([400, 700, 1_100]),
        "seed": rng.randint(0, 10_000),
        "history_entries": rng.choice([None, 8 * 1024, 64 * 1024]),
        "llc_kb_per_core": rng.choice([None, 256, 1_024]),
    }


@pytest.mark.parametrize("config_seed", PROPERTY_SEEDS)
def test_reports_byte_identical_across_backends(config_seed):
    config = random_config(config_seed)
    python_report = run_experiment(backend="python", **config)
    numpy_report = run_experiment(backend="numpy", **config)
    assert python_report.to_json() == numpy_report.to_json()


def test_reports_byte_identical_with_parallel_workers(tmp_path):
    config = random_config(99)
    serial = run_experiment(backend="python", **config)
    for backend in ("python", "numpy"):
        parallel = run_experiment(
            backend=backend, workers=2, trace_cache=tmp_path, **config
        )
        assert serial.to_json() == parallel.to_json()


def test_reports_byte_identical_under_backend_env(monkeypatch, tmp_path):
    """REPRO_BACKEND routes whole experiments (including worker processes)
    through the numpy backend without changing a byte of the report."""
    config = random_config(123)
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    baseline = run_experiment(**config)
    monkeypatch.setenv("REPRO_BACKEND", "numpy")
    via_env = run_experiment(**config)
    assert baseline.to_json() == via_env.to_json()
