"""The optimized fast paths must exactly reproduce the frozen PR-1 engine.

Every specialized loop in :mod:`repro.sim._fastpath` (and the per-core
reordering it performs for state-private engines) is pinned here against
:mod:`repro.sim._legacy` — full per-core counter equality, not tolerances.
The two shared-LLC classification counters (``llc_hits`` /
``memory_misses``) postdate the frozen engine and are excluded from the
legacy comparison; they are pinned against the generic round-robin loop in
``tests/test_llc.py`` instead.
"""

from dataclasses import asdict

import pytest

from repro.config import scaled_pif_config, scaled_shift_config, scaled_system
from repro.sim import SimulationEngine, simulate
from repro.sim._legacy import legacy_simulate
from repro.sim.prefetchers import ConsolidatedSHIFTPrefetcher, SHIFTPrefetcher
from repro.workloads.generator import WorkloadTraceGenerator, generate_traces
from repro.workloads.suite import scaled_workload, workload_by_name
from repro.workloads.trace import TraceSet

SYSTEM = scaled_system()

ENGINE_KWARGS = {
    "none": {},
    "next_line": {},
    "pif": {"pif_config": scaled_pif_config(16)},
    "shift": {"shift_config": scaled_shift_config(16)},
}

#: Counters the frozen PR-1 engine cannot produce (it has no LLC model).
POST_LEGACY_FIELDS = ("llc_hits", "memory_misses")


def core_dicts(result):
    return [asdict(core) for core in result.cores]


def legacy_comparable_dicts(result):
    return [
        {k: v for k, v in asdict(core).items() if k not in POST_LEGACY_FIELDS}
        for core in result.cores
    ]


@pytest.fixture(scope="module")
def trace_set():
    spec = scaled_workload(workload_by_name("oltp_db2"), 16)
    return generate_traces(spec, SYSTEM, seed=2, num_cores=4, blocks_per_core=3_000)


@pytest.fixture(scope="module")
def uneven_trace_set():
    """Different per-core trace lengths exercise the lane drop-out paths."""
    spec = scaled_workload(workload_by_name("web_frontend"), 16)
    generator = WorkloadTraceGenerator(spec, SYSTEM, seed=9)
    traces = [
        generator.core_trace(0, 3_000),
        generator.core_trace(1, 1_500),
        generator.core_trace(2, 2_200),
    ]
    return TraceSet(traces=traces, seed=9, name="uneven")


class TestFastPathEquivalence:
    @pytest.mark.parametrize("engine", list(ENGINE_KWARGS))
    def test_counters_match_legacy(self, trace_set, engine):
        optimized = simulate(trace_set, SYSTEM, engine, **ENGINE_KWARGS[engine])
        legacy = legacy_simulate(trace_set, SYSTEM, engine, **ENGINE_KWARGS[engine])
        assert legacy_comparable_dicts(optimized) == legacy_comparable_dicts(legacy)

    @pytest.mark.parametrize("engine", list(ENGINE_KWARGS))
    def test_counters_match_legacy_uneven_lengths(self, uneven_trace_set, engine):
        optimized = simulate(uneven_trace_set, SYSTEM, engine, **ENGINE_KWARGS[engine])
        legacy = legacy_simulate(uneven_trace_set, SYSTEM, engine, **ENGINE_KWARGS[engine])
        assert legacy_comparable_dicts(optimized) == legacy_comparable_dicts(legacy)

    def test_shift_subclass_falls_back_to_generic_loop(self, trace_set):
        """Subclassed engines bypass the exact-type fast paths but must agree."""

        class TracingSHIFT(SHIFTPrefetcher):
            pass

        generic = SimulationEngine(
            SYSTEM, TracingSHIFT(SYSTEM.num_cores, scaled_shift_config(16))
        ).run(trace_set)
        fast = simulate(trace_set, SYSTEM, "shift", shift_config=scaled_shift_config(16))
        assert core_dicts(generic) == core_dicts(fast)

    def test_consolidated_shift_matches_generic_loop(self, trace_set):
        class GenericConsolidated(ConsolidatedSHIFTPrefetcher):
            pass

        groups = [(0, 1), (2, 3)]
        config = scaled_shift_config(16)
        fast = SimulationEngine(SYSTEM, ConsolidatedSHIFTPrefetcher(groups, config)).run(
            trace_set
        )
        generic = SimulationEngine(SYSTEM, GenericConsolidated(groups, config)).run(trace_set)
        assert core_dicts(fast) == core_dicts(generic)

    def test_consolidated_shift_only_trains_within_groups(self, trace_set):
        """A core outside every group gets no prefetches (passive lane)."""
        config = scaled_shift_config(16)
        result = SimulationEngine(
            SYSTEM, ConsolidatedSHIFTPrefetcher([(0, 1, 2)], config)
        ).run(trace_set)
        outside = result.by_core()[3]
        assert outside.prefetches_issued == 0
        assert outside.prefetch_hits == 0
        assert outside.demand_hits + outside.misses == outside.accesses
