"""The bench harness, the bench-regression gate, and report formatting."""

import copy
import json

from repro.bench import bench_experiment, bench_hotloop, check_against, write_bench_json
from repro.experiments import format_report, run_experiment


class TestBenchHarness:
    def test_quick_experiment_bench_matches_and_records(self, tmp_path):
        result = bench_experiment(quick=True)
        assert result["results_match"] is True
        assert result["paper_ordering_holds"] is True
        assert result["speedup"] > 1.0
        path = write_bench_json(result, tmp_path)
        assert path.name == "BENCH_experiment.json"
        payload = json.loads(path.read_text())
        assert payload["baseline"]["name"] == "pr1-serial-legacy"
        assert "created" in payload and "python" in payload

    def test_quick_hotloop_bench_covers_all_engines(self, tmp_path):
        result = bench_hotloop(quick=True)
        assert set(result["engines"]) == {"none", "next_line", "pif", "shift"}
        for data in result["engines"].values():
            assert data["legacy_seconds"] > 0
            assert data["optimized_seconds"] > 0
        path = write_bench_json(result, tmp_path)
        assert path.name == "BENCH_hotloop.json"

    def test_hotloop_records_backend_comparison_when_numpy_present(self):
        import pytest

        pytest.importorskip("numpy")
        result = bench_hotloop(quick=True)
        backend = result["backend"]
        assert backend["numpy_available"] is True
        assert backend["backends_match"] is True
        assert backend["total_numpy_speedup"] > 0
        for data in result["engines"].values():
            assert data["numpy_seconds"] > 0
            assert data["numpy_speedup"] > 0

    def test_hotloop_records_trace_generation_section(self):
        result = bench_hotloop(quick=True)
        generation = result["trace_generation"]
        assert set(generation["suite"]) == {"oltp_db2", "web_search"}
        for entry in generation["suite"].values():
            assert entry["cold_seconds"] > 0
            assert entry["warm_seconds"] > 0
        assert generation["cold_seconds"] > 0
        assert generation["warm_speedup"] > 1.0, "cache loads must beat generation"
        assert generation["old_vs_new_load_ratio"] > 0


def hotloop_fixture():
    return {
        "benchmark": "hotloop",
        "config": {"workload": "oltp_db2", "seed": 0, "blocks_per_core": None, "accesses": 120_000},
        "engines": {
            "none": {"speedup": 1.0, "numpy_speedup": 8.0},
            "pif": {"speedup": 1.5, "numpy_speedup": 10.0},
        },
        "total_speedup": 1.4,
        "backend": {
            "numpy_available": True,
            "backends_match": True,
            "total_numpy_speedup": 9.0,
        },
        "trace_generation": {
            "suite": {"oltp_db2": {"cold_seconds": 0.5, "warm_seconds": 0.005}},
            "cold_seconds": 0.5,
            "warm_seconds": 0.005,
            "warm_speedup": 100.0,
            "old_vs_new_load_ratio": 4.0,
        },
    }


class TestCheckAgainst:
    def test_identical_results_pass(self):
        baseline = hotloop_fixture()
        assert check_against(copy.deepcopy(baseline), baseline) == []

    def test_small_drift_within_tolerance_passes(self):
        baseline = hotloop_fixture()
        current = copy.deepcopy(baseline)
        current["total_speedup"] = 1.3
        current["engines"]["pif"]["numpy_speedup"] = 9.0
        assert check_against(current, baseline, tolerance=0.15) == []

    def test_regression_beyond_tolerance_fails(self):
        baseline = hotloop_fixture()
        current = copy.deepcopy(baseline)
        current["engines"]["none"]["numpy_speedup"] = 5.0  # 8.0 -> 5.0 is >15%
        violations = check_against(current, baseline)
        assert any("none" in violation for violation in violations)

    def test_total_speedup_regression_fails(self):
        baseline = hotloop_fixture()
        current = copy.deepcopy(baseline)
        current["total_speedup"] = 1.0
        assert any("total_speedup" in v for v in check_against(current, baseline))

    def test_backend_divergence_always_fails(self):
        baseline = hotloop_fixture()
        current = copy.deepcopy(baseline)
        current["backend"]["backends_match"] = False
        assert any("diverged" in v for v in check_against(current, baseline))

    def test_missing_engine_fails(self):
        baseline = hotloop_fixture()
        current = copy.deepcopy(baseline)
        del current["engines"]["pif"]
        assert any("missing" in v for v in check_against(current, baseline))

    def test_trace_generation_regression_fails(self):
        baseline = hotloop_fixture()
        current = copy.deepcopy(baseline)
        # The committed 100x is clamped to the 10x cap before the tolerance,
        # so 9.0 passes while 5.0 regresses.
        current["trace_generation"]["warm_speedup"] = 9.0
        assert check_against(current, baseline) == []
        current["trace_generation"]["warm_speedup"] = 5.0
        violations = check_against(current, baseline)
        assert any("trace_generation.warm_speedup" in v for v in violations)

    def test_missing_trace_generation_section_fails(self):
        baseline = hotloop_fixture()
        current = copy.deepcopy(baseline)
        del current["trace_generation"]
        violations = check_against(current, baseline)
        assert any("trace_generation" in v for v in violations)

    def test_incomparable_config_fails_early(self):
        baseline = hotloop_fixture()
        current = copy.deepcopy(baseline)
        current["config"]["accesses"] = 48_000
        current["total_speedup"] = 0.1  # must not be reported: configs differ
        violations = check_against(current, baseline)
        assert violations and all("not comparable" in v for v in violations)

    def test_benchmark_name_mismatch(self):
        baseline = hotloop_fixture()
        current = copy.deepcopy(baseline)
        current["benchmark"] = "experiment"
        assert any("benchmark mismatch" in v for v in check_against(current, baseline))

    def test_shift_absolute_floor(self):
        """SHIFT carries an absolute 8x floor that ignores the baseline: a
        collapse back to the Python fallback (~1.0) must fail even against a
        stale baseline recorded before the epoch-split solver existed."""
        baseline = hotloop_fixture()
        baseline["engines"]["shift"] = {"speedup": 1.0, "numpy_speedup": 0.99}
        current = copy.deepcopy(baseline)
        current["engines"]["shift"]["numpy_speedup"] = 20.0
        assert check_against(current, baseline) == []
        current["engines"]["shift"]["numpy_speedup"] = 1.0
        violations = check_against(current, baseline)
        assert any("absolute floor" in v and "shift" in v for v in violations)
        del current["engines"]["shift"]["numpy_speedup"]
        violations = check_against(current, baseline)
        assert any("shift" in v and "missing" in v for v in violations)
        # Without numpy there is no ratio to hold to the floor; the
        # numpy-unavailable violation is reported elsewhere.
        current["backend"]["numpy_available"] = False
        assert not any("absolute floor" in v for v in check_against(current, baseline))

    def test_chunked_numpy_absolute_floor(self):
        """The warm chunked-numpy full-run ratio carries an absolute 5x
        floor, independent of the baseline: a regression to the Python
        fallback (~1.0) must fail even against a stale baseline."""
        baseline = hotloop_fixture()
        baseline["trace_scale"] = {
            "chunked_matches_monolithic": True,
            "peak_flatness": 1.1,
            "chunked_numpy_speedup": 6.5,
        }
        current = copy.deepcopy(baseline)
        assert check_against(current, baseline) == []
        current["trace_scale"]["chunked_numpy_speedup"] = 1.2
        violations = check_against(current, baseline)
        assert any(
            "chunked_numpy_speedup" in v and "absolute floor" in v
            for v in violations
        )
        del current["trace_scale"]["chunked_numpy_speedup"]
        violations = check_against(current, baseline)
        assert any(
            "chunked_numpy_speedup" in v and "missing" in v for v in violations
        )
        # Without numpy there is no warm ratio to hold to the floor.
        current["backend"]["numpy_available"] = False
        assert not any(
            "chunked_numpy_speedup" in v for v in check_against(current, baseline)
        )

    def test_cli_gate_passes_against_own_output(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        baseline_dir = tmp_path / "baseline"
        assert (
            main(["--quick", "--benchmarks", "hotloop", "--out", str(baseline_dir)]) == 0
        )
        baseline_path = baseline_dir / "BENCH_hotloop.json"
        # Against its own (tolerance-relaxed) output the gate must pass:
        # quick single-repeat timings are noisy, so give wide headroom.
        code = main(
            [
                "--quick",
                "--benchmarks",
                "hotloop",
                "--out",
                str(tmp_path / "current"),
                "--check-against",
                str(baseline_path),
                "--regression-tolerance",
                "0.95",
            ]
        )
        assert code == 0
        assert "bench-regression gate passed" in capsys.readouterr().out


class TestReportAlignment:
    def test_every_column_is_aligned_under_its_header(self):
        report = run_experiment(
            workloads=["oltp_db2"], num_cores=2, blocks_per_core=1_500, seed=0
        )
        lines = format_report(report).splitlines()
        # Workload rows sit between the header rule and the storage footer.
        header, rows = lines[1], lines[3 : 3 + len(report.rows)]
        assert all(len(row) == len(header) for row in rows)
        # Each value cell must end exactly where its header column ends
        # (right-aligned 13-character cells under 13-character headers).
        for title in ("next_line cov", "next_line spd", "pif cov", "shift spd"):
            end = header.index(title) + len(title)
            for row in rows:
                cell = row[end - 13 : end]
                assert cell.strip(), f"empty cell under {title!r}"
                assert row[end - 14] == " ", f"cell under {title!r} overflows its column"
                assert not cell.startswith("  " * 6), f"cell under {title!r} misaligned"

    def test_base_mpki_column_alignment(self):
        report = run_experiment(
            workloads=["oltp_db2"], num_cores=2, blocks_per_core=1_500, seed=0
        )
        lines = format_report(report).splitlines()
        header, first_row = lines[1], lines[3]
        end = header.index("base MPKI") + len("base MPKI")
        assert first_row[end - 1].isdigit()
