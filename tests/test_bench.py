"""The bench harness and report-table formatting."""

import json

from repro.bench import bench_experiment, bench_hotloop, write_bench_json
from repro.experiments import format_report, run_experiment


class TestBenchHarness:
    def test_quick_experiment_bench_matches_and_records(self, tmp_path):
        result = bench_experiment(quick=True)
        assert result["results_match"] is True
        assert result["paper_ordering_holds"] is True
        assert result["speedup"] > 1.0
        path = write_bench_json(result, tmp_path)
        assert path.name == "BENCH_experiment.json"
        payload = json.loads(path.read_text())
        assert payload["baseline"]["name"] == "pr1-serial-legacy"
        assert "created" in payload and "python" in payload

    def test_quick_hotloop_bench_covers_all_engines(self, tmp_path):
        result = bench_hotloop(quick=True)
        assert set(result["engines"]) == {"none", "next_line", "pif", "shift"}
        for data in result["engines"].values():
            assert data["legacy_seconds"] > 0
            assert data["optimized_seconds"] > 0
        path = write_bench_json(result, tmp_path)
        assert path.name == "BENCH_hotloop.json"


class TestReportAlignment:
    def test_every_column_is_aligned_under_its_header(self):
        report = run_experiment(
            workloads=["oltp_db2"], num_cores=2, blocks_per_core=1_500, seed=0
        )
        lines = format_report(report).splitlines()
        # Workload rows sit between the header rule and the storage footer.
        header, rows = lines[1], lines[3 : 3 + len(report.rows)]
        assert all(len(row) == len(header) for row in rows)
        # Each value cell must end exactly where its header column ends
        # (right-aligned 13-character cells under 13-character headers).
        for title in ("next_line cov", "next_line spd", "pif cov", "shift spd"):
            end = header.index(title) + len(title)
            for row in rows:
                cell = row[end - 13 : end]
                assert cell.strip(), f"empty cell under {title!r}"
                assert row[end - 14] == " ", f"cell under {title!r} overflows its column"
                assert not cell.startswith("  " * 6), f"cell under {title!r} misaligned"

    def test_base_mpki_column_alignment(self):
        report = run_experiment(
            workloads=["oltp_db2"], num_cores=2, blocks_per_core=1_500, seed=0
        )
        lines = format_report(report).splitlines()
        header, first_row = lines[1], lines[3]
        end = header.index("base MPKI") + len("base MPKI")
        assert first_row[end - 1].isdigit()
