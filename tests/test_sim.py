"""The simulation subsystem: cache, prefetcher engines, timing model."""

import pytest

from repro.config import (
    CacheConfig,
    NextLineConfig,
    PIFConfig,
    SHIFTConfig,
    scaled_pif_config,
    scaled_shift_config,
    scaled_system,
)
from repro.errors import ConfigurationError, PrefetcherError, SimulationError
from repro.sim import (
    HistoryBuffer,
    IndexTable,
    NextLinePrefetcher,
    PIFPrefetcher,
    PrefetchBuffer,
    SetAssociativeCache,
    SHIFTPrefetcher,
    SpatialCompactor,
    make_prefetcher,
    simulate,
)
from repro.sim.prefetchers import expand_record
from repro.sim.timing import core_timing, system_timing, weighted_speedup
from repro.workloads.generator import generate_traces
from repro.workloads.suite import scaled_workload
from repro.workloads.trace import CoreTrace, TraceSet

SYSTEM = scaled_system()


class TestSetAssociativeCache:
    def test_lru_eviction_order(self):
        cache = SetAssociativeCache(CacheConfig(size_bytes=2 * 64, associativity=2))
        # One set, two ways: every block maps to set 0.
        cache.insert(0)
        cache.insert(1)
        assert cache.access(0)  # 0 becomes MRU
        cache.insert(2)  # evicts 1 (LRU)
        assert cache.contains(0)
        assert not cache.contains(1)
        assert cache.contains(2)

    def test_set_mapping(self):
        cache = SetAssociativeCache(CacheConfig(size_bytes=4 * 64, associativity=2))
        assert cache.num_sets == 2
        cache.insert(0)
        cache.insert(1)
        cache.insert(2)
        cache.insert(3)
        # Four blocks across two 2-way sets all fit.
        assert cache.resident_blocks() == 4

    def test_reinsert_does_not_duplicate(self):
        cache = SetAssociativeCache(CacheConfig(size_bytes=2 * 64, associativity=2))
        cache.insert(5)
        cache.insert(5)
        assert cache.resident_blocks() == 1


class TestPrefetchBuffer:
    def test_fifo_eviction_counts_unused(self):
        buffer = PrefetchBuffer(capacity=2)
        buffer.insert(1, issued_at=0)
        buffer.insert(2, issued_at=0)
        buffer.insert(3, issued_at=0)
        assert buffer.evicted_unused == 1
        assert 1 not in buffer
        assert buffer.consume(2) == 0
        assert buffer.consume(2) is None

    def test_reprefetch_keeps_original_timestamp(self):
        buffer = PrefetchBuffer(capacity=4)
        assert buffer.insert(7, issued_at=3)
        assert not buffer.insert(7, issued_at=9)
        assert buffer.consume(7) == 3


class TestTemporalMachinery:
    def test_compactor_splits_regions(self):
        compactor = SpatialCompactor(region_blocks=4)
        assert compactor.feed(100) is None
        assert compactor.feed(101) is None
        assert compactor.feed(103) is None
        record = compactor.feed(200)  # leaves the region
        assert record == (100, 0b101)
        assert expand_record(record, 4) == [100, 101, 103]

    def test_history_wraparound_invalidates_old_positions(self):
        history = HistoryBuffer(capacity=4)
        positions = [history.append((i, 0)) for i in range(6)]
        assert history.get(positions[0]) is None  # overwritten
        assert history.get(positions[5]) == (5, 0)
        assert not history.valid(99)

    def test_index_capacity_is_bounded(self):
        index = IndexTable(capacity=2)
        index.put(1, 10)
        index.put(2, 20)
        index.put(3, 30)
        assert index.get(1) is None
        assert index.get(3) == 30
        assert len(index) == 2


def recurring_trace(core_id, repeats=40, segment=None):
    """A trace that repeats a discontinuous code path, like recurring requests.

    The 12 five-block runs (60 blocks, twice the scaled L1-I capacity) use
    scattered bases so misses are capacity misses, as in the paper's
    workloads, rather than pathological set conflicts.
    """
    if segment is None:
        segment = []
        for i in range(12):
            base = 1000 + 577 * i
            segment.extend(range(base, base + 5))
    return CoreTrace(core_id=core_id, addresses=segment * repeats)


class TestPrefetcherEngines:
    def test_null_prefetcher_changes_nothing(self):
        trace_set = TraceSet(traces=[recurring_trace(0)])
        result = simulate(trace_set, SYSTEM, "none")
        assert result.cores[0].prefetches_issued == 0
        assert result.cores[0].misses > 0

    def test_next_line_covers_sequential_stream(self):
        # A long sequential walk over a footprint much larger than the L1-I.
        addresses = list(range(10_000, 14_000))
        trace_set = TraceSet(traces=[CoreTrace(core_id=0, addresses=addresses)])
        baseline = simulate(trace_set, SYSTEM, "none")
        result = simulate(trace_set, SYSTEM, "next_line", next_line_config=NextLineConfig(degree=4))
        assert result.coverage_vs(baseline) > 0.5

    def test_pif_covers_recurring_discontinuous_stream(self):
        trace_set = TraceSet(traces=[recurring_trace(0)])
        baseline = simulate(trace_set, SYSTEM, "none")
        pif = simulate(trace_set, SYSTEM, "pif", pif_config=scaled_pif_config())
        next_line = simulate(trace_set, SYSTEM, "next_line")
        assert pif.coverage_vs(baseline) > 0.6
        assert pif.coverage_vs(baseline) > next_line.coverage_vs(baseline)

    def test_shift_serves_cores_that_never_train(self):
        # Core 0 trains the shared history; core 1 only consumes it.
        trace_set = TraceSet(traces=[recurring_trace(0), recurring_trace(1)])
        baseline = simulate(trace_set, SYSTEM, "none")
        shift = simulate(trace_set, SYSTEM, "shift", shift_config=scaled_shift_config())
        by_core = shift.by_core()
        base_by_core = baseline.by_core()
        consumer_coverage = 1 - (
            by_core[1].effective_misses / base_by_core[1].effective_misses
        )
        assert consumer_coverage > 0.5

    def test_shift_virtualized_history_reads_llc_blocks(self):
        trace_set = TraceSet(traces=[recurring_trace(0)])
        shift = SHIFTPrefetcher(1, scaled_shift_config())
        simulate(trace_set, SYSTEM, shift)
        assert shift.history_block_reads(0) > 0
        zero_lat = SHIFTPrefetcher(1, scaled_shift_config(zero_latency_history=True))
        simulate(trace_set, SYSTEM, zero_lat)
        assert zero_lat.history_block_reads(0) == 0

    def test_factory_names(self):
        assert isinstance(
            make_prefetcher("none", SYSTEM), type(make_prefetcher("baseline", SYSTEM))
        )
        assert isinstance(make_prefetcher("nl", SYSTEM), NextLinePrefetcher)
        assert isinstance(make_prefetcher("pif", SYSTEM), PIFPrefetcher)
        assert isinstance(make_prefetcher("shift", SYSTEM), SHIFTPrefetcher)
        with pytest.raises(PrefetcherError):
            make_prefetcher("ghb", SYSTEM)

    def test_engine_rejects_oversubscribed_trace_set(self):
        traces = [recurring_trace(i, repeats=1) for i in range(SYSTEM.num_cores + 1)]
        with pytest.raises(SimulationError):
            simulate(TraceSet(traces=traces), SYSTEM, "none")

    def test_prefetcher_config_validation(self):
        with pytest.raises(ConfigurationError):
            NextLineConfig(degree=0)
        assert NextLinePrefetcher(NextLineConfig(degree=2)).config.degree == 2
        with pytest.raises(PrefetcherError):
            PIFPrefetcher(0, PIFConfig())
        with pytest.raises(PrefetcherError):
            SHIFTPrefetcher(2, SHIFTConfig(), trainer_core=5)


class TestTiming:
    def test_fewer_misses_means_higher_ipc(self):
        trace_set = TraceSet(traces=[recurring_trace(0)])
        baseline = simulate(trace_set, SYSTEM, "none")
        pif = simulate(trace_set, SYSTEM, "pif", pif_config=scaled_pif_config())
        base_ipc = core_timing(baseline.cores[0], SYSTEM).ipc
        pif_ipc = core_timing(pif.cores[0], SYSTEM).ipc
        assert pif_ipc > base_ipc
        assert weighted_speedup(pif, baseline, SYSTEM) > 1.0

    def test_ipc_bounded_by_base_ipc(self):
        trace_set = TraceSet(traces=[recurring_trace(0)])
        result = simulate(trace_set, SYSTEM, "none")
        for timing in system_timing(result, SYSTEM):
            assert timing.ipc <= SYSTEM.core.base_ipc + 1e-9

    def test_history_reads_charge_slows_shift(self):
        spec = scaled_workload("oltp_db2", 16)
        trace_set = generate_traces(spec, SYSTEM, seed=0, num_cores=2, blocks_per_core=2_000)
        baseline = simulate(trace_set, SYSTEM, "none")
        virtualized = simulate(trace_set, SYSTEM, "shift", shift_config=scaled_shift_config())
        zero_lat = simulate(
            trace_set,
            SYSTEM,
            "shift",
            shift_config=scaled_shift_config(zero_latency_history=True),
        )
        assert weighted_speedup(zero_lat, baseline, SYSTEM) >= weighted_speedup(
            virtualized, baseline, SYSTEM
        )
