"""Invariants of the Table I configuration dataclasses."""

import pytest

from repro.config import (
    BLOCK_ADDRESS_BITS,
    BLOCK_SIZE,
    CacheConfig,
    CoreConfig,
    InterconnectConfig,
    PIFConfig,
    SHIFTConfig,
    SystemConfig,
    paper_pif_config,
    paper_shift_config,
    paper_system,
    pif_equal_cost_entries,
    scaled_pif_config,
    scaled_shift_config,
    scaled_system,
)
from repro.errors import ConfigurationError


class TestCacheGeometry:
    def test_paper_l1i_geometry(self):
        l1i = paper_system().l1i
        assert l1i.size_bytes == 32 * 1024
        assert l1i.num_blocks == 512
        assert l1i.num_sets == 256
        assert l1i.num_sets * l1i.associativity * l1i.block_size == l1i.size_bytes

    def test_non_integral_sets_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=1000, associativity=3)

    def test_non_positive_size_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=0, associativity=2)

    def test_llc_totals(self):
        system = paper_system()
        assert system.llc.total_size_bytes(16) == 8 * 1024 * 1024
        assert system.llc_total_blocks == (8 * 1024 * 1024) // BLOCK_SIZE


class TestInterconnect:
    def test_mesh_tiles(self):
        mesh = InterconnectConfig(rows=4, columns=4)
        assert mesh.num_tiles == 16

    def test_for_cores_keeps_the_table_i_die_up_to_16(self):
        for cores in (1, 2, 4, 16):
            mesh = InterconnectConfig.for_cores(cores)
            assert (mesh.rows, mesh.columns) == (4, 4)

    def test_for_cores_grows_near_square_beyond_16(self):
        assert (InterconnectConfig.for_cores(32).rows,
                InterconnectConfig.for_cores(32).columns) == (4, 8)
        assert InterconnectConfig.for_cores(64).num_tiles == 64
        # Primes fall back to the smallest covering near-square mesh.
        mesh = InterconnectConfig.for_cores(17)
        assert mesh.num_tiles >= 17
        assert abs(mesh.rows - mesh.columns) <= 2

    def test_average_hop_count_square_mesh(self):
        mesh = InterconnectConfig(rows=4, columns=4, cycles_per_hop=3)
        assert mesh.average_hop_count() == pytest.approx(2.5)
        assert mesh.average_latency_cycles() == pytest.approx(7.5)

    def test_demand_latency_composition(self):
        system = paper_system()
        expected = 2 * system.interconnect.average_latency_cycles() + system.llc.hit_latency_cycles
        assert system.llc_demand_latency_cycles() == pytest.approx(expected)
        assert system.memory_demand_latency_cycles() > system.llc_demand_latency_cycles()


class TestStorageAccounting:
    def test_pif_record_bits(self):
        pif = paper_pif_config()
        # 34-bit block address + 7-bit vector = 41-bit records (Section 4.2).
        assert pif.spatial_region.record_bits == BLOCK_ADDRESS_BITS + 7 == 41
        assert pif.history_bits == pif.history_entries * 41

    def test_pif_index_pointer_width(self):
        pif = PIFConfig(history_entries=32 * 1024, index_entries=8 * 1024)
        # 32K entries need a 15-bit pointer.
        assert pif.index_entry_bits == BLOCK_ADDRESS_BITS + 15
        assert pif.storage_bytes_per_core == (pif.history_bits + pif.index_bits + 7) // 8

    def test_shift_history_llc_blocks(self):
        shift = paper_shift_config()
        # 32K records at 12 records per 64-byte block (Section 4.2).
        assert shift.records_per_llc_block == 12
        assert shift.history_llc_blocks == (32 * 1024 + 11) // 12
        assert shift.history_llc_bytes == shift.history_llc_blocks * BLOCK_SIZE

    def test_shift_pointer_bits_match_paper(self):
        shift = paper_shift_config()
        assert shift.required_pointer_bits() == 15
        assert shift.index_pointer_bits == 15

    def test_shift_pointer_bits_follow_scaled_history(self):
        # 2048 entries need 11 bits, not the paper's 15: the derived width
        # must shrink with the history.
        shift = scaled_shift_config(scale=16)
        assert shift.history_entries == 2048
        assert shift.index_pointer_bits == 11

    def test_shift_explicit_pointer_bits_validated(self):
        assert SHIFTConfig(history_entries=2048, index_pointer_bits=15).index_pointer_bits == 15
        with pytest.raises(ConfigurationError):
            SHIFTConfig(history_entries=32 * 1024, index_pointer_bits=11)

    def test_shift_storage_total_counts_history_and_index(self):
        shift = paper_shift_config()
        assert shift.index_bytes == (32 * 1024 * 15 + 7) // 8
        assert shift.storage_bytes_total == shift.history_llc_bytes + shift.index_bytes
        # The headline claim: per-core SHIFT storage is an order of
        # magnitude below the equally provisioned PIF's.
        pif = paper_pif_config()
        assert pif.storage_bytes_per_core / (shift.storage_bytes_total / 16) > 10


class TestScaledConfigs:
    def test_scaled_system_preserves_l1_llc_ratio(self):
        paper = paper_system()
        scaled = scaled_system(scale=16)
        paper_ratio = paper.llc.size_bytes_per_core / paper.l1i.size_bytes
        scaled_ratio = scaled.llc.size_bytes_per_core / scaled.l1i.size_bytes
        assert scaled_ratio == pytest.approx(paper_ratio)
        assert scaled.scale == 16

    def test_scaled_system_llc_override(self):
        system = scaled_system(scale=16, llc_bytes_per_core=128 * 1024)
        assert system.llc.size_bytes_per_core == 8 * 1024
        # 64 KB is the smallest override that survives the 4 KB scaled floor.
        floor = scaled_system(scale=16, llc_bytes_per_core=64 * 1024)
        assert floor.llc.size_bytes_per_core == 4 * 1024

    def test_llc_override_below_the_scaled_floor_is_an_error(self):
        # Silently rounding a 16 KB point up to the floor would make it a
        # duplicate of the 64 KB point under a different label.
        with pytest.raises(ConfigurationError):
            scaled_system(scale=16, llc_bytes_per_core=16 * 1024)

    def test_llc_override_rejects_non_positive_sizes(self):
        # 0 must error, not silently fall back to the 512 KB default.
        with pytest.raises(ConfigurationError):
            scaled_system(scale=16, llc_bytes_per_core=0)
        with pytest.raises(ConfigurationError):
            paper_system(llc_bytes_per_core=0)

    def test_scaled_system_sizes_mesh_and_llc_to_cores(self):
        system = scaled_system(num_cores=32)
        assert system.interconnect.num_tiles >= 32
        assert system.llc_total_blocks == 32 * system.llc.size_bytes_per_core // 64

    def test_scaled_prefetcher_histories_shrink_together(self):
        pif = scaled_pif_config(scale=16)
        shift = scaled_shift_config(scale=16)
        assert pif.history_entries == 2048
        assert shift.history_entries == 2048
        assert pif.index_entries == pif.history_entries // 4

    def test_equal_cost_pif_shrinks_with_scale(self):
        shift = paper_shift_config()
        history_paper, index_paper = pif_equal_cost_entries(shift, scale=1)
        history_scaled, index_scaled = pif_equal_cost_entries(shift, scale=16)
        # Paper point: 2K history / 512 index per core.
        assert (history_paper, index_paper) == (2048, 512)
        assert history_scaled == history_paper // 16
        assert index_scaled == index_paper // 16
        with pytest.raises(ConfigurationError):
            pif_equal_cost_entries(shift, scale=0)

    def test_equal_cost_ratio_matches_shift_history(self):
        for scale in (1, 4, 16):
            shift = paper_shift_config()
            history, _ = pif_equal_cost_entries(shift, scale=scale)
            scaled_shift = scaled_shift_config(scale=scale)
            # The 16:1 shared-to-private ratio of the paper is preserved at
            # every scale.
            assert scaled_shift.history_entries // history == 16


class TestValidation:
    def test_core_config_rejects_bad_exposure(self):
        with pytest.raises(ConfigurationError):
            CoreConfig(
                name="bad",
                kind="lean_ooo",
                dispatch_width=2,
                rob_entries=32,
                lsq_entries=8,
                area_mm2=1.0,
                base_ipc=1.0,
                stall_exposure=1.5,
            )

    def test_system_requires_enough_tiles(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(num_cores=32)

    def test_shift_rejects_zero_records_per_block(self):
        with pytest.raises(ConfigurationError):
            SHIFTConfig(records_per_llc_block=0)
