"""The columnar trace IR and its binary persistence format.

Covers the PR-5 tentpole end-to-end: array-backed :class:`CoreTrace`
buffers (NumPy and ``array('q')`` fallback), vectorized run expansion,
content fingerprints, TraceSet -> bytes -> TraceSet round trips including
address layouts, corrupted/truncated cache entries degrading to misses,
and memory-mapped loads feeding byte-identical experiment reports whether
cells run serially or across worker processes.
"""

import json
import pickle
import random
from array import array

import pytest

import repro.workloads.trace as trace_mod
from repro.config import scaled_system
from repro.errors import TraceError
from repro.experiments import run_experiment
from repro.workloads.consolidation import ConsolidationMix, generate_consolidated_traces
from repro.workloads.generator import generate_traces
from repro.workloads.suite import scaled_workload, workload_by_name
from repro.workloads.trace import CoreTrace, TraceSet, column_fingerprint, expand_runs
from repro.workloads.trace_cache import TraceCache, trace_cache_key

np = pytest.importorskip("numpy")

SYSTEM = scaled_system()


def small_trace_set(seed=0, num_cores=2, blocks=600, workload="oltp_db2"):
    spec = scaled_workload(workload_by_name(workload), SYSTEM.scale)
    key = trace_cache_key(spec, SYSTEM, seed, num_cores, blocks)
    trace_set = generate_traces(
        spec, SYSTEM, seed=seed, num_cores=num_cores, blocks_per_core=blocks
    )
    return key, trace_set


class TestColumnarCoreTrace:
    def test_buffer_is_contiguous_int64(self):
        trace = CoreTrace(core_id=0, addresses=[5, 6, 7, 100])
        assert isinstance(trace.array, np.ndarray)
        assert trace.array.dtype == np.int64
        assert trace.addresses == [5, 6, 7, 100]
        assert list(trace) == [5, 6, 7, 100]
        assert trace[2] == 7
        assert len(trace) == 4

    def test_accepts_existing_buffers_zero_copy(self):
        column = np.arange(10, dtype=np.int64)
        trace = CoreTrace(core_id=1, addresses=column)
        assert trace.array is column
        qbuf = array("q", [3, 2, 1])
        assert CoreTrace(core_id=2, addresses=qbuf).addresses == [3, 2, 1]

    def test_empty_trace_rejected_for_any_buffer_kind(self):
        with pytest.raises(TraceError):
            CoreTrace(core_id=0, addresses=np.empty(0, dtype=np.int64))
        with pytest.raises(TraceError):
            CoreTrace(core_id=0, addresses=array("q"))

    def test_fingerprint_is_content_addressed(self):
        a = CoreTrace(core_id=0, addresses=[1, 2, 3])
        b = CoreTrace(core_id=5, addresses=np.asarray([1, 2, 3], dtype=np.int64))
        c = CoreTrace(core_id=0, addresses=[1, 2, 4])
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != c.fingerprint
        assert a.fingerprint == column_fingerprint(array("q", [1, 2, 3]))

    def test_equality_and_pickle_round_trip(self):
        _key, trace_set = small_trace_set(blocks=300)
        clone = pickle.loads(pickle.dumps(trace_set, protocol=pickle.HIGHEST_PROTOCOL))
        assert clone == trace_set
        assert [t.addresses for t in clone.traces] == [
            t.addresses for t in trace_set.traces
        ]
        assert clone.layouts == trace_set.layouts

    def test_expand_runs_matches_scalar_expansion(self):
        rng = random.Random(13)
        for _ in range(25):
            runs = [
                (rng.randrange(0, 1 << 40), rng.randint(1, 9))
                for _ in range(rng.randint(1, 40))
            ]
            expected = [a for base, length in runs for a in range(base, base + length)]
            assert expand_runs(runs).tolist() == expected
            limit = rng.randint(1, len(expected))
            assert expand_runs(runs, limit=limit).tolist() == expected[:limit]

    def test_expand_runs_fallback_matches_numpy(self, monkeypatch):
        runs = [(100, 3), (50, 1), (200, 5)]
        vectorized = expand_runs(runs, limit=7)
        monkeypatch.setattr(trace_mod, "_np", None)
        fallback = expand_runs(runs, limit=7)
        assert isinstance(fallback, array)
        assert list(fallback) == vectorized.tolist()


class TestPersistenceRoundTrip:
    def test_round_trip_preserves_everything(self, tmp_path):
        cache = TraceCache(tmp_path)
        key, trace_set = small_trace_set(seed=3)
        cache.store(key, trace_set)
        loaded = cache.load(key)
        assert loaded == trace_set
        assert loaded.layouts == trace_set.layouts
        assert loaded.seed == trace_set.seed and loaded.name == trace_set.name
        assert loaded.workload_of_core == trace_set.workload_of_core
        for ours, theirs in zip(loaded.traces, trace_set.traces):
            assert ours.addresses == theirs.addresses
            assert ours.fingerprint == theirs.fingerprint
            assert ours.requests == theirs.requests
            assert ours.instructions_per_block == theirs.instructions_per_block

    def test_round_trip_property_random_sets(self, tmp_path):
        """Randomized round-trip: hand-built sets with ragged lengths,
        explicit workload maps and no layouts survive the byte cycle."""
        rng = random.Random(99)
        cache = TraceCache(tmp_path)
        for case in range(8):
            traces = [
                CoreTrace(
                    core_id=core,
                    addresses=[rng.randrange(0, 1 << 45) for _ in range(rng.randint(1, 80))],
                    instructions_per_block=rng.randint(1, 12),
                    workload=f"w{core % 2}",
                    requests=rng.randint(0, 9),
                )
                for core in range(rng.randint(1, 5))
            ]
            trace_set = TraceSet(traces=traces, seed=case, name=f"case{case}")
            key = f"{case:02d}" + "ab" * 31  # 64 hex chars
            cache.store(key, trace_set)
            assert cache.load(key) == trace_set

    def test_consolidated_round_trip_keeps_all_layouts(self, tmp_path):
        specs = [
            scaled_workload(workload_by_name("oltp_db2"), SYSTEM.scale),
            scaled_workload(workload_by_name("web_search"), SYSTEM.scale),
        ]
        mix = ConsolidationMix.even_split(specs, 4)
        trace_set = generate_consolidated_traces(mix, SYSTEM, seed=2, blocks_per_core=400)
        cache = TraceCache(tmp_path)
        key = "cc" * 32
        cache.store(key, trace_set)
        loaded = cache.load(key)
        assert loaded == trace_set
        assert len(loaded.layouts) == 2
        assert loaded.workload_of_core == trace_set.workload_of_core

    def test_loaded_buffers_are_readonly_memmap_slices(self, tmp_path):
        cache = TraceCache(tmp_path)
        key, trace_set = small_trace_set()
        cache.store(key, trace_set)
        loaded = cache.load(key)
        for trace in loaded.traces:
            assert isinstance(trace.array, np.memmap)
            assert not trace.array.flags.writeable
        # The mmap-backed set simulates identically to the generated one.
        from repro.sim import simulate

        fresh = simulate(trace_set, SYSTEM, "next_line")
        mapped = simulate(loaded, SYSTEM, "next_line")
        assert [vars(c) for c in mapped.cores] == [vars(c) for c in fresh.cores]

    @pytest.mark.parametrize(
        "corruption",
        [
            "truncate_column",
            "bad_magic",
            "wrong_shape",
            "bitflip_column",
            "sidecar_garbage",
            "invalid_metadata",
            "wrong_version",
        ],
    )
    def test_corrupted_entries_load_as_none(self, tmp_path, corruption):
        cache = TraceCache(tmp_path)
        key, trace_set = small_trace_set()
        cache.store(key, trace_set)
        column = cache._column_path(key)
        sidecar = cache._sidecar_path(key)
        if corruption == "truncate_column":
            column.write_bytes(column.read_bytes()[:-16])
        elif corruption == "bad_magic":
            column.write_bytes(b"\x00" * 64)
        elif corruption == "wrong_shape":
            header = json.loads(sidecar.read_text())
            header["total"] += 7
            header["cores"][-1]["length"] += 7
            sidecar.write_text(json.dumps(header))
        elif corruption == "bitflip_column":
            # Size-preserving damage: only the fingerprint check can see it.
            blob = bytearray(column.read_bytes())
            blob[-5] ^= 0x40
            column.write_bytes(bytes(blob))
        elif corruption == "sidecar_garbage":
            sidecar.write_bytes(b"\x93NUMPY not json at all")
        elif corruption == "invalid_metadata":
            # Parseable JSON whose values fail CoreTrace validation: must be
            # a miss, not an escaping TraceError.
            header = json.loads(sidecar.read_text())
            header["cores"][0]["instructions_per_block"] = 0
            sidecar.write_text(json.dumps(header))
        elif corruption == "wrong_version":
            header = json.loads(sidecar.read_text())
            header["version"] = 999
            sidecar.write_text(json.dumps(header))
        assert cache.load(key) is None
        assert cache.misses == 1


class TestMmapParallelReports:
    FAST = dict(workloads=["oltp_db2"], num_cores=4, blocks_per_core=1_200, seed=17)

    def test_serial_and_parallel_mmap_reports_are_byte_identical(self, tmp_path):
        import repro.experiments.cells as cells_module

        reference = run_experiment(**self.FAST).to_json()
        # Populate the cache, then force every subsequent path through the
        # memory-mapped loads (the in-process memo is cleared between runs).
        warmup = run_experiment(trace_cache=tmp_path, **self.FAST)
        assert warmup.to_json() == reference
        cells_module._TRACE_MEMO.clear()
        warm_serial = run_experiment(trace_cache=tmp_path, **self.FAST)
        assert warm_serial.to_json() == reference
        cells_module._TRACE_MEMO.clear()
        warm_parallel = run_experiment(workers=2, trace_cache=tmp_path, **self.FAST)
        assert warm_parallel.to_json() == reference
