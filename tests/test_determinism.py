"""Determinism of the cell-based executor.

The contract that makes parallel execution safe to ship: for a fixed seed
the serialized ``ExperimentReport`` is *byte-identical* whether cells run in
the calling process, in a two-worker pool, or in a three-worker pool, with
or without the on-disk trace cache.
"""

import pytest

from repro.experiments import run_consolidated_experiment, run_experiment
from repro.sweeps import run_sweep

#: Tiny but non-trivial: two workloads, four cores, real engine mix.
FAST = dict(workloads=["oltp_db2", "web_search"], num_cores=4, blocks_per_core=2_000, seed=11)


@pytest.fixture(scope="module")
def serial_json():
    return run_experiment(**FAST).to_json()


class TestSerialParallelIdentity:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_parallel_json_is_byte_identical(self, serial_json, workers):
        parallel = run_experiment(workers=workers, **FAST)
        assert parallel.to_json() == serial_json

    def test_workers_one_uses_serial_path(self, serial_json):
        assert run_experiment(workers=1, **FAST).to_json() == serial_json

    def test_trace_cache_does_not_change_results(self, serial_json, tmp_path):
        cold = run_experiment(trace_cache=tmp_path, **FAST)
        warm = run_experiment(trace_cache=tmp_path, **FAST)
        assert cold.to_json() == serial_json
        assert warm.to_json() == serial_json

    def test_parallel_with_shared_trace_cache(self, serial_json, tmp_path):
        report = run_experiment(workers=2, trace_cache=tmp_path, **FAST)
        assert report.to_json() == serial_json

    def test_different_seed_changes_results(self, serial_json):
        other = dict(FAST, seed=FAST["seed"] + 1)
        assert run_experiment(**other).to_json() != serial_json


class TestConsolidatedDeterminism:
    MIXES = [("oltp_db2", "web_frontend")]

    def test_serial_vs_parallel(self):
        kwargs = dict(num_cores=4, blocks_per_core=2_000, seed=5)
        serial = run_consolidated_experiment(self.MIXES, **kwargs)
        parallel = run_consolidated_experiment(self.MIXES, workers=2, **kwargs)
        assert serial.to_json() == parallel.to_json()


class TestSweepDeterminism:
    def test_storage_sweep_serial_vs_parallel(self):
        kwargs = dict(
            values=[8192, 32768],
            workloads=["oltp_db2"],
            num_cores=4,
            blocks_per_core=2_000,
            seed=3,
        )
        serial = run_sweep("storage", **kwargs)
        parallel = run_sweep("storage", workers=2, **kwargs)
        assert serial.to_json() == parallel.to_json()


class TestReportRoundTrip:
    def test_json_round_trip_is_lossless(self, serial_json):
        from repro.experiments import ExperimentReport

        report = ExperimentReport.from_json(serial_json)
        assert report.to_json() == serial_json

    def test_save_and_load(self, tmp_path):
        report = run_experiment(**FAST)
        path = tmp_path / "report.json"
        report.save(path)
        from repro.experiments import ExperimentReport

        assert ExperimentReport.load(path).to_json() == report.to_json()
