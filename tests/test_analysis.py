"""The repro.analysis invariant suite: fixtures, suppressions, mutations.

Three layers of protection for the checkers themselves:

* the seeded fixture trees pin every checker's exact finding codes, files
  and line numbers — and that the clean twins produce nothing;
* the real repository must be clean (the CI gate's contract);
* mutation tests copy ``src/repro``, reintroduce a representative bug
  (drop a field from the result-key digest, delete the NumPy backend's
  exact fallback, unlock a serve mutation) and assert the suite fails —
  the acceptance criterion that the checkers detect regressions, not just
  the fixtures.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import Project, checkers, run_analysis

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "analysis_fixtures"

#: Every finding the violations tree must produce, exactly.
EXPECTED_VIOLATIONS = {
    ("cache-key/uncovered-field", "src/repro/experiments/cells.py", 9),
    ("facade-docstrings/missing", "src/repro/api.py", 7),
    ("facade-docstrings/missing", "src/repro/util.py", 8),
    ("facade-docstrings/unresolved", "src/repro/__init__.py", 9),
    ("cache-key/unknown-exemption", "src/repro/results/__init__.py", 6),
    ("cli-options/duplicate-option", "src/repro/jobs/__main__.py", 8),
    ("lock-discipline/unlocked-mutation", "src/repro/serve/__init__.py", 15),
    ("lock-discipline/unlocked-mutation", "src/repro/serve/__init__.py", 19),
    ("backend-parity/no-bailout", "src/repro/sim/backends/numpy_backend.py", 13),
    ("backend-parity/untested-engine", "src/repro/sim/backends/numpy_backend.py", 13),
    ("backend-parity/no-fallback", "src/repro/sim/backends/numpy_backend.py", 29),
    ("backend-parity/unguarded-dispatch", "src/repro/sim/backends/numpy_backend.py", 32),
    ("determinism/wall-clock", "src/repro/util.py", 9),
    ("determinism/unseeded-random", "src/repro/util.py", 13),
    ("determinism/set-iteration", "src/repro/util.py", 17),
    ("env-registry/literal-name", "src/repro/util.py", 23),
    ("env-registry/raw-read", "src/repro/util.py", 23),
    ("determinism/wall-clock", "src/repro/util.py", 31),
    ("suppression/missing-reason", "src/repro/util.py", 31),
    ("determinism/wall-clock", "src/repro/util.py", 35),
    ("suppression/unknown-checker", "src/repro/util.py", 35),
}


def _triples(findings):
    return {(f.code, f.path, f.line) for f in findings}


class TestRegistry:
    def test_at_least_five_checkers_registered(self):
        ids = [checker.id for checker in checkers()]
        assert len(ids) >= 5
        assert ids == sorted(ids)
        assert set(ids) >= {
            "determinism",
            "cache-key",
            "backend-parity",
            "lock-discipline",
            "env-registry",
            "cli-options",
            "facade-docstrings",
        }

    def test_unknown_checker_id_rejected(self):
        with pytest.raises(KeyError, match="nope"):
            run_analysis(project=Project(FIXTURES / "clean"), checker_ids=["nope"])


class TestFixtures:
    def test_violations_tree_yields_exactly_the_seeded_findings(self):
        findings = run_analysis(project=Project(FIXTURES / "violations"))
        assert _triples(findings) == EXPECTED_VIOLATIONS

    def test_every_checker_fires_on_the_violations_tree(self):
        findings = run_analysis(project=Project(FIXTURES / "violations"))
        fired = {f.checker_id for f in findings}
        assert fired >= {checker.id for checker in checkers()}

    def test_clean_twin_is_silent(self):
        assert run_analysis(project=Project(FIXTURES / "clean")) == []

    def test_checker_subset_selection(self):
        findings = run_analysis(
            project=Project(FIXTURES / "violations"), checker_ids=["cli-options"]
        )
        codes = {f.code for f in findings if f.checker_id == "cli-options"}
        assert codes == {"cli-options/duplicate-option"}


class TestSuppressions:
    def test_valid_line_suppression_silences_the_finding(self):
        # util.py:27 has a wall-clock call with a reasoned allow[determinism];
        # no finding may anchor there while its unsuppressed twins are caught.
        findings = run_analysis(project=Project(FIXTURES / "violations"))
        lines = {f.line for f in findings if f.path == "src/repro/util.py"}
        assert 27 not in lines

    def test_missing_reason_disables_and_reports_the_suppression(self):
        triples = _triples(run_analysis(project=Project(FIXTURES / "violations")))
        assert ("suppression/missing-reason", "src/repro/util.py", 31) in triples
        assert ("determinism/wall-clock", "src/repro/util.py", 31) in triples

    def test_allow_file_covers_the_whole_module(self, tmp_path):
        package = tmp_path / "src" / "repro"
        package.mkdir(parents=True)
        (package / "timing.py").write_text(
            "# repro: allow-file[determinism] fixture: a timing-only module\n"
            "import time\n\n\n"
            "def now():\n"
            "    return time.time()\n"
        )
        findings = run_analysis(
            project=Project(tmp_path), checker_ids=["determinism"]
        )
        assert findings == []

    def test_standalone_comment_line_covers_the_next_line(self, tmp_path):
        package = tmp_path / "src" / "repro"
        package.mkdir(parents=True)
        (package / "timing.py").write_text(
            "import time\n\n\n"
            "def now():\n"
            "    # repro: allow[determinism] fixture: covers the next line\n"
            "    return time.time()\n"
        )
        findings = run_analysis(
            project=Project(tmp_path), checker_ids=["determinism"]
        )
        assert findings == []

    def test_string_literal_cannot_fake_a_suppression(self, tmp_path):
        package = tmp_path / "src" / "repro"
        package.mkdir(parents=True)
        (package / "timing.py").write_text(
            "import time\n\n"
            'NOTE = "# repro: allow-file[determinism] not a comment"\n\n\n'
            "def now():\n"
            "    return time.time()\n"
        )
        findings = run_analysis(
            project=Project(tmp_path), checker_ids=["determinism"]
        )
        assert [f.code for f in findings] == ["determinism/wall-clock"]


class TestRealRepository:
    def test_the_repo_itself_is_clean(self):
        assert run_analysis(repo_root=REPO_ROOT) == []


def _copy_repo(tmp_path) -> Path:
    root = tmp_path / "repo"
    (root / "src").mkdir(parents=True)
    shutil.copytree(
        REPO_ROOT / "src" / "repro",
        root / "src" / "repro",
        ignore=shutil.ignore_patterns("__pycache__"),
    )
    (root / "tests").mkdir()
    shutil.copy(REPO_ROOT / "tests" / "test_backends.py", root / "tests")
    return root


def _edit(path: Path, old: str, new: str) -> None:
    text = path.read_text()
    assert old in text, f"mutation anchor missing from {path.name}: {old!r}"
    path.write_text(text.replace(old, new, 1))


class TestMutations:
    """Deliberate regressions in a copy of src/repro must fail the suite."""

    def test_dropping_a_field_from_the_result_key_fails(self, tmp_path):
        root = _copy_repo(tmp_path)
        _edit(
            root / "src" / "repro" / "results" / "__init__.py",
            '        "engine": cell.engine,\n',
            "",
        )
        findings = run_analysis(project=Project(root), checker_ids=["cache-key"])
        assert any(
            f.code == "cache-key/uncovered-field" and "engine" in f.message
            for f in findings
        )

    def test_removing_the_exact_fallback_fails(self, tmp_path):
        root = _copy_repo(tmp_path)
        _edit(
            root / "src" / "repro" / "sim" / "backends" / "numpy_backend.py",
            "        self._python.run(lanes, inflight, prefetcher, llc)\n",
            "        return\n",
        )
        findings = run_analysis(project=Project(root), checker_ids=["backend-parity"])
        assert any(f.code == "backend-parity/no-fallback" for f in findings)

    def test_unlocking_a_serve_mutation_fails(self, tmp_path):
        root = _copy_repo(tmp_path)
        _edit(
            root / "src" / "repro" / "serve" / "__init__.py",
            "        with self._lock:\n"
            "            if not self._started:\n"
            "                return\n"
            "            self._started = False\n",
            "        if not self._started:\n"
            "            return\n"
            "        self._started = False\n"
            "        with self._lock:\n",
        )
        findings = run_analysis(project=Project(root), checker_ids=["lock-discipline"])
        assert any(
            f.code == "lock-discipline/unlocked-mutation" and "_started" in f.message
            for f in findings
        )

    def test_stripping_a_facade_docstring_fails(self, tmp_path):
        root = _copy_repo(tmp_path)
        _edit(
            root / "src" / "repro" / "results" / "__init__.py",
            '        """The result key of a cell under this cache\'s code-version tag."""\n',
            "",
        )
        findings = run_analysis(
            project=Project(root), checker_ids=["facade-docstrings"]
        )
        assert any(
            f.code == "facade-docstrings/missing" and "ResultCache.key_for" in f.message
            for f in findings
        )

    def test_raw_environ_read_fails(self, tmp_path):
        root = _copy_repo(tmp_path)
        _edit(
            root / "src" / "repro" / "experiments" / "cells.py",
            "    raw = envvars.WORKERS.read()\n",
            '    raw = os.environ.get("REPRO_WORKERS", "").strip() or None\n',
        )
        findings = run_analysis(project=Project(root), checker_ids=["env-registry"])
        codes = {f.code for f in findings}
        assert {"env-registry/raw-read", "env-registry/literal-name"} <= codes


class TestCommandLine:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )

    def test_clean_repo_exits_zero(self):
        result = self._run("--root", str(REPO_ROOT))
        assert result.returncode == 0, result.stdout + result.stderr
        assert "analysis OK" in result.stdout

    def test_violations_exit_nonzero_with_json_payload(self):
        result = self._run(
            "--root", str(FIXTURES / "violations"), "--json", "-"
        )
        assert result.returncode == 1
        # stdout carries the JSON document first, then the human lines; parse
        # the document by brace matching from the start.
        text = result.stdout
        depth = 0
        end = 0
        for index, char in enumerate(text):
            if char == "{":
                depth += 1
            elif char == "}":
                depth -= 1
                if depth == 0:
                    end = index + 1
                    break
        payload = json.loads(text[:end])
        assert payload["count"] == len(EXPECTED_VIOLATIONS)
        triples = {
            (f["code"], f["path"], f["line"]) for f in payload["findings"]
        }
        assert triples == EXPECTED_VIOLATIONS

    def test_list_names_every_checker(self):
        result = self._run("--list")
        assert result.returncode == 0
        for checker in checkers():
            assert checker.id in result.stdout

    def test_front_door_routes_analysis(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "analysis", "--root", str(REPO_ROOT)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stdout + result.stderr
