"""TraceCache bounds: LRU size cap, stale-version pruning, concurrency."""

import os
import time

import pytest

from repro.config import scaled_system
from repro.errors import ConfigurationError
from repro.workloads.generator import generate_traces
from repro.workloads.suite import scaled_workload, workload_by_name
from repro.workloads.trace_cache import (
    CACHE_FORMAT_VERSION,
    MAX_BYTES_ENV_VAR,
    TraceCache,
    trace_cache_key,
)

SYSTEM = scaled_system()


def make_trace(seed: int, blocks: int = 300):
    spec = scaled_workload(workload_by_name("oltp_db2"), SYSTEM.scale)
    key = trace_cache_key(spec, SYSTEM, seed, 2, blocks)
    trace = generate_traces(spec, SYSTEM, seed=seed, num_cores=2, blocks_per_core=blocks)
    return key, trace


def entry_sidecars(path):
    return sorted(path.glob(f"v{CACHE_FORMAT_VERSION}-*.json"))


def entry_size(cache, key):
    return (
        cache._sidecar_path(key).stat().st_size + cache._column_path(key).stat().st_size
    )


def touch_entry(cache, key, timestamp):
    for path in (cache._sidecar_path(key), cache._column_path(key)):
        os.utime(path, (timestamp, timestamp))


class TestSizeCap:
    def test_store_evicts_oldest_beyond_cap(self, tmp_path):
        key0, trace = make_trace(0)
        probe = TraceCache(tmp_path, max_bytes=0)
        probe.store(key0, trace)
        size = entry_size(probe, key0)
        probe._remove_entry(key0)
        # Room for two entries; capping after four stores must keep only
        # the two newest (distinct mtimes make LRU order deterministic on
        # coarse filesystem timestamps).
        keys = []
        base = time.time()
        for seed in range(4):
            key, trace = make_trace(seed)
            keys.append(key)
            probe.store(key, trace)
            touch_entry(probe, key, base + seed)
        cache = TraceCache(tmp_path, max_bytes=int(size * 2.5))
        cache._enforce_cap()
        assert cache.evicted == 2
        assert cache.load(keys[0]) is None
        assert cache.load(keys[1]) is None
        assert cache.load(keys[2]) is not None
        assert cache.load(keys[3]) is not None

    def test_load_refreshes_lru_position(self, tmp_path):
        key0, trace0 = make_trace(0)
        probe = TraceCache(tmp_path, max_bytes=0)
        probe.store(key0, trace0)
        size = entry_size(probe, key0)
        cache = TraceCache(tmp_path, max_bytes=int(size * 2.5))
        key1, trace1 = make_trace(1)
        cache.store(key1, trace1)
        now = time.time()
        touch_entry(cache, key0, now - 100)
        touch_entry(cache, key1, now - 50)
        # Touch the older entry via load; the next store must evict key1.
        assert cache.load(key0) is not None
        key2, trace2 = make_trace(2)
        cache.store(key2, trace2)
        assert cache.load(key0) is not None
        assert cache.load(key1) is None

    def test_zero_cap_means_unbounded(self, tmp_path):
        cache = TraceCache(tmp_path, max_bytes=0)
        for seed in range(3):
            key, trace = make_trace(seed)
            cache.store(key, trace)
        assert cache.evicted == 0
        assert len(entry_sidecars(tmp_path)) == 3

    def test_env_var_sets_cap(self, tmp_path, monkeypatch):
        monkeypatch.setenv(MAX_BYTES_ENV_VAR, "12345")
        assert TraceCache(tmp_path).max_bytes == 12345
        monkeypatch.setenv(MAX_BYTES_ENV_VAR, "not-a-number")
        with pytest.raises(ConfigurationError):
            TraceCache(tmp_path)
        monkeypatch.setenv(MAX_BYTES_ENV_VAR, "-1")
        with pytest.raises(ConfigurationError):
            TraceCache(tmp_path)


class TestVersionPruning:
    def test_open_prunes_older_versions_and_legacy_names(self, tmp_path):
        digest = "deadbeef" * 8  # 64 hex chars, like a real entry name
        stale_old_format = tmp_path / f"{digest}.pkl"
        stale_old_format.write_bytes(b"legacy PR-2 entry")
        stale_pickle_version = tmp_path / f"v{CACHE_FORMAT_VERSION - 1}-{digest}.pkl"
        stale_pickle_version.write_bytes(b"pickle-era versioned entry")
        newer_version = tmp_path / f"v{CACHE_FORMAT_VERSION + 1}-{digest}.npy"
        newer_version.write_bytes(b"a newer checkout's entry")
        unrelated = tmp_path / "notes.txt"
        unrelated.write_text("keep me")
        foreign_pickle = tmp_path / "model.pkl"
        foreign_pickle.write_bytes(b"someone else's pickle")
        foreign_npy = tmp_path / "weights.npy"
        foreign_npy.write_bytes(b"someone else's array")
        # Bare sha256-hex names were only ever written as .pkl; unversioned
        # hex .npy/.json belong to other content-addressed stores.
        foreign_hex_npy = tmp_path / f"{digest}.npy"
        foreign_hex_npy.write_bytes(b"another store's artifact")
        foreign_hex_json = tmp_path / f"{digest}.json"
        foreign_hex_json.write_text("{}")
        cache = TraceCache(tmp_path)
        key, trace = make_trace(0)
        cache.store(key, trace)
        assert not stale_old_format.exists()
        assert not stale_pickle_version.exists()
        assert newer_version.exists(), "a newer checkout's entries must survive"
        assert unrelated.exists()
        assert foreign_pickle.exists(), "pruning must not touch foreign .pkl files"
        assert foreign_npy.exists(), "pruning must not touch foreign .npy files"
        assert foreign_hex_npy.exists(), "bare hex .npy is foreign, not PR-2-era"
        assert foreign_hex_json.exists(), "bare hex .json is foreign, not PR-2-era"
        assert cache.load(key) is not None

    def test_v2_pickle_is_pruned_and_regenerated_as_v3(self, tmp_path):
        """The migration path: a PR-4-era pickle entry disappears on open
        and the same logical trace comes back as a binary v3 entry."""
        key, trace = make_trace(0)
        v2_entry = tmp_path / f"v2-{key}.pkl"
        v2_entry.write_bytes(b"\x80\x04 not actually a TraceSet pickle")
        cache = TraceCache(tmp_path)
        assert not v2_entry.exists(), "v2 entries must be pruned on open"
        assert cache.load(key) is None  # pruned, so a miss: regenerate
        cache.store(key, trace)
        assert cache._sidecar_path(key).exists()
        assert cache._column_path(key).exists()
        assert cache.load(key) == trace

    def test_current_version_entries_survive_reopen(self, tmp_path):
        cache = TraceCache(tmp_path)
        key, trace = make_trace(0)
        cache.store(key, trace)
        reopened = TraceCache(tmp_path)
        assert reopened.load(key) is not None


class TestConcurrentWorkers:
    """Maintenance must tolerate sibling workers racing on the same dir."""

    def test_enforce_cap_tolerates_already_deleted_entries(self, tmp_path, monkeypatch):
        writer = TraceCache(tmp_path, max_bytes=0)
        for seed in range(2):
            key, trace = make_trace(seed)
            writer.store(key, trace)
        capped = TraceCache(tmp_path, max_bytes=1)  # everything is over cap
        stale_listing = capped._entries_by_age()
        assert len(stale_listing) == 2
        # A sibling worker deletes the oldest entry between our listing and
        # our unlink: pin the stale listing and remove the files behind it.
        writer._remove_entry(stale_listing[0][2])
        monkeypatch.setattr(TraceCache, "_entries_by_age", lambda self: stale_listing)
        capped._enforce_cap()  # must not raise on the vanished entry
        monkeypatch.undo()
        assert capped._entries_by_age() == []
        assert capped.evicted == 1  # only the entry *we* removed counts

    def test_prune_tolerates_vanishing_files(self, tmp_path, monkeypatch):
        from pathlib import Path

        digest = "cafebabe" * 8
        stale = tmp_path / f"v2-{digest}.pkl"
        stale.write_bytes(b"stale")
        original_unlink = Path.unlink
        raced = []

        # Patch Path.unlink itself (pruning goes through it on every
        # Python version; os.unlink is bypassed by pathlib on 3.10).
        def racing_unlink(self, *args, **kwargs):
            original_unlink(self)  # the sibling wins the race ...
            raced.append(self)
            return original_unlink(self)  # ... and ours raises

        monkeypatch.setattr(Path, "unlink", racing_unlink)
        TraceCache(tmp_path)  # must not raise
        monkeypatch.undo()
        assert raced == [stale], "the race must actually have been exercised"
        assert not stale.exists()

    def test_sidecar_without_column_is_a_miss(self, tmp_path):
        """Half-deleted entries (eviction removes the sidecar first, but a
        crash can leave either half) fall back to regeneration."""
        cache = TraceCache(tmp_path)
        key, trace = make_trace(0)
        cache.store(key, trace)
        cache._column_path(key).unlink()
        assert cache.load(key) is None
        cache.store(key, trace)
        cache._sidecar_path(key).unlink()
        assert cache.load(key) is None

    def test_orphaned_column_files_count_against_the_cap(self, tmp_path):
        """A crash between the column and sidecar publishes must not leak
        invisible bytes forever: orphans are listed, capped and removed."""
        writer = TraceCache(tmp_path, max_bytes=0)
        key, trace = make_trace(0)
        writer.store(key, trace)
        writer._sidecar_path(key).unlink()  # simulate the half-published state
        orphan = writer._column_path(key)
        assert orphan.exists()
        entries = writer._entries_by_age()
        assert [entry[2] for entry in entries] == [key], "orphan must be listed"
        capped = TraceCache(tmp_path, max_bytes=1)
        capped._enforce_cap()
        assert not orphan.exists(), "orphan bytes must be reclaimable"

    def test_store_leaves_no_temp_files(self, tmp_path):
        cache = TraceCache(tmp_path)
        key, trace = make_trace(0)
        cache.store(key, trace)
        assert not list(tmp_path.glob("*.tmp"))
