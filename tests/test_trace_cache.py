"""TraceCache bounds: LRU size cap and stale-version pruning."""

import os
import time

import pytest

from repro.config import scaled_system
from repro.errors import ConfigurationError
from repro.workloads.generator import generate_traces
from repro.workloads.suite import scaled_workload, workload_by_name
from repro.workloads.trace_cache import (
    CACHE_FORMAT_VERSION,
    MAX_BYTES_ENV_VAR,
    TraceCache,
    trace_cache_key,
)

SYSTEM = scaled_system()


def make_trace(seed: int, blocks: int = 300):
    spec = scaled_workload(workload_by_name("oltp_db2"), SYSTEM.scale)
    key = trace_cache_key(spec, SYSTEM, seed, 2, blocks)
    trace = generate_traces(spec, SYSTEM, seed=seed, num_cores=2, blocks_per_core=blocks)
    return key, trace


def entry_files(path):
    return sorted(path.glob("*.pkl"))


class TestSizeCap:
    def test_store_evicts_oldest_beyond_cap(self, tmp_path):
        key0, trace = make_trace(0)
        probe = TraceCache(tmp_path, max_bytes=0)
        probe.store(key0, trace)
        entry_size = entry_files(tmp_path)[0].stat().st_size
        for path in entry_files(tmp_path):
            path.unlink()
        # Room for two entries; capping after four stores must keep only
        # the two newest (distinct mtimes make LRU order deterministic on
        # coarse filesystem timestamps).
        keys = []
        base = time.time()
        for seed in range(4):
            key, trace = make_trace(seed)
            keys.append(key)
            probe.store(key, trace)
            os.utime(probe._path(key), (base + seed, base + seed))
        cache = TraceCache(tmp_path, max_bytes=int(entry_size * 2.5))
        cache._enforce_cap()
        assert cache.evicted == 2
        assert cache.load(keys[0]) is None
        assert cache.load(keys[1]) is None
        assert cache.load(keys[2]) is not None
        assert cache.load(keys[3]) is not None

    def test_load_refreshes_lru_position(self, tmp_path):
        key0, trace0 = make_trace(0)
        probe = TraceCache(tmp_path, max_bytes=0)
        probe.store(key0, trace0)
        entry_size = entry_files(tmp_path)[0].stat().st_size
        cache = TraceCache(tmp_path, max_bytes=int(entry_size * 2.5))
        key1, trace1 = make_trace(1)
        cache.store(key1, trace1)
        now = time.time()
        os.utime(cache._path(key0), (now - 100, now - 100))
        os.utime(cache._path(key1), (now - 50, now - 50))
        # Touch the older entry via load; the next store must evict key1.
        assert cache.load(key0) is not None
        key2, trace2 = make_trace(2)
        cache.store(key2, trace2)
        assert cache.load(key0) is not None
        assert cache.load(key1) is None

    def test_zero_cap_means_unbounded(self, tmp_path):
        cache = TraceCache(tmp_path, max_bytes=0)
        for seed in range(3):
            key, trace = make_trace(seed)
            cache.store(key, trace)
        assert cache.evicted == 0
        assert len(entry_files(tmp_path)) == 3

    def test_env_var_sets_cap(self, tmp_path, monkeypatch):
        monkeypatch.setenv(MAX_BYTES_ENV_VAR, "12345")
        assert TraceCache(tmp_path).max_bytes == 12345
        monkeypatch.setenv(MAX_BYTES_ENV_VAR, "not-a-number")
        with pytest.raises(ConfigurationError):
            TraceCache(tmp_path)
        monkeypatch.setenv(MAX_BYTES_ENV_VAR, "-1")
        with pytest.raises(ConfigurationError):
            TraceCache(tmp_path)


class TestVersionPruning:
    def test_open_prunes_older_versions_and_legacy_names(self, tmp_path):
        digest = "deadbeef" * 8  # 64 hex chars, like a real entry name
        stale_old_format = tmp_path / f"{digest}.pkl"
        stale_old_format.write_bytes(b"legacy PR-2 entry")
        stale_version = tmp_path / f"v{CACHE_FORMAT_VERSION - 1}-{digest}.pkl"
        stale_version.write_bytes(b"older version entry")
        newer_version = tmp_path / f"v{CACHE_FORMAT_VERSION + 1}-{digest}.pkl"
        newer_version.write_bytes(b"a newer checkout's entry")
        unrelated = tmp_path / "notes.txt"
        unrelated.write_text("keep me")
        foreign_pickle = tmp_path / "model.pkl"
        foreign_pickle.write_bytes(b"someone else's pickle")
        cache = TraceCache(tmp_path)
        key, trace = make_trace(0)
        cache.store(key, trace)
        assert not stale_old_format.exists()
        assert not stale_version.exists()
        assert newer_version.exists(), "a newer checkout's entries must survive"
        assert unrelated.exists()
        assert foreign_pickle.exists(), "pruning must not touch foreign .pkl files"
        assert cache.load(key) is not None

    def test_current_version_entries_survive_reopen(self, tmp_path):
        cache = TraceCache(tmp_path)
        key, trace = make_trace(0)
        cache.store(key, trace)
        reopened = TraceCache(tmp_path)
        assert reopened.load(key) is not None
