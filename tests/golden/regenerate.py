"""Regenerate the golden report after a *deliberate* semantic change.

Run from the repository root::

    PYTHONPATH=src python tests/golden/regenerate.py

and commit the refreshed ``report_small.json`` together with the change that
motivated it (the diff of the JSON is the reviewable record of the drift).
"""

from pathlib import Path

from repro.experiments import run_experiment

#: Must match tests/test_golden.py::GOLDEN_CONFIG exactly.
GOLDEN_CONFIG = dict(
    system="scaled",
    workloads=["oltp_db2", "dss_qry2"],
    num_cores=4,
    blocks_per_core=2_500,
    seed=42,
)


def main() -> None:
    report = run_experiment(**GOLDEN_CONFIG)
    path = Path(__file__).parent / "report_small.json"
    report.save(path)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
