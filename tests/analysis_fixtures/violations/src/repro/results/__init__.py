"""Fixture result-key computation: covers alpha only, stale exemptions."""

import hashlib
import json

RESULT_KEY_EXEMPT_CELL_FIELDS = frozenset({"gamma", "zz"})


def result_cache_key(cell):
    payload = {"alpha": cell.alpha}
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()
