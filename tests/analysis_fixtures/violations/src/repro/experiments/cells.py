"""Fixture cell spec with three fields."""

from dataclasses import dataclass


@dataclass(frozen=True)
class CellSpec:
    alpha: str
    beta: int = 0
    gamma: int = 0
