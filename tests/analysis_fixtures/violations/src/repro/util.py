"""Seeded violations: determinism, env-registry and suppression hygiene."""

import os
import random
import time


def stamp():
    return time.time()


def draw():
    return random.random()


def first(items):
    for item in set(items):
        return item
    return None


def workers():
    return os.environ.get("REPRO_FAKE", "")


def stamp_suppressed():
    return time.time()  # repro: allow[determinism] fixture: valid suppression


def stamp_unexplained():
    return time.time()  # repro: allow[determinism]


def stamp_unknown_checker():
    return time.time()  # repro: allow[chronomancy] no checker has this id
