"""Fixture shared-option registry (the one file allowed to declare them)."""

SHARED_OPTION_STRINGS = frozenset({"--seed"})


def add_options(parser, *names):
    for name in names:
        if name == "seed":
            parser.add_argument("--seed", type=int, default=0)
    return parser
