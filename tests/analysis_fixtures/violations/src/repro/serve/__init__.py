"""Fixture job service with unlocked mutations of shared state."""

import queue
import threading


class JobBoard:
    def __init__(self):
        self._lock = threading.Lock()
        self._jobs = {}
        self._queue = queue.Queue()
        self._started = False

    def submit(self, job_id, payload):
        self._jobs[job_id] = payload
        self._queue.put(job_id)

    def start(self):
        self._started = True

    def finish(self, job_id):
        with self._lock:
            self._jobs.pop(job_id, None)

    def _evict_locked(self, job_id):
        del self._jobs[job_id]
