"""Fixture registry: declares exactly one variable."""

import os


class EnvVar:
    def __init__(self, name):
        self.name = name

    def read(self):
        raw = os.environ.get(self.name, "").strip()
        return raw or None


FAKE_DECLARED = EnvVar("REPRO_FAKE_DECLARED")
