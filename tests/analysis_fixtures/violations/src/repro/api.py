"""Seeded class whose public method is undocumented."""


class Gadget:
    """Documented class with an undocumented public method."""

    def poke(self):
        return None
