"""Seeded facade violations: undocumented and unresolvable re-exports."""

from .api import Gadget
from .util import stamp

__all__ = [
    "Gadget",
    "stamp",
    "phantom",
]
