"""Fixture CLI that re-declares a shared flag instead of using add_options."""

import argparse


def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--seed", type=int, default=1)
    return parser
