"""Fixture vectorized backend with broken escape hatches."""


class _Unsupported(Exception):
    pass


class PythonBackend:
    def run(self, lanes, inflight, prefetcher, llc=None):
        return None


def _run_alpha(lanes, llc):
    lanes.reverse()


def _run_beta(lanes, inflight, prefetcher, llc):
    if len(lanes) > 64:
        raise _Unsupported("too many lanes for the fixture closed form")
    lanes.clear()


class NumPyBackend:
    name = "numpy"

    def __init__(self):
        self._python = PythonBackend()

    def run(self, lanes, inflight, prefetcher, llc=None):
        kind = getattr(prefetcher, "kind", "alpha")
        if kind == "alpha":
            _run_alpha(lanes, llc)
            return
        try:
            _run_beta(lanes, inflight, prefetcher, llc)
            return
        except _Unsupported:
            pass
