"""Fixture parity-test stand-in: mentions only the beta engine."""

ENGINE_PARITY_CASES = ["beta"]
