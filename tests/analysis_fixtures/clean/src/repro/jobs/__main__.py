"""Fixture CLI using the shared registry instead of re-declaring flags."""

import argparse

from ..cli import add_options


def build_parser():
    parser = argparse.ArgumentParser()
    add_options(parser, "seed")
    return parser
