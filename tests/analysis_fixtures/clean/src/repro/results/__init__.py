"""Fixture result-key computation: every field covered or exempted."""

import hashlib
import json

#: gamma is a display-only field in this fixture, never read by execution.
RESULT_KEY_EXEMPT_CELL_FIELDS = frozenset({"gamma"})


def result_cache_key(cell):
    payload = {"alpha": cell.alpha, "beta": cell.beta}
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()
