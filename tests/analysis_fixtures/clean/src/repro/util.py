"""The violations' twin: the same helpers, written determinism-safe."""

import random

from .envvars import FAKE_DECLARED


def stamp(logical_step):
    return logical_step


def draw(seed):
    return random.Random(seed).random()


def first(items):
    for item in sorted(set(items)):
        return item
    return None


def workers():
    return FAKE_DECLARED.read() or ""


def stamp_suppressed(clock):
    # A justified suppression on clean code is inert (no "unused" finding).
    return clock()  # repro: allow[determinism] fixture: demonstrates the grammar
