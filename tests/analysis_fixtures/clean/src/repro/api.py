"""Documented helpers the clean facade re-exports."""

#: How many widgets the fixture pretends to have.
WIDGETS = 3


class Documented:
    """A documented class with one public and one private method."""

    def method(self):
        """Return the widget count."""
        return WIDGETS

    def _private(self):
        return None


def documented():
    """Return the widget count via the documented class."""
    return Documented().method()
