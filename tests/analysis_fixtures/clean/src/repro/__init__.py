"""Fixture facade twin: every re-export resolves to a documented definition."""

from . import envvars
from .api import WIDGETS, Documented, documented

__all__ = [
    "envvars",
    "WIDGETS",
    "Documented",
    "documented",
]
