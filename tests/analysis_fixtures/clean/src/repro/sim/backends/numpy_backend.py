"""Fixture vectorized backend with the full escape-hatch discipline."""


class _Unsupported(Exception):
    pass


class PythonBackend:
    def run(self, lanes, inflight, prefetcher, llc=None):
        return None


def _run_alpha(lanes, llc):
    if llc is not None:
        raise _Unsupported("the alpha closed form has no LLC model")
    lanes.reverse()


def _run_beta(lanes, inflight, prefetcher, llc):
    if len(lanes) > 64:
        raise _Unsupported("too many lanes for the fixture closed form")
    lanes.clear()


class NumPyBackend:
    name = "numpy"

    def __init__(self):
        self._python = PythonBackend()

    def run(self, lanes, inflight, prefetcher, llc=None):
        kind = getattr(prefetcher, "kind", "alpha")
        try:
            if kind == "alpha":
                _run_alpha(lanes, llc)
                return
            _run_beta(lanes, inflight, prefetcher, llc)
            return
        except _Unsupported:
            pass
        self._python.run(lanes, inflight, prefetcher, llc)
