"""Fixture parity-test stand-in: both engine tokens are exercised."""

ENGINE_PARITY_CASES = ["alpha", "beta"]
