"""The synthetic workload substrate: code bases, requests, noise, traces."""

from random import Random

import pytest

import repro.workloads as workloads
from repro.config import scaled_system
from repro.errors import ConfigurationError, TraceError
from repro.workloads import (
    CodeBaseBuilder,
    ConsolidationMix,
    CoreTrace,
    DataStreamGenerator,
    OSNoiseModel,
    RequestTraceFactory,
    TraceSet,
    WORKLOAD_NAMES,
    WORKLOAD_SUITE,
    WorkloadTraceGenerator,
    generate_consolidated_traces,
    generate_traces,
    scaled_workload,
    workload_by_name,
)
from repro.workloads.address_space import AddressWindow, BlockAllocator

SYSTEM = scaled_system()


def small_spec(name="oltp_db2"):
    return scaled_workload(workload_by_name(name), 16)


class TestPackageSurface:
    def test_star_export_surface(self):
        # `from repro.workloads import *` must expose everything in __all__.
        exported = {name: getattr(workloads, name) for name in workloads.__all__}
        assert "WorkloadTraceGenerator" in exported
        assert "WORKLOAD_SUITE" in exported

    def test_suite_has_the_papers_seven_workloads(self):
        assert len(WORKLOAD_SUITE) == 7
        assert set(WORKLOAD_NAMES) == {
            "oltp_db2",
            "oltp_oracle",
            "dss_qry2",
            "dss_qry17",
            "media_streaming",
            "web_frontend",
            "web_search",
        }

    def test_unknown_workload_is_a_helpful_error(self):
        with pytest.raises(ConfigurationError, match="known workloads"):
            workload_by_name("oltp_db3")

    def test_scaled_workload_shrinks_footprints(self):
        paper = workload_by_name("oltp_db2")
        scaled = scaled_workload(paper, 16)
        assert scaled.app_code_blocks == paper.app_code_blocks // 16
        assert scaled.blocks_per_core == paper.blocks_per_core // 16
        assert scaled_workload(paper, 1) is paper


class TestCodeBase:
    def test_codebase_fills_window_without_overlap(self):
        window = AddressWindow(base=10_000, size=2_000)
        builder = CodeBaseBuilder(allocator=BlockAllocator(window), target_blocks=1_500, seed=3)
        codebase = builder.build()
        assert codebase.footprint_blocks >= 1_500
        seen = set()
        for function in codebase.functions:
            for run in function.runs:
                for block in run.blocks():
                    assert window.contains(block)
                    assert block not in seen
                    seen.add(block)

    def test_call_graph_is_acyclic(self):
        window = AddressWindow(base=0, size=4_000)
        builder = CodeBaseBuilder(allocator=BlockAllocator(window), target_blocks=3_000, seed=5)
        codebase = builder.build()
        for function in codebase.functions:
            for site in function.call_sites:
                assert site.callee > function.fid

    def test_oversized_target_rejected(self):
        window = AddressWindow(base=0, size=100)
        with pytest.raises(ConfigurationError):
            CodeBaseBuilder(allocator=BlockAllocator(window), target_blocks=200)

    def test_walk_is_deterministic_per_seed(self):
        window = AddressWindow(base=0, size=2_000)
        codebase = CodeBaseBuilder(
            allocator=BlockAllocator(window), target_blocks=1_500, seed=7
        ).build()
        first, second = [], []
        codebase.walk(0, Random(11), first, max_depth=4)
        codebase.walk(0, Random(11), second, max_depth=4)
        assert first == second


class TestRequestsAndNoise:
    def test_request_mix_is_normalised_and_recurrent(self):
        window = AddressWindow(base=0, size=2_000)
        codebase = CodeBaseBuilder(
            allocator=BlockAllocator(window), target_blocks=1_500, seed=1
        ).build()
        factory = RequestTraceFactory(codebase, num_request_types=3, seed=2)
        assert len(factory.request_types) == 3
        rng = Random(0)
        draws = [factory.sample_request_type(rng).name for _ in range(500)]
        # The skewed mix must make the first request type the most common.
        assert draws.count("rq0") > draws.count("rq2")

    def test_noise_emits_blocks_inside_os_window(self):
        window = AddressWindow(base=50_000, size=512)
        noise = OSNoiseModel(window, num_handlers=3, handler_blocks=8, seed=4)
        rng = Random(9)
        out = []
        noise.emit_handler(rng, out)
        assert out and all(window.contains(a) for a in out)
        assert noise.next_interval(rng) >= 1


class TestTraceContainers:
    def test_empty_trace_rejected(self):
        with pytest.raises(TraceError):
            CoreTrace(core_id=0, addresses=[])

    def test_duplicate_core_rejected(self):
        trace = CoreTrace(core_id=0, addresses=[1, 2, 3])
        with pytest.raises(TraceError):
            TraceSet(traces=[trace, CoreTrace(core_id=0, addresses=[4])])

    def test_trace_set_lookup_and_footprint(self):
        traces = [CoreTrace(core_id=i, addresses=[i * 10, i * 10 + 1]) for i in range(3)]
        trace_set = TraceSet(traces=traces)
        assert trace_set.num_cores == 3
        assert trace_set.for_core(1).addresses == [10, 11]
        assert trace_set.footprint() == {0, 1, 10, 11, 20, 21}
        with pytest.raises(TraceError):
            trace_set.for_core(99)


class TestGenerator:
    def test_generation_is_deterministic(self):
        spec = small_spec()
        first = generate_traces(spec, SYSTEM, seed=3, num_cores=2, blocks_per_core=2_000)
        second = generate_traces(spec, SYSTEM, seed=3, num_cores=2, blocks_per_core=2_000)
        assert first.for_core(0).addresses == second.for_core(0).addresses
        assert first.for_core(1).addresses == second.for_core(1).addresses

    def test_cores_are_homogeneous_but_not_identical(self):
        spec = small_spec()
        trace_set = generate_traces(spec, SYSTEM, seed=3, num_cores=2, blocks_per_core=3_000)
        a = trace_set.for_core(0)
        b = trace_set.for_core(1)
        assert a.addresses != b.addresses
        shared = a.footprint() & b.footprint()
        # Every core serves the same request mix, so the instruction
        # footprints overlap heavily.
        assert len(shared) / len(a.footprint()) > 0.5

    def test_trace_respects_length_and_windows(self):
        spec = small_spec()
        generator = WorkloadTraceGenerator(spec, SYSTEM, seed=1)
        trace = generator.core_trace(0, 2_500)
        assert trace.num_accesses == 2_500
        layout = generator.layout
        for address in trace.addresses:
            assert layout.application_code.contains(address) or layout.os_code.contains(address)

    def test_os_noise_present_in_traces(self):
        spec = small_spec()
        generator = WorkloadTraceGenerator(spec, SYSTEM, seed=1)
        trace = generator.core_trace(0, 4_000)
        os_blocks = [a for a in trace.addresses if generator.layout.os_code.contains(a)]
        assert os_blocks, "expected interrupt handlers in the fetch stream"


class TestConsolidation:
    def test_even_split(self):
        specs = [small_spec("oltp_db2"), small_spec("web_search")]
        mix = ConsolidationMix.even_split(specs, 5)
        assert mix.total_cores == 5
        assert [cores for _, cores in mix.entries] == [3, 2]

    def test_consolidated_footprints_are_disjoint(self):
        specs = [small_spec("oltp_db2"), small_spec("web_search")]
        mix = ConsolidationMix.even_split(specs, 4)
        trace_set = generate_consolidated_traces(mix, SYSTEM, seed=2, blocks_per_core=1_500)
        first = trace_set.for_core(0).footprint() | trace_set.for_core(1).footprint()
        second = trace_set.for_core(2).footprint() | trace_set.for_core(3).footprint()
        assert not (first & second)
        assert trace_set.workload_of_core[0] == "oltp_db2"
        assert trace_set.workload_of_core[3] == "web_search"

    def test_mix_cannot_exceed_system_cores(self):
        specs = [small_spec("oltp_db2")]
        mix = ConsolidationMix(entries=((specs[0], SYSTEM.num_cores + 1),))
        with pytest.raises(ConfigurationError):
            generate_consolidated_traces(mix, SYSTEM, blocks_per_core=100)


class TestDataStream:
    def test_stream_stays_in_window_and_is_deterministic(self):
        window = AddressWindow(base=1_000_000, size=10_000)
        generator = DataStreamGenerator(window, seed=5)
        first = generator.generate(0, 3_000)
        second = generator.generate(0, 3_000)
        assert first == second
        assert len(first) == 3_000
        assert all(window.contains(a) for a in first)

    def test_hot_set_dominates(self):
        window = AddressWindow(base=0, size=10_000)
        generator = DataStreamGenerator(window, hot_fraction=0.05, hot_access_probability=0.7)
        stream = generator.generate(1, 5_000)
        hot = sum(1 for a in stream if a < generator.hot_blocks)
        assert hot / len(stream) > 0.5

    def test_degenerate_all_hot_window_terminates(self):
        # hot_fraction=1 leaves no cold region; the generator must still
        # make progress instead of spinning forever.
        window = AddressWindow(base=0, size=64)
        generator = DataStreamGenerator(window, hot_fraction=1.0, hot_access_probability=0.0)
        stream = generator.generate(0, 100)
        assert len(stream) == 100
        assert all(window.contains(a) for a in stream)
