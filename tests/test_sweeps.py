"""The sweeps package: axes, JSON round-trip, CLI and checks."""

import pytest

from repro.errors import ConfigurationError
from repro.sweeps import SweepReport, format_sweep, run_sweep
from repro.sweeps.__main__ import build_parser, main

#: Tiny settings so each sweep point costs ~0.1s.
FAST = dict(workloads=["oltp_db2"], num_cores=4, blocks_per_core=2_000, seed=0)


class TestRunSweep:
    def test_storage_axis_points_and_ordering(self):
        report = run_sweep("storage", values=[8192, 32768], **FAST)
        assert report.axis == "storage"
        assert [point.value for point in report.points] == [8192, 32768]
        assert report.check(tolerance=0.10) == []
        for point in report.points:
            assert point.report.params["history_entries"] == point.value

    def test_cores_axis_traces_requested_cores(self):
        report = run_sweep(
            "cores", values=[2, 4], workloads=["oltp_db2"], blocks_per_core=2_000
        )
        assert [point.value for point in report.points] == [2, 4]
        assert report.check() == []

    def test_cores_axis_sizes_the_system_to_the_point(self):
        """≤16-core points must not simulate against an unshrunk 16-slice LLC."""
        report = run_sweep("cores", values=[4], workloads=["oltp_db2"], blocks_per_core=2_000)
        assert report.points[0].report.params["num_cores"] == 4
        from repro.experiments.cells import CellSpec, system_for_cell

        system = system_for_cell(CellSpec(workload="oltp_db2", engine="none", num_cores=4))
        assert system.num_cores == 4
        assert system.llc_total_blocks == 4 * system.llc.size_bytes_per_core // 64

    def test_cores_axis_beyond_sixteen_cores(self):
        """Regression: ``--axis cores --values 32`` used to crash with
        'trace set has 32 cores but the system only has 16'."""
        report = run_sweep(
            "cores", values=[24], workloads=["oltp_db2"], blocks_per_core=1_000
        )
        point = report.points[0]
        row = point.report.rows[0]
        assert set(row.outcomes) == {"next_line", "pif", "shift"}
        assert all(outcome.coverage > 0 for outcome in row.outcomes.values())

    def test_llc_axis_shrinks_the_shared_llc(self):
        # 256 KB is the smallest point at which this 4-core test system
        # (4 LLC slices, so a quarter of the default capacity) still holds
        # the Section 5.4 bound; the full 16-slice CI sweep goes to 64 KB.
        report = run_sweep("llc", values=[256, 512], **FAST)
        assert [point.value for point in report.points] == [256, 512]
        assert [point.label for point in report.points] == ["256KB", "512KB"]
        assert report.check() == []
        small, large = report.points
        assert small.report.params["llc_kb_per_core"] == 256
        # Both points carry populated LLC metrics.  (Hit-ratio monotonicity
        # across capacities is *not* asserted: changing the set count also
        # changes the block-to-set conflict map, so it is not a theorem for
        # set-associative LRU.)
        for point in (small, large):
            for row in point.report.rows:
                assert 0.0 < row.outcomes["shift"].llc_hit_ratio <= 1.0
                assert 0.0 < row.baseline_llc_hit_ratio <= 1.0

    def test_llc_axis_rejects_non_positive_sizes(self):
        """A 0 KB point must error, not silently run the default slice."""
        with pytest.raises(ConfigurationError):
            run_sweep("llc", values=[0], **FAST)

    def test_llc_axis_check_flags_hit_ratio_gaps(self):
        report = run_sweep("llc", values=[512], **FAST)
        point_row = report.points[0].report.rows[0]
        point_row.outcomes["shift"].llc_hit_ratio = (
            point_row.outcomes["pif"].llc_hit_ratio - 0.2
        )
        violations = report.check()
        assert any("history virtualization" in violation for violation in violations)

    def test_seeds_axis(self):
        report = run_sweep("seeds", values=[0, 1], workloads=["oltp_db2"],
                           num_cores=4, blocks_per_core=2_000)
        assert [point.value for point in report.points] == [0, 1]
        jsons = {point.report.to_json() for point in report.points}
        assert len(jsons) == 2  # different seeds, different traces

    def test_consolidation_axis(self):
        report = run_sweep(
            "consolidation",
            values=[("oltp_db2", "web_frontend")],
            num_cores=4,
            blocks_per_core=2_000,
        )
        assert report.points[0].label == "oltp_db2+web_frontend"
        row = report.points[0].report.rows[0]
        assert set(row.outcomes) == {"next_line", "pif", "shift"}

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sweep("voltage")

    def test_empty_values_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sweep("storage", values=[], **FAST)

    def test_shift_to_pif_ratios(self):
        report = run_sweep("storage", values=[32768], **FAST)
        ratios = report.points[0].shift_to_pif_ratios()
        assert len(ratios) == 1
        assert ratios[0] > 0.8

    def test_json_round_trip(self):
        report = run_sweep("storage", values=[32768], **FAST)
        restored = SweepReport.from_json(report.to_json())
        assert restored.to_json() == report.to_json()

    def test_save_and_load(self, tmp_path):
        report = run_sweep("cores", values=[2], workloads=["oltp_db2"], blocks_per_core=2_000)
        path = tmp_path / "sweep.json"
        report.save(path)
        assert SweepReport.load(path).to_json() == report.to_json()

    def test_format_sweep_lists_every_point(self):
        report = run_sweep("storage", values=[8192, 32768], **FAST)
        table = format_sweep(report)
        assert "8192" in table and "32768" in table
        assert "shift/pif" in table


class TestSweepCli:
    def test_parser_requires_axis(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_check_passes_on_small_storage_sweep(self, capsys):
        code = main(
            [
                "--axis", "storage", "--values", "8192,32768",
                "--workloads", "oltp_db2", "--num-cores", "4",
                "--blocks", "2000", "--check",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "paper ordering holds" in captured.out

    def test_json_output(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        code = main(
            [
                "--axis", "cores", "--values", "2",
                "--workloads", "oltp_db2", "--blocks", "2000",
                "--json", str(out),
            ]
        )
        assert code == 0
        assert SweepReport.load(out).axis == "cores"

    def test_consolidation_values_parsing(self, capsys):
        code = main(
            [
                "--axis", "consolidation",
                "--values", "oltp_db2,web_frontend",
                "--num-cores", "4", "--blocks", "2000",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "oltp_db2+web_frontend" in captured.out

    def test_unknown_workload_is_a_clean_error(self, capsys):
        code = main(["--axis", "storage", "--values", "8192", "--workloads", "nope"])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err
