"""Public API surface: the facade, the dispatcher, shared CLI options, schemas."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.errors import ConfigurationError
from repro.experiments import REPORT_SCHEMA_VERSION, ExperimentReport, run_experiment
from repro.sweeps import SweepReport, run_sweep

REPO_ROOT = Path(__file__).resolve().parent.parent
SMALL_ARGS = ["--workloads", "oltp_db2", "--cores", "2", "--blocks", "400"]


def _run_module(args, cwd=None, env=None):
    merged = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src"), **(env or {})}
    merged.pop("REPRO_RESULT_CACHE", None)
    if env:
        merged.update(env)
    return subprocess.run(
        [sys.executable, "-m", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env=merged,
    )


class TestFacade:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_facade_names_are_the_canonical_objects(self):
        from repro.experiments import run_experiment as canonical_experiment
        from repro.results import ResultCache as canonical_cache
        from repro.sweeps import run_sweep as canonical_sweep

        assert repro.run_experiment is canonical_experiment
        assert repro.run_sweep is canonical_sweep
        assert repro.ResultCache is canonical_cache
        assert repro.REPORT_SCHEMA_VERSION == REPORT_SCHEMA_VERSION


class TestDispatcher:
    def test_usage_on_bare_invocation(self):
        result = _run_module(["repro"])
        assert result.returncode == 2
        assert "experiments" in result.stdout and "serve" in result.stdout

    def test_help_exits_zero(self):
        result = _run_module(["repro", "--help"])
        assert result.returncode == 0
        assert "usage: python -m repro" in result.stdout

    def test_unknown_command(self):
        result = _run_module(["repro", "frobnicate"])
        assert result.returncode == 2
        assert "unknown command" in result.stderr

    def test_dispatcher_matches_module_entry_point(self, tmp_path):
        via_dispatcher = _run_module(
            ["repro", "experiments", *SMALL_ARGS, "--json", "d.json"], cwd=tmp_path
        )
        via_module = _run_module(
            ["repro.experiments", *SMALL_ARGS, "--json", "m.json"], cwd=tmp_path
        )
        assert via_dispatcher.returncode == 0, via_dispatcher.stderr
        assert via_module.returncode == 0, via_module.stderr
        assert (tmp_path / "d.json").read_bytes() == (tmp_path / "m.json").read_bytes()

    def test_num_cores_alias_still_works(self, tmp_path):
        aliased = _run_module(
            ["repro.sweeps", "--axis", "cores", "--values", "2", "--num-cores", "2",
             "--workloads", "oltp_db2", "--blocks", "400", "--json", "sweep.json"],
            cwd=tmp_path,
        )
        assert aliased.returncode == 0, aliased.stderr
        payload = json.loads((tmp_path / "sweep.json").read_text())
        assert payload["points"][0]["value"] == 2


class TestResultCacheCLI:
    def test_warm_cli_run_is_byte_identical_and_all_hits(self, tmp_path):
        def invoke(out):
            return _run_module(
                ["repro", "experiments", *SMALL_ARGS, "--json", out,
                 "--result-cache", str(tmp_path / "rc")],
                cwd=tmp_path,
            )

        cold = invoke("cold.json")
        warm = invoke("warm.json")
        assert cold.returncode == 0, cold.stderr
        assert warm.returncode == 0, warm.stderr
        assert (tmp_path / "warm.json").read_bytes() == (tmp_path / "cold.json").read_bytes()
        assert "result cache: 0 hits, 4 misses, 4 stored" in cold.stdout
        assert "result cache: 4 hits, 0 misses, 0 stored" in warm.stdout

    def test_env_default_and_no_result_cache_override(self, tmp_path):
        env = {"REPRO_RESULT_CACHE": str(tmp_path / "env_rc")}
        disabled = _run_module(
            ["repro", "experiments", *SMALL_ARGS, "--no-result-cache"],
            cwd=tmp_path,
            env=env,
        )
        assert disabled.returncode == 0, disabled.stderr
        assert not (tmp_path / "env_rc").exists()
        assert "result cache:" not in disabled.stdout
        enabled = _run_module(
            ["repro", "experiments", *SMALL_ARGS], cwd=tmp_path, env=env
        )
        assert enabled.returncode == 0, enabled.stderr
        assert (tmp_path / "env_rc").is_dir()
        assert "result cache: 0 hits, 4 misses, 4 stored" in enabled.stdout


class TestSharedOptionLint:
    def test_no_shared_flags_declared_outside_cli(self):
        sys.path.insert(0, str(REPO_ROOT / "tools"))
        try:
            from check_cli_options import find_duplicates
        finally:
            sys.path.pop(0)
        assert find_duplicates() == []


class TestSchemaVersioning:
    def _experiment_payload(self):
        return run_experiment(
            workloads=["oltp_db2"], engines=["none"], num_cores=2, blocks_per_core=400
        ).to_dict()

    def test_reports_carry_schema_version(self):
        payload = self._experiment_payload()
        assert payload["schema_version"] == REPORT_SCHEMA_VERSION
        sweep = run_sweep(
            axis="cores", values=[2], workloads=["oltp_db2"], blocks_per_core=400
        ).to_dict()
        assert sweep["schema_version"] == REPORT_SCHEMA_VERSION

    def test_round_trip_is_symmetric(self):
        payload = self._experiment_payload()
        assert ExperimentReport.from_dict(payload).to_dict() == payload

    def test_missing_version_read_as_v1(self):
        payload = self._experiment_payload()
        del payload["schema_version"]
        report = ExperimentReport.from_dict(payload)
        assert report.to_dict()["schema_version"] == REPORT_SCHEMA_VERSION

    @pytest.mark.parametrize("bad", [0, 2, "two"])
    def test_unknown_versions_rejected(self, bad):
        payload = self._experiment_payload()
        payload["schema_version"] = bad
        with pytest.raises(ConfigurationError, match="schema"):
            ExperimentReport.from_dict(payload)

    def test_sweep_unknown_version_rejected(self):
        payload = run_sweep(
            axis="cores", values=[2], workloads=["oltp_db2"], blocks_per_core=400
        ).to_dict()
        payload["schema_version"] = 99
        with pytest.raises(ConfigurationError, match="schema"):
            SweepReport.from_dict(payload)

    def test_cache_stats_never_serialized(self, tmp_path):
        report = run_experiment(
            workloads=["oltp_db2"],
            engines=["none"],
            num_cores=2,
            blocks_per_core=400,
            result_cache=tmp_path,
        )
        assert report.result_cache_stats is not None
        assert "result_cache_stats" not in report.to_dict()
