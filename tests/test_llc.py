"""The shared-LLC model and its fast-path equivalence.

The LLC's LRU state is shared across cores, so the order of LLC accesses is
defined by the generic round-robin loop; every specialized loop in
:mod:`repro.sim._fastpath` (including the per-core loops, via event replay)
must reproduce its ``llc_hits`` / ``memory_misses`` classification and the
aggregate :class:`~repro.sim.llc.LLCStats` *exactly*.
"""

from dataclasses import asdict

import pytest

from repro.config import (
    LLCConfig,
    scaled_pif_config,
    scaled_shift_config,
    scaled_system,
)
from repro.errors import SimulationError
from repro.sim import SharedLLC, SimulationEngine, simulate
from repro.sim.prefetchers import (
    ConsolidatedSHIFTPrefetcher,
    NextLinePrefetcher,
    NullPrefetcher,
    PIFPrefetcher,
    Prefetcher,
    SHIFTPrefetcher,
)
from repro.workloads.generator import generate_traces
from repro.workloads.suite import scaled_workload, workload_by_name

SYSTEM = scaled_system()


def tiny_llc(blocks=32, associativity=2, banks=4):
    config = LLCConfig(
        size_bytes_per_core=blocks * 64, associativity=associativity, banks=banks
    )
    return SharedLLC(config, num_cores=1)


class TestSharedLLC:
    def test_geometry_from_config(self):
        llc = SharedLLC(SYSTEM.llc, SYSTEM.num_cores)
        assert llc.total_blocks == SYSTEM.llc_total_blocks
        assert llc.num_sets * llc.associativity == llc.total_blocks
        assert llc.banks == SYSTEM.llc.banks

    def test_lru_eviction_order(self):
        llc = tiny_llc(blocks=2, associativity=2)  # one 2-way set
        assert not llc.access_demand(0)
        assert not llc.access_demand(1)
        assert llc.access_demand(0)  # 0 becomes MRU
        assert not llc.access_demand(2)  # evicts 1
        assert llc.contains(0) and llc.contains(2) and not llc.contains(1)

    def test_prefetch_fills_serve_later_demand(self):
        llc = tiny_llc()
        assert not llc.access_prefetch(7)
        assert llc.access_demand(7)
        assert llc.prefetch_misses == 1 and llc.demand_hits == 1

    def test_pinned_blocks_reduce_set_capacity(self):
        llc = tiny_llc(blocks=2, associativity=2)  # one set, two ways
        llc.pin_region(100, 1)
        assert llc.pinned_blocks == 1
        assert llc.contains(100)
        assert not llc.access_demand(0)
        assert not llc.access_demand(2)  # evicts 0: only one way remains
        assert not llc.contains(0)
        # The pinned block never leaves.
        assert llc.contains(100)

    def test_pin_region_must_leave_a_way_free(self):
        llc = tiny_llc(blocks=2, associativity=2)  # one set
        with pytest.raises(SimulationError):
            llc.pin_region(0, 2)

    def test_pinning_is_idempotent(self):
        llc = tiny_llc()
        llc.pin_region(0, 4)
        llc.pin_region(0, 4)
        assert llc.pinned_blocks == 4

    def test_accessing_a_pinned_block_always_hits(self):
        llc = tiny_llc(blocks=2, associativity=2)  # one set
        llc.pin_region(100, 1)
        assert llc.access_demand(100)
        assert llc.access_prefetch(100)
        # The hit must not insert a duplicate into the LRU ways: the one
        # remaining instruction way still holds a block across it.
        assert not llc.access_demand(0)
        assert llc.access_demand(100)
        assert llc.access_demand(0)

    def test_bank_accesses_accumulate(self):
        llc = tiny_llc(blocks=32, associativity=2, banks=4)
        for address in range(16):
            llc.access_demand(address)
        stats = llc.stats()
        assert sum(stats.bank_accesses) == 16
        assert len(stats.bank_accesses) == 4

    def test_stats_ratios(self):
        llc = tiny_llc()
        llc.access_demand(1)
        llc.access_demand(1)
        llc.access_prefetch(2)
        llc.add_history_reads(5)
        stats = llc.stats()
        assert stats.demand_hit_ratio == 0.5
        assert stats.instruction_hit_ratio == pytest.approx(1 / 3)
        assert stats.history_reads == 5


@pytest.fixture(scope="module")
def trace_set():
    spec = scaled_workload(workload_by_name("oltp_db2"), 16)
    return generate_traces(spec, SYSTEM, seed=2, num_cores=4, blocks_per_core=3_000)


def core_dicts(result):
    return [asdict(core) for core in result.cores]


def llc_dict(result):
    assert result.llc is not None
    return asdict(result.llc)


# Forcing shares_state=True (or subclassing the SHIFT engines) routes a
# prefetcher through the generic round-robin loop, the semantic reference
# the LLC-aware fast paths are pinned to.
class _GenericBaseline(Prefetcher):
    shares_state = True


class _GenericNextLine(NextLinePrefetcher):
    shares_state = True


class _GenericPIF(PIFPrefetcher):
    shares_state = True


class _GenericSHIFT(SHIFTPrefetcher):
    pass


class _GenericConsolidated(ConsolidatedSHIFTPrefetcher):
    pass


class TestLLCFastPathEquivalence:
    """Fast paths vs. the generic loop: full equality, LLC counters included."""

    def pairs(self):
        pif = scaled_pif_config(16)
        shift = scaled_shift_config(16)
        groups = [(0, 1), (2,)]  # core 3 stays passive
        return [
            (NullPrefetcher(), _GenericBaseline()),
            (NextLinePrefetcher(), _GenericNextLine()),
            (PIFPrefetcher(4, pif), _GenericPIF(4, pif)),
            (SHIFTPrefetcher(4, shift), _GenericSHIFT(4, shift)),
            (
                ConsolidatedSHIFTPrefetcher(groups, shift),
                _GenericConsolidated(groups, shift),
            ),
        ]

    def test_all_engine_families_match_generic_loop(self, trace_set):
        for fast, generic in self.pairs():
            fast_result = SimulationEngine(SYSTEM, fast).run(trace_set)
            generic_result = SimulationEngine(SYSTEM, generic).run(trace_set)
            name = type(fast).__name__
            assert core_dicts(fast_result) == core_dicts(generic_result), name
            assert llc_dict(fast_result) == llc_dict(generic_result), name

    def test_classification_partitions_misses(self, trace_set):
        for engine, kwargs in (
            ("none", {}),
            ("next_line", {}),
            ("pif", {"pif_config": scaled_pif_config(16)}),
            ("shift", {"shift_config": scaled_shift_config(16)}),
        ):
            result = simulate(trace_set, SYSTEM, engine, **kwargs)
            for core in result.cores:
                assert core.llc_hits + core.memory_misses == core.misses

    def test_model_llc_false_restores_pr1_results(self, trace_set):
        result = simulate(trace_set, SYSTEM, "none", model_llc=False)
        assert result.llc is None
        assert all(c.llc_hits == 0 and c.memory_misses == 0 for c in result.cores)


class TestHistoryVirtualization:
    def test_virtualized_shift_pins_its_history_blocks(self, trace_set):
        config = scaled_shift_config(16)
        result = simulate(trace_set, SYSTEM, "shift", shift_config=config)
        assert result.llc.pinned_blocks == config.history_llc_blocks
        assert result.llc.history_reads > 0

    def test_non_virtualized_shift_pins_nothing(self, trace_set):
        config = scaled_shift_config(16, virtualized=False)
        result = simulate(trace_set, SYSTEM, "shift", shift_config=config)
        assert result.llc.pinned_blocks == 0
        assert result.llc.history_reads == 0

    def test_consolidated_shift_pins_one_region_per_group(self, trace_set):
        config = scaled_shift_config(16)
        prefetcher = ConsolidatedSHIFTPrefetcher([(0, 1), (2, 3)], config)
        result = SimulationEngine(SYSTEM, prefetcher).run(trace_set)
        assert (
            result.llc.pinned_blocks
            == 2 * prefetcher.history_llc_blocks_per_group
        )

    def test_virtualization_barely_perturbs_llc_hit_ratio(self, trace_set):
        """Section 5.4: pinned history costs almost nothing in LLC hits."""
        pif = simulate(trace_set, SYSTEM, "pif", pif_config=scaled_pif_config(16))
        shift = simulate(trace_set, SYSTEM, "shift", shift_config=scaled_shift_config(16))
        assert pif.llc_hit_ratio - shift.llc_hit_ratio < 0.05

    def test_cold_misses_bound_memory_misses(self, trace_set):
        """Every distinct block's first LLC access must come from memory."""
        result = simulate(trace_set, SYSTEM, "none")
        assert result.total_memory_misses >= 1
        assert result.total_memory_misses >= len(
            {a for t in trace_set.traces for a in t.addresses}
        ) - result.llc.prefetch_misses
