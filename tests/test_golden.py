"""Golden-report regression test.

``tests/golden/report_small.json`` is a checked-in experiment report.  Any
hot-loop refactor, executor change or prefetcher "cleanup" that shifts a
coverage or speedup value by more than 1e-9 fails this test — results may
only change through a deliberate regeneration of the golden file:

    PYTHONPATH=src python tests/golden/regenerate.py
"""

import json
from pathlib import Path

import pytest

from repro.experiments import run_experiment

GOLDEN_PATH = Path(__file__).parent / "golden" / "report_small.json"

#: Must match tests/golden/regenerate.py exactly.
GOLDEN_CONFIG = dict(
    system="scaled",
    workloads=["oltp_db2", "dss_qry2"],
    num_cores=4,
    blocks_per_core=2_500,
    seed=42,
)

TOLERANCE = 1e-9


@pytest.fixture(scope="module")
def fresh_report():
    return run_experiment(**GOLDEN_CONFIG).to_dict()


@pytest.fixture(scope="module")
def golden_report():
    return json.loads(GOLDEN_PATH.read_text())


class TestGoldenReport:
    def test_structure_matches(self, fresh_report, golden_report):
        assert fresh_report["system_name"] == golden_report["system_name"]
        assert fresh_report["params"] == golden_report["params"]
        fresh_rows = {row["workload"]: row for row in fresh_report["rows"]}
        golden_rows = {row["workload"]: row for row in golden_report["rows"]}
        assert fresh_rows.keys() == golden_rows.keys()
        for workload, golden_row in golden_rows.items():
            assert fresh_rows[workload]["outcomes"].keys() == golden_row["outcomes"].keys()

    def test_values_within_tolerance(self, fresh_report, golden_report):
        fresh_rows = {row["workload"]: row for row in fresh_report["rows"]}
        for golden_row in golden_report["rows"]:
            fresh_row = fresh_rows[golden_row["workload"]]
            for key in ("baseline_mpki", "baseline_miss_ratio"):
                assert fresh_row[key] == pytest.approx(golden_row[key], abs=TOLERANCE), (
                    f"{golden_row['workload']}: {key} drifted"
                )
            for engine, golden_outcome in golden_row["outcomes"].items():
                fresh_outcome = fresh_row["outcomes"][engine]
                for key in ("coverage", "speedup", "mpki", "prefetch_accuracy"):
                    assert fresh_outcome[key] == pytest.approx(
                        golden_outcome[key], abs=TOLERANCE
                    ), f"{golden_row['workload']}/{engine}: {key} drifted"

    def test_parallel_run_matches_golden(self, golden_report):
        parallel = run_experiment(workers=2, **GOLDEN_CONFIG).to_dict()
        fresh_rows = {row["workload"]: row for row in parallel["rows"]}
        for golden_row in golden_report["rows"]:
            fresh_row = fresh_rows[golden_row["workload"]]
            for engine, golden_outcome in golden_row["outcomes"].items():
                for key in ("coverage", "speedup"):
                    assert fresh_row["outcomes"][engine][key] == pytest.approx(
                        golden_outcome[key], abs=TOLERANCE
                    )
