"""Address-space layout: window disjointness and allocator behaviour."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.address_space import (
    AddressWindow,
    BlockAllocator,
    layout_for_workload,
)


class TestAddressWindow:
    def test_contains_half_open(self):
        window = AddressWindow(base=100, size=10)
        assert window.contains(100)
        assert window.contains(109)
        assert not window.contains(110)
        assert not window.contains(99)

    def test_overlap_is_symmetric(self):
        a = AddressWindow(base=0, size=10)
        b = AddressWindow(base=5, size=10)
        c = AddressWindow(base=10, size=10)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c) and not c.overlaps(a)

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigurationError):
            AddressWindow(base=-1, size=10)
        with pytest.raises(ConfigurationError):
            AddressWindow(base=0, size=0)


class TestLayoutDisjointness:
    def test_windows_within_one_workload_are_disjoint(self):
        layout = layout_for_workload(0, 4096, 1024, 65536, 4096)
        windows = layout.all_windows()
        for i, first in enumerate(windows):
            for second in windows[i + 1 :]:
                assert not first.overlaps(second)

    def test_windows_across_workloads_are_disjoint(self):
        layouts = [layout_for_workload(i, 8192, 2048, 65536, 4096) for i in range(4)]
        windows = [w for layout in layouts for w in layout.all_windows()]
        for i, first in enumerate(windows):
            for second in windows[i + 1 :]:
                assert not first.overlaps(second)

    def test_oversized_region_rejected(self):
        with pytest.raises(ConfigurationError):
            layout_for_workload(0, 0x0100_0000, 1024, 1024, 1024)

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            layout_for_workload(-1, 1024, 1024, 1024, 1024)


class TestBlockAllocator:
    def test_sequential_allocation(self):
        allocator = BlockAllocator(AddressWindow(base=1000, size=100))
        first = allocator.allocate(30)
        second = allocator.allocate(20)
        assert first == 1000
        assert second == 1030
        assert allocator.allocated_blocks == 50
        assert allocator.remaining_blocks == 50

    def test_exhaustion_raises(self):
        allocator = BlockAllocator(AddressWindow(base=0, size=10))
        allocator.allocate(10)
        assert allocator.remaining_blocks == 0
        with pytest.raises(ConfigurationError):
            allocator.allocate(1)

    def test_overshoot_raises_without_partial_allocation(self):
        allocator = BlockAllocator(AddressWindow(base=0, size=10))
        allocator.allocate(6)
        with pytest.raises(ConfigurationError):
            allocator.allocate(5)
        # The failed allocation must not consume blocks.
        assert allocator.remaining_blocks == 4
        assert allocator.allocate(4) == 6

    def test_non_positive_allocation_rejected(self):
        allocator = BlockAllocator(AddressWindow(base=0, size=10))
        with pytest.raises(ConfigurationError):
            allocator.allocate(0)
