"""Backend registry behaviour and python/numpy backend parity.

The numpy backend's contract is *exact* equality with the python loops —
every CoreResult counter and the LLC statistics, for every engine family,
cold and warm (its trace-pure memo caches must not leak between runs or
configurations).  These tests pin that contract, the closed-form L1 model
against the reference cache, the vectorized compactor against
SpatialCompactor, and the exact-fallback paths.
"""

import random
from dataclasses import asdict

import pytest

from repro.config import (
    BACKEND_ENV_VAR,
    CacheConfig,
    NextLineConfig,
    scaled_pif_config,
    scaled_shift_config,
    scaled_system,
)
from repro.errors import BackendError
from repro.sim import SimulationEngine, simulate
from repro.sim.backends import (
    available_backends,
    backend_names,
    get_backend,
    resolve_backend_name,
)
from repro.sim.cache import SetAssociativeCache
from repro.sim.prefetchers import Prefetcher, SpatialCompactor
from repro.workloads.generator import generate_traces
from repro.workloads.suite import scaled_workload, workload_by_name

np = pytest.importorskip("numpy")

from repro.sim.backends.numpy_backend import (  # noqa: E402
    _compactor_records,
    _LaneArrays,
)

SYSTEM = scaled_system()

ENGINE_KWARGS = {
    "none": {},
    "next_line": {},
    "pif": {"pif_config": scaled_pif_config(16)},
    "shift": {"shift_config": scaled_shift_config(16)},
}


def small_trace_set(workload="oltp_db2", seed=3, num_cores=3, blocks=1_500):
    spec = scaled_workload(workload_by_name(workload), 16)
    return generate_traces(
        spec, SYSTEM, seed=seed, num_cores=num_cores, blocks_per_core=blocks
    )


def run_pair(trace_set, engine, system=SYSTEM, **kwargs):
    python = simulate(trace_set, system, engine, backend="python", **kwargs)
    numpy_r = simulate(trace_set, system, engine, backend="numpy", **kwargs)
    return python, numpy_r


def assert_equal_results(python, numpy_r):
    assert [asdict(c) for c in python.cores] == [asdict(c) for c in numpy_r.cores]
    assert (python.llc is None) == (numpy_r.llc is None)
    if python.llc is not None:
        assert asdict(python.llc) == asdict(numpy_r.llc)
    assert python.storage_bytes_per_core == numpy_r.storage_bytes_per_core


class TestRegistry:
    def test_python_and_numpy_are_registered(self):
        assert "python" in backend_names()
        assert "numpy" in backend_names()
        assert "python" in available_backends()
        assert "numpy" in available_backends()  # guaranteed by importorskip

    def test_resolution_precedence(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend_name(None) == "python"
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert resolve_backend_name(None) == "numpy"
        assert resolve_backend_name("python") == "python"

    def test_unknown_backend_raises(self):
        with pytest.raises(BackendError, match="unknown backend"):
            get_backend("fortran")

    def test_env_selects_engine_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        engine = SimulationEngine(system=SYSTEM)
        assert engine.backend.name == "numpy"

    def test_get_backend_accepts_instance(self):
        instance = get_backend("python")
        assert get_backend(instance) is instance


class TestL1ClosedForm:
    @pytest.mark.parametrize("assoc", [1, 2])
    @pytest.mark.parametrize("num_sets", [1, 2, 16])
    def test_hit_flags_match_reference_cache(self, assoc, num_sets):
        rng = random.Random(assoc * 100 + num_sets)
        addresses = [rng.randrange(0, 64) for _ in range(2_000)]
        arrays = _LaneArrays(addresses, num_sets, assoc)
        cache = SetAssociativeCache(
            CacheConfig(size_bytes=num_sets * assoc * 64, associativity=assoc)
        )
        expected = []
        for address in addresses:
            if cache.access(address):
                expected.append(True)
            else:
                expected.append(False)
                cache.insert(address)
        assert arrays.l1_hit.tolist() == expected

    def test_associativity_above_two_is_rejected(self):
        from repro.sim.backends.numpy_backend import _Unsupported

        with pytest.raises(_Unsupported):
            _LaneArrays([1, 2, 3], 4, 4)


class TestCompactorVectorization:
    @pytest.mark.parametrize(
        "pattern",
        [
            "random",
            "sequential_runs",
            "descending",  # adversarial for the fixpoint: gentle slopes
            "tight_loop",
        ],
    )
    def test_record_stream_matches_reference(self, pattern):
        rng = random.Random(hash(pattern) & 0xFFFF)
        if pattern == "random":
            addresses = [rng.randrange(0, 500) for _ in range(3_000)]
        elif pattern == "sequential_runs":
            addresses = []
            base = 0
            while len(addresses) < 3_000:
                base = rng.randrange(0, 400)
                addresses.extend(range(base, base + rng.randrange(1, 30)))
        elif pattern == "descending":
            addresses = [3_000 - i for i in range(3_000)]
        else:
            addresses = [10 + (i % 20) for i in range(3_000)]
        reference = SpatialCompactor(8)
        expected = []
        for position, address in enumerate(addresses):
            record = reference.feed(address)
            if record is not None:
                expected.append((position, record[0], record[1]))
        pos, trig, mask, final_trigger, final_mask = _compactor_records(
            np.asarray(addresses, dtype=np.int64), 8, None, 0
        )
        assert list(zip(pos, trig, mask)) == expected
        assert final_trigger == reference._trigger
        assert final_mask == reference._mask

    def test_resumed_compactor_state(self):
        addresses = [5, 6, 7, 100, 101, 3, 4]
        reference = SpatialCompactor(8)
        reference.feed(40)
        reference.feed(42)
        expected = []
        for position, address in enumerate(addresses):
            record = reference.feed(address)
            if record is not None:
                expected.append((position, record[0], record[1]))
        pos, trig, mask, final_trigger, final_mask = _compactor_records(
            np.asarray(addresses, dtype=np.int64), 8, 40, 0b10
        )
        assert list(zip(pos, trig, mask)) == expected
        assert final_trigger == reference._trigger
        assert final_mask == reference._mask


class TestBackendParity:
    @pytest.mark.parametrize("engine", ["none", "next_line", "pif", "shift"])
    def test_counters_and_llc_match(self, engine):
        trace_set = small_trace_set()
        python, numpy_r = run_pair(trace_set, engine, **ENGINE_KWARGS[engine])
        assert_equal_results(python, numpy_r)

    @pytest.mark.parametrize("engine", ["none", "next_line", "pif", "shift"])
    def test_warm_cache_runs_stay_exact(self, engine):
        """Second and third numpy runs replay the memoized pure core; they
        must equal both the cold run and the python backend."""
        trace_set = small_trace_set(seed=7)
        python, cold = run_pair(trace_set, engine, **ENGINE_KWARGS[engine])
        warm = simulate(
            trace_set, SYSTEM, engine, backend="numpy", **ENGINE_KWARGS[engine]
        )
        warm2 = simulate(
            trace_set, SYSTEM, engine, backend="numpy", **ENGINE_KWARGS[engine]
        )
        for numpy_r in (cold, warm, warm2):
            assert_equal_results(python, numpy_r)

    def test_consolidated_shift_parity(self):
        spec_names = ("oltp_db2", "web_search")
        from repro.experiments.cells import CellSpec, consolidation_mix_for, system_for_cell
        from repro.workloads.consolidation import generate_consolidated_traces

        cell = CellSpec(
            workload="+".join(spec_names),
            engine="shift",
            num_cores=4,
            blocks_per_core=1_000,
            consolidation=spec_names,
        )
        sys_config = system_for_cell(cell)
        mix = consolidation_mix_for(cell, sys_config)
        trace_set = generate_consolidated_traces(
            mix, sys_config, seed=0, blocks_per_core=1_000
        )
        groups = [tuple(r) for _, r in mix.core_ranges()]
        python, numpy_r = run_pair(
            trace_set,
            "shift",
            system=sys_config,
            shift_config=scaled_shift_config(16),
            shift_groups=groups,
        )
        assert_equal_results(python, numpy_r)

    def test_next_line_degree_above_one(self):
        trace_set = small_trace_set(seed=11)
        python, numpy_r = run_pair(
            trace_set, "next_line", next_line_config=NextLineConfig(degree=3)
        )
        assert_equal_results(python, numpy_r)

    def test_next_line_overflow_falls_back_exactly(self):
        """A tiny prefetch buffer forces FIFO evictions, which break the
        per-block decoupling; the numpy backend must detect it and produce
        the python results anyway."""
        trace_set = small_trace_set(seed=5)
        from repro.sim.prefetchers import make_prefetcher

        results = {}
        for backend in ("python", "numpy"):
            prefetcher = make_prefetcher(
                "next_line", SYSTEM, next_line_config=NextLineConfig(degree=4)
            )
            engine = SimulationEngine(
                system=SYSTEM,
                prefetcher=prefetcher,
                prefetch_buffer_blocks=4,
                backend=backend,
            )
            results[backend] = engine.run(trace_set)
        assert_equal_results(results["python"], results["numpy"])
        evicted = sum(c.prefetches_unused for c in results["python"].cores)
        assert evicted > 0, "test needs real evictions to exercise the fallback"

    def test_custom_prefetcher_uses_python_loops(self):
        class EveryOther(Prefetcher):
            name = "every_other"
            shares_state = False

            def on_access(self, core_id, block_address, outcome):
                return [block_address + 2] if outcome != 0 else []

        trace_set = small_trace_set(seed=9, num_cores=2, blocks=800)
        results = {}
        for backend in ("python", "numpy"):
            engine = SimulationEngine(
                system=SYSTEM, prefetcher=EveryOther(), backend=backend
            )
            results[backend] = engine.run(trace_set)
        assert_equal_results(results["python"], results["numpy"])

    def test_no_llc_runs_match(self):
        trace_set = small_trace_set(seed=13, num_cores=2, blocks=800)
        for engine in ("none", "next_line", "pif"):
            python = simulate(
                trace_set,
                SYSTEM,
                engine,
                model_llc=False,
                backend="python",
                **ENGINE_KWARGS[engine],
            )
            numpy_r = simulate(
                trace_set,
                SYSTEM,
                engine,
                model_llc=False,
                backend="numpy",
                **ENGINE_KWARGS[engine],
            )
            assert_equal_results(python, numpy_r)
