"""Property-style tests for the array-backed cache structures.

Random operation sequences are replayed against trivial reference models
(an ordered-list LRU per set, a FIFO dict for the buffer); the structures
must agree with the model at every step.  These tests pin the invariants the
inlined hot loops in :mod:`repro.sim._fastpath` rely on.
"""

import random

from repro.config import CacheConfig
from repro.sim import PrefetchBuffer, SetAssociativeCache


class LRUModel:
    """Reference model: per-set MRU-ordered lists, no cleverness."""

    def __init__(self, num_sets: int, associativity: int) -> None:
        self.num_sets = num_sets
        self.associativity = associativity
        self.sets = [[] for _ in range(num_sets)]

    def access(self, block: int) -> bool:
        lines = self.sets[block % self.num_sets]
        if block in lines:
            lines.remove(block)
            lines.insert(0, block)
            return True
        return False

    def insert(self, block: int):
        lines = self.sets[block % self.num_sets]
        if block in lines:
            lines.remove(block)
            lines.insert(0, block)
            return None
        lines.insert(0, block)
        if len(lines) > self.associativity:
            return lines.pop()
        return None


class TestSetAssociativeCacheProperties:
    CONFIGS = [
        CacheConfig(size_bytes=2 * 64, associativity=2),
        CacheConfig(size_bytes=16 * 64, associativity=2),
        CacheConfig(size_bytes=64 * 64, associativity=4),
        CacheConfig(size_bytes=128 * 64, associativity=16),
    ]

    def test_random_ops_match_reference_model(self):
        for config in self.CONFIGS:
            rng = random.Random(config.num_sets * 1000 + config.associativity)
            cache = SetAssociativeCache(config)
            model = LRUModel(config.num_sets, config.associativity)
            blocks = range(config.num_blocks * 3)
            for _ in range(5_000):
                block = rng.choice(blocks)
                op = rng.random()
                if op < 0.5:
                    assert cache.access(block) == model.access(block)
                elif op < 0.9:
                    assert cache.insert(block) == model.insert(block)
                else:
                    lines = model.sets[block % model.num_sets]
                    assert cache.contains(block) == (block in lines)

    def test_capacity_never_exceeded(self):
        config = CacheConfig(size_bytes=8 * 64, associativity=2)
        cache = SetAssociativeCache(config)
        rng = random.Random(7)
        for _ in range(2_000):
            cache.insert(rng.randrange(0, 500))
            assert cache.resident_blocks() <= config.num_blocks
            for lines in cache._sets:
                assert len(lines) <= config.associativity

    def test_hit_after_insert(self):
        config = CacheConfig(size_bytes=32 * 64, associativity=2)
        cache = SetAssociativeCache(config)
        rng = random.Random(13)
        for _ in range(1_000):
            block = rng.randrange(0, 10_000)
            cache.insert(block)
            assert cache.contains(block)
            assert cache.access(block)

    def test_lru_eviction_is_oldest_way(self):
        # One set, four ways: fill, touch in a known order, overflow.
        cache = SetAssociativeCache(CacheConfig(size_bytes=4 * 64, associativity=4))
        for block in (0, 1, 2, 3):
            cache.insert(block)
        cache.access(0)  # LRU order now (MRU) 0, 3, 2, 1 (LRU)
        evicted = cache.insert(4)
        assert evicted == 1
        assert cache.contains(0) and cache.contains(3) and cache.contains(2)
        assert not cache.contains(1)


class TestPrefetchBufferProperties:
    def test_random_ops_match_fifo_model(self):
        rng = random.Random(29)
        capacity = 16
        buffer = PrefetchBuffer(capacity)
        model: dict = {}
        model_evicted = 0
        for step in range(5_000):
            block = rng.randrange(0, 64)
            if rng.random() < 0.6:
                inserted = buffer.insert(block, step)
                if block in model:
                    assert not inserted
                else:
                    assert inserted
                    model[block] = step
                    if len(model) > capacity:
                        oldest = next(iter(model))
                        del model[oldest]
                        model_evicted += 1
            else:
                assert buffer.consume(block) == model.pop(block, None)
            assert len(buffer) == len(model)
            assert len(buffer) <= capacity
            assert buffer.evicted_unused == model_evicted

    def test_late_hit_accounting_preserves_issue_timestamp(self):
        buffer = PrefetchBuffer(8)
        assert buffer.insert(100, issued_at=7)
        # A re-prefetch of an in-flight block must not refresh the timestamp:
        # the original request is already on its way.
        assert not buffer.insert(100, issued_at=25)
        assert buffer.consume(100) == 7
        assert buffer.consume(100) is None

    def test_evicted_unused_counts_only_fifo_evictions(self):
        capacity = 4
        buffer = PrefetchBuffer(capacity)
        for block in range(capacity):
            buffer.insert(block, block)
        assert buffer.evicted_unused == 0
        buffer.consume(0)  # consumed, not wasted
        buffer.insert(10, 10)  # refills the freed slot: no eviction
        assert buffer.evicted_unused == 0
        extra = 3
        for block in range(20, 20 + extra):  # three overflows
            buffer.insert(block, block)
        assert buffer.evicted_unused == extra
        assert len(buffer) == capacity
