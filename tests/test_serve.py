"""The experiment service: validation, dedupe, and a localhost smoke test."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import ConfigurationError
from repro.experiments import ExperimentReport, run_experiment
from repro.serve import (
    DEFAULT_RETAINED_JOBS,
    DONE,
    FAILED,
    QUEUED,
    RETAINED_JOBS_ENV_VAR,
    ExperimentService,
    job_key,
    make_server,
    validate_request,
)
from repro.sweeps import SweepReport

PARAMS = {
    "workloads": ["oltp_db2"],
    "engines": ["none", "pif"],
    "num_cores": 2,
    "blocks_per_core": 400,
    "seed": 3,
}


def _wait(service, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = service.job(job_id)
        if job.status in (DONE, FAILED):
            return job
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} still {service.job(job_id).status} after {timeout}s")


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_request("bake", {})

    def test_unknown_param_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_request("experiment", {"workers": 8})

    def test_sweep_needs_axis(self):
        with pytest.raises(ConfigurationError):
            validate_request("sweep", {"values": [2, 4]})

    def test_job_key_is_order_insensitive(self):
        assert job_key("experiment", {"seed": 1, "num_cores": 2}) == job_key(
            "experiment", {"num_cores": 2, "seed": 1}
        )
        assert job_key("experiment", {"seed": 1}) != job_key("sweep", {"seed": 1})


class TestServiceDirect:
    """Drive ExperimentService without HTTP for deterministic queue states."""

    def test_inflight_dedupe_and_post_completion_resubmit(self, tmp_path):
        service = ExperimentService(result_cache=tmp_path / "rc")
        first, deduped = service.submit("experiment", PARAMS)
        assert not deduped and first.status == QUEUED
        second, deduped = service.submit("experiment", dict(PARAMS))
        assert deduped and second.id == first.id
        other, deduped = service.submit("experiment", {**PARAMS, "seed": 4})
        assert not deduped and other.id != first.id

        service.start()
        try:
            assert _wait(service, first.id).status == DONE
            assert _wait(service, other.id).status == DONE
            # Finished jobs are not dedupe targets; the rerun is a fresh job
            # whose cells all hit the result cache.
            rerun, deduped = service.submit("experiment", PARAMS)
            assert not deduped and rerun.id != first.id
            rerun = _wait(service, rerun.id)
            assert rerun.cache_stats["hits"] > 0 and rerun.cache_stats["misses"] == 0
            assert rerun.report == service.job(first.id).report
        finally:
            service.stop()

    def test_job_report_round_trips_schema(self, tmp_path):
        service = ExperimentService(result_cache=tmp_path / "rc")
        service.start()
        try:
            job, _ = service.submit("experiment", PARAMS)
            job = _wait(service, job.id)
        finally:
            service.stop()
        assert job.status == DONE
        restored = ExperimentReport.from_dict(job.report)
        assert restored.to_dict() == job.report

    def test_sweep_job(self, tmp_path):
        service = ExperimentService(result_cache=tmp_path / "rc")
        service.start()
        try:
            job, _ = service.submit(
                "sweep",
                {
                    "axis": "cores",
                    "values": [2, 4],
                    "workloads": ["oltp_db2"],
                    "blocks_per_core": 400,
                },
            )
            job = _wait(service, job.id)
        finally:
            service.stop()
        assert job.status == DONE, job.error
        restored = SweepReport.from_dict(job.report)
        assert [point["value"] for point in restored.to_dict()["points"]] == [2, 4]

    def test_failed_job_keeps_worker_alive(self, tmp_path):
        service = ExperimentService(result_cache=tmp_path / "rc")
        service.start()
        try:
            bad, _ = service.submit("experiment", {**PARAMS, "engines": ["pif"]})
            bad = _wait(service, bad.id)
            assert bad.status == FAILED
            assert bad.error
            good, _ = service.submit("experiment", PARAMS)
            assert _wait(service, good.id).status == DONE
        finally:
            service.stop()
        counts = service.job_counts()
        assert counts[DONE] == 1 and counts[FAILED] == 1

    def test_needs_a_job_thread(self):
        with pytest.raises(ConfigurationError):
            ExperimentService(job_threads=0)


class TestLifecycleLocking:
    """Regression: start()/stop() mutated _started/_threads outside the lock
    (flagged by the lock-discipline checker), so concurrent start() calls
    could each spawn a full worker set."""

    def test_concurrent_starts_spawn_exactly_one_worker_set(self):
        service = ExperimentService(job_threads=3)
        barrier = threading.Barrier(8)

        def racer():
            barrier.wait()
            service.start()

        racers = [threading.Thread(target=racer) for _ in range(8)]
        try:
            for thread in racers:
                thread.start()
            for thread in racers:
                thread.join(timeout=10)
            assert len(service._threads) == 3
            assert sum(t.is_alive() for t in service._threads) == 3
        finally:
            service.stop()
        assert service._threads == [] and not service._started

    def test_stop_joins_workers_without_holding_the_lock(self):
        # A worker publishing its job result needs self._lock; stop() must
        # therefore join outside the lock or a mid-job shutdown deadlocks.
        service = ExperimentService(job_threads=1)
        service.start()
        job, _ = service.submit("experiment", PARAMS)
        stopper = threading.Thread(target=service.stop)
        stopper.start()
        stopper.join(timeout=120)
        assert not stopper.is_alive(), "stop() deadlocked against its worker"
        assert service.job(job.id).status in (QUEUED, DONE, FAILED)

    def test_start_after_stop_restarts_workers(self):
        service = ExperimentService(job_threads=2)
        service.start()
        service.stop()
        assert service._threads == []
        service.start()
        try:
            assert len(service._threads) == 2
        finally:
            service.stop()


FAST_PARAMS = {
    "workloads": ["oltp_db2"],
    "engines": ["none"],
    "num_cores": 2,
    "blocks_per_core": 200,
}


def _drain(service):
    """Run every queued job on the calling thread (deterministic, no races)."""
    service._queue.put(None)
    service._work()


class TestFinishedJobRetention:
    """Regression: finished jobs used to accumulate forever."""

    def test_oldest_finished_jobs_are_pruned(self, tmp_path):
        service = ExperimentService(result_cache=tmp_path / "rc", retained_jobs=2)
        submitted = [
            service.submit("experiment", {**FAST_PARAMS, "seed": seed})[0]
            for seed in range(4)
        ]
        _drain(service)
        retained = service.jobs()
        assert [job.id for job in retained] == [job.id for job in submitted[-2:]]
        assert all(job.status == DONE for job in retained)
        assert service.job_counts()[DONE] == 2
        for evicted in submitted[:2]:
            assert service.job(evicted.id) is None
        # An evicted job's dedupe key is forgotten: resubmitting its params
        # queues a fresh job instead of pointing at the pruned id.
        rerun, deduped = service.submit("experiment", {**FAST_PARAMS, "seed": 0})
        assert not deduped and rerun.id != submitted[0].id

    def test_queued_jobs_are_never_pruned(self, tmp_path):
        service = ExperimentService(result_cache=tmp_path / "rc", retained_jobs=1)
        queued, _ = service.submit("experiment", {**FAST_PARAMS, "seed": 2})
        # Hold the job back from the worker so it stays QUEUED while newer
        # submissions finish around it.
        assert service._queue.get() == queued.id
        first, _ = service.submit("experiment", {**FAST_PARAMS, "seed": 0})
        second, _ = service.submit("experiment", {**FAST_PARAMS, "seed": 1})
        _drain(service)
        # Both finished; only the newest survives the cap of 1.
        assert service.job(first.id) is None
        assert service.job(second.id).status == DONE
        # The older queued job is untouched and still the dedupe target.
        assert service.job(queued.id).status == QUEUED
        again, deduped = service.submit("experiment", {**FAST_PARAMS, "seed": 2})
        assert deduped and again.id == queued.id

    def test_retention_configuration(self, monkeypatch):
        monkeypatch.delenv(RETAINED_JOBS_ENV_VAR, raising=False)
        assert ExperimentService()._retained_jobs == DEFAULT_RETAINED_JOBS
        assert ExperimentService(retained_jobs=7)._retained_jobs == 7
        monkeypatch.setenv(RETAINED_JOBS_ENV_VAR, "3")
        assert ExperimentService()._retained_jobs == 3
        assert ExperimentService(retained_jobs=9)._retained_jobs == 9
        monkeypatch.setenv(RETAINED_JOBS_ENV_VAR, "many")
        with pytest.raises(ConfigurationError):
            ExperimentService()
        monkeypatch.setenv(RETAINED_JOBS_ENV_VAR, "0")
        with pytest.raises(ConfigurationError):
            ExperimentService()
        monkeypatch.delenv(RETAINED_JOBS_ENV_VAR, raising=False)
        with pytest.raises(ConfigurationError):
            ExperimentService(retained_jobs=0)


@pytest.fixture()
def live_server(tmp_path):
    service = ExperimentService(result_cache=tmp_path / "rc")
    server = make_server("127.0.0.1", 0, service)
    service.start()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}", service
    finally:
        server.shutdown()
        server.server_close()
        service.stop()
        thread.join(timeout=10)


def _get(url):
    try:
        with urllib.request.urlopen(url) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestHTTP:
    def test_submit_status_result_equals_library_call(self, live_server):
        base, service = live_server
        status, body = _post(f"{base}/submit", {"kind": "experiment", "params": PARAMS})
        assert status == 200 and not body["deduped"]
        job_id = body["job"]

        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            status, body = _get(f"{base}/status/{job_id}")
            assert status == 200
            if body["status"] in (DONE, FAILED):
                break
            time.sleep(0.05)
        assert body["status"] == DONE, body.get("error")

        status, body = _get(f"{base}/result/{job_id}")
        assert status == 200
        direct = run_experiment(**PARAMS)
        assert body["report"] == direct.to_dict()

        status, body = _get(f"{base}/cache/stats")
        assert status == 200
        assert body["jobs"][DONE] == 1
        assert body["result_cache"]["stored"] == len(PARAMS["engines"])
        assert body["result_cache"]["entries"] == len(PARAMS["engines"])

    def test_error_paths(self, live_server):
        base, service = live_server
        assert _get(f"{base}/healthz") == (200, {"status": "ok"})
        assert _get(f"{base}/nope")[0] == 404
        assert _get(f"{base}/status/job-999")[0] == 404
        assert _post(f"{base}/submit", {"kind": "experiment", "params": {"bogus": 1}})[0] == 400
        assert _post(f"{base}/submit", ["not", "an", "object"])[0] == 400

        status, body = _post(
            f"{base}/submit", {"kind": "experiment", "params": {**PARAMS, "engines": ["pif"]}}
        )
        assert status == 200
        job_id = body["job"]
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if service.job(job_id).status in (DONE, FAILED):
                break
            time.sleep(0.02)
        status, body = _get(f"{base}/result/{job_id}")
        assert status == 500 and body["status"] == FAILED

    def test_result_before_completion_is_409(self, tmp_path):
        # Un-started service: the job sits queued forever, deterministically.
        service = ExperimentService(result_cache=tmp_path / "rc")
        server = make_server("127.0.0.1", 0, service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            job, _ = service.submit("experiment", PARAMS)
            status, body = _get(f"http://{host}:{port}/result/{job.id}")
            assert status == 409 and body["status"] == QUEUED
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
