"""The content-addressed result cache: round-trips, corruption, races."""

import json
import random
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace

import pytest

import repro.experiments.cells as cells_module
from repro.config import scaled_system
from repro.errors import ConfigurationError
from repro.experiments import run_experiment
from repro.experiments.cells import CellSpec, execute_cells, run_cell
from repro.results import (
    DEFAULT_MAX_BYTES,
    MAX_BYTES_ENV_VAR,
    ResultCache,
    result_cache_key,
    system_digest,
)
from repro.sim.engine import CoreResult, SimulationResult
from repro.sim.llc import LLCStats
from repro.sweeps import run_sweep

CELL = CellSpec(workload="oltp_db2", engine="pif", num_cores=2, blocks_per_core=400)

EXPERIMENT = dict(workloads=["oltp_db2"], num_cores=2, blocks_per_core=400, seed=1)


def _random_result(seed: int, with_llc: bool = True) -> SimulationResult:
    rng = random.Random(seed)
    system = scaled_system(num_cores=4)
    cores = [
        CoreResult(
            core_id=core_id,
            accesses=rng.randrange(1, 10**7),
            instructions=rng.randrange(1, 10**8),
            demand_hits=rng.randrange(10**6),
            prefetch_hits=rng.randrange(10**5),
            late_hits=rng.randrange(10**4),
            misses=rng.randrange(10**5),
            prefetches_issued=rng.randrange(10**5),
            prefetches_unused=rng.randrange(10**4),
            history_block_reads=rng.randrange(10**4),
            llc_hits=rng.randrange(10**4),
            memory_misses=rng.randrange(10**4),
        )
        for core_id in range(rng.randrange(1, 5))
    ]
    llc = None
    if with_llc:
        llc = LLCStats(
            total_blocks=rng.randrange(1, 10**5),
            num_sets=rng.randrange(1, 1024),
            associativity=rng.randrange(1, 16),
            banks=4,
            pinned_blocks=rng.randrange(128),
            resident_blocks=rng.randrange(10**4),
            demand_hits=rng.randrange(10**5),
            demand_misses=rng.randrange(10**5),
            prefetch_hits=rng.randrange(10**5),
            prefetch_misses=rng.randrange(10**5),
            history_reads=rng.randrange(10**4),
            bank_accesses=[rng.randrange(10**6) for _ in range(4)],
        )
    return SimulationResult(
        prefetcher_name=rng.choice(["none", "next_line", "pif", "shift"]),
        system=system,
        cores=cores,
        storage_bytes_per_core=rng.randrange(10**6),
        llc=llc,
    )


class TestResultKey:
    def test_key_is_engine_and_param_sensitive(self):
        key = result_cache_key(CELL)
        assert key != result_cache_key(replace(CELL, engine="shift"))
        assert key != result_cache_key(replace(CELL, seed=7))
        assert key != result_cache_key(replace(CELL, history_entries=4096))
        assert key != result_cache_key(replace(CELL, llc_bytes_per_core=64 * 1024))
        assert key != result_cache_key(CELL, code_version="sim-v2")

    def test_key_ignores_backend(self):
        assert result_cache_key(CELL) == result_cache_key(replace(CELL, backend="numpy"))

    def test_system_digest_covers_geometry(self):
        assert system_digest(scaled_system(num_cores=4)) != system_digest(
            scaled_system(num_cores=8)
        )


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_results_round_trip(self, tmp_path, seed):
        cache = ResultCache(tmp_path)
        result = _random_result(seed, with_llc=seed % 2 == 0)
        cache.store(f"{seed:064x}", result)
        loaded = cache.load(f"{seed:064x}", result.system)
        assert loaded == result
        assert cache.stats() == {"hits": 1, "misses": 0, "stored": 1, "evicted": 0}

    def test_real_cell_round_trips(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = run_cell(CELL)
        key = cache.key_for(CELL)
        cache.store(key, result)
        assert cache.load(key, result.system) == result

    def test_loaded_counters_are_python_ints(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = _random_result(0)
        cache.store("0" * 64, result)
        loaded = cache.load("0" * 64, result.system)
        assert type(loaded.cores[0].misses) is int
        assert all(type(count) is int for count in loaded.llc.bank_accesses)


class TestCorruption:
    """Any damaged entry is a miss, never an error."""

    def _stored(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = _random_result(1)
        key = "1" * 64
        cache.store(key, result)
        return cache, key, result

    def test_missing_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load("f" * 64, scaled_system()) is None
        assert cache.misses == 1

    def test_corrupt_sidecar_is_a_miss(self, tmp_path):
        cache, key, result = self._stored(tmp_path)
        cache._sidecar_path(key).write_text("{not json")
        assert cache.load(key, result.system) is None

    def test_wrong_sidecar_version_is_a_miss(self, tmp_path):
        cache, key, result = self._stored(tmp_path)
        header = json.loads(cache._sidecar_path(key).read_text())
        header["version"] = 99
        cache._sidecar_path(key).write_text(json.dumps(header))
        assert cache.load(key, result.system) is None

    def test_truncated_column_is_a_miss(self, tmp_path):
        cache, key, result = self._stored(tmp_path)
        blob = cache._column_path(key).read_bytes()
        cache._column_path(key).write_bytes(blob[:-8])
        assert cache.load(key, result.system) is None

    def test_foreign_counter_layout_is_a_miss(self, tmp_path):
        cache, key, result = self._stored(tmp_path)
        header = json.loads(cache._sidecar_path(key).read_text())
        header["core_fields"] = ["mystery"]
        cache._sidecar_path(key).write_text(json.dumps(header))
        assert cache.load(key, result.system) is None

    def test_missing_column_is_a_miss(self, tmp_path):
        cache, key, result = self._stored(tmp_path)
        cache._column_path(key).unlink()
        assert cache.load(key, result.system) is None


class TestBounds:
    def test_lru_cap_evicts_oldest(self, tmp_path):
        import os
        import time

        cache = ResultCache(tmp_path, max_bytes=1)  # everything over budget
        result = _random_result(2)
        cache.store("a" * 64, result)
        # The store's own cap pass evicts the entry it just published.
        assert cache.evicted >= 1
        assert cache.load("a" * 64, result.system) is None
        # Unlimited cache keeps both entries, LRU touch updates mtime.
        cache = ResultCache(tmp_path, max_bytes=0)
        cache.store("b" * 64, result)
        before = cache._sidecar_path("b" * 64).stat().st_mtime
        time.sleep(0.01)
        os.utime(cache._sidecar_path("b" * 64), (before - 100, before - 100))
        assert cache.load("b" * 64, result.system) is not None
        assert cache._sidecar_path("b" * 64).stat().st_mtime > before - 100

    def test_usage_reports_entries_and_bytes(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.usage() == {"entries": 0, "bytes": 0}
        cache.store("c" * 64, _random_result(3))
        usage = cache.usage()
        assert usage["entries"] == 1 and usage["bytes"] > 0

    def test_stale_format_versions_pruned_on_open(self, tmp_path):
        stale = tmp_path / f"r0-{'d' * 64}.json"
        stale.write_text("{}")
        foreign = tmp_path / "unrelated.json"
        foreign.write_text("{}")
        ResultCache(tmp_path)
        assert not stale.exists()
        assert foreign.exists()

    def test_env_cap_validation(self, tmp_path, monkeypatch):
        monkeypatch.setenv(MAX_BYTES_ENV_VAR, "not-a-number")
        with pytest.raises(ConfigurationError):
            ResultCache(tmp_path)
        monkeypatch.delenv(MAX_BYTES_ENV_VAR)
        assert ResultCache(tmp_path).max_bytes == DEFAULT_MAX_BYTES


def _store_worker(args):
    directory, key = args
    from repro.experiments.cells import run_cell
    from repro.results import ResultCache

    cache = ResultCache(directory)
    cache.store(key, run_cell(CELL))
    return True


class TestConcurrency:
    def test_concurrent_publication_race(self, tmp_path):
        """Two processes storing the same key concurrently corrupt nothing."""
        key = result_cache_key(CELL)
        with ProcessPoolExecutor(max_workers=2) as pool:
            assert all(pool.map(_store_worker, [(str(tmp_path), key)] * 2))
        loaded = ResultCache(tmp_path).load(key, run_cell(CELL).system)
        assert loaded == run_cell(CELL)


class TestWarmExecution:
    def test_warm_run_executes_zero_cells_and_is_byte_identical(self, tmp_path, monkeypatch):
        cold = run_experiment(result_cache=tmp_path, **EXPERIMENT)
        assert cold.result_cache_stats["misses"] == 4
        assert cold.result_cache_stats["stored"] == 4

        def explode(*args, **kwargs):
            raise AssertionError("a warm run must not simulate any cell")

        monkeypatch.setattr(cells_module, "run_cell", explode)
        warm = run_experiment(result_cache=tmp_path, **EXPERIMENT)
        assert warm.result_cache_stats == {"hits": 4, "misses": 0, "stored": 0, "evicted": 0}
        assert warm.to_json() == cold.to_json()

    def test_partial_invalidation_recomputes_only_changed_cells(self, tmp_path):
        run_experiment(result_cache=tmp_path, **EXPERIMENT)
        changed = run_experiment(result_cache=tmp_path, **{**EXPERIMENT, "seed": 2})
        # A different seed changes every cell's trace key: full recompute.
        assert changed.result_cache_stats["hits"] == 0
        again = run_experiment(result_cache=tmp_path, **EXPERIMENT)
        assert again.result_cache_stats == {"hits": 4, "misses": 0, "stored": 0, "evicted": 0}

    def test_parallel_warm_run_matches_serial(self, tmp_path):
        serial = run_experiment(result_cache=tmp_path, **EXPERIMENT)
        parallel = run_experiment(result_cache=tmp_path, workers=2, **EXPERIMENT)
        assert parallel.to_json() == serial.to_json()
        assert parallel.result_cache_stats["hits"] == 4

    def test_execute_cells_shares_cache_across_duplicate_cells(self, tmp_path):
        cache = ResultCache(tmp_path)
        results = execute_cells([CELL, CELL], result_cache=cache)
        assert cache.stats()["stored"] == 1
        assert results[CELL] == run_cell(CELL)

    def test_sweep_shares_one_cache_across_points(self, tmp_path):
        config = dict(
            workloads=["oltp_db2"], num_cores=2, blocks_per_core=400, result_cache=tmp_path
        )
        cold = run_sweep(axis="seeds", values=[0, 1], **config)
        assert cold.result_cache_stats["misses"] == 8
        warm = run_sweep(axis="seeds", values=[0, 1], **config)
        assert warm.result_cache_stats == {"hits": 8, "misses": 0, "stored": 0, "evicted": 0}
        assert warm.to_json() == cold.to_json()
        # Extending the sweep recomputes only the new point (incrementality).
        extended = run_sweep(axis="seeds", values=[0, 1, 2], **config)
        assert extended.result_cache_stats["hits"] == 8
        assert extended.result_cache_stats["misses"] == 4

    def test_corrupt_entry_recomputes_instead_of_crashing(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_experiment(result_cache=cache, **EXPERIMENT)
        for sidecar in tmp_path.glob("r1-*.json"):
            sidecar.write_text("{broken")
        warm = run_experiment(result_cache=cache, **EXPERIMENT)
        assert warm.result_cache_stats["hits"] == 0
        assert warm.result_cache_stats["misses"] == 4
        assert warm.to_json() == cold.to_json()
