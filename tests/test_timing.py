"""The stall-exposure timing model: charges, aggregation, edge cases."""

import pytest

from repro.config import FAT_OOO, LEAN_IO, scaled_system
from repro.errors import SimulationError
from repro.sim import aggregate_ipc, core_timing, system_timing, weighted_speedup
from repro.sim.engine import CoreResult, SimulationResult
from repro.sim.timing import CoreTiming

SYSTEM = scaled_system()


def core_result(**kwargs):
    defaults = dict(core_id=0, accesses=1_000, instructions=10_000)
    defaults.update(kwargs)
    return CoreResult(**defaults)


class TestCoreTiming:
    def test_no_misses_runs_at_base_ipc(self):
        timing = core_timing(core_result(demand_hits=1_000), SYSTEM)
        assert timing.stall_cycles == 0
        assert timing.ipc == pytest.approx(SYSTEM.core.base_ipc)

    def test_zero_instructions_is_an_error(self):
        with pytest.raises(SimulationError):
            core_timing(core_result(instructions=0), SYSTEM)

    def test_unclassified_misses_charge_llc_latency(self):
        timing = core_timing(core_result(misses=100), SYSTEM)
        expected = (
            SYSTEM.core.stall_exposure * 100 * SYSTEM.llc_demand_latency_cycles()
        )
        assert timing.stall_cycles == pytest.approx(expected)

    def test_memory_misses_charge_memory_latency(self):
        classified = core_timing(
            core_result(misses=100, llc_hits=90, memory_misses=10), SYSTEM
        )
        unclassified = core_timing(core_result(misses=100), SYSTEM)
        extra = (
            SYSTEM.core.stall_exposure
            * 10
            * (SYSTEM.memory_demand_latency_cycles() - SYSTEM.llc_demand_latency_cycles())
        )
        assert classified.stall_cycles == pytest.approx(
            unclassified.stall_cycles + extra
        )

    def test_late_hits_cost_half_a_miss(self):
        late = core_timing(core_result(late_hits=2), SYSTEM)
        full = core_timing(core_result(misses=1), SYSTEM)
        assert late.stall_cycles == pytest.approx(full.stall_cycles)

    def test_history_reads_charge_an_llc_bank_access(self):
        timing = core_timing(core_result(history_block_reads=8), SYSTEM)
        expected = SYSTEM.core.stall_exposure * 8 * SYSTEM.llc.hit_latency_cycles
        assert timing.stall_cycles == pytest.approx(expected)

    def test_wider_cores_hide_more_stall(self):
        result = core_result(misses=500)
        fat = core_timing(result, SYSTEM, core=FAT_OOO)
        lean_io = core_timing(result, SYSTEM, core=LEAN_IO)
        assert fat.stall_cycles < lean_io.stall_cycles


class TestAggregateIpc:
    def test_total_instructions_over_makespan(self):
        timings = [
            CoreTiming(
                core_id=0, instructions=100, cycles=50.0, base_cycles=50.0, stall_cycles=0.0
            ),
            CoreTiming(
                core_id=1, instructions=100, cycles=100.0, base_cycles=50.0, stall_cycles=50.0
            ),
        ]
        assert aggregate_ipc(timings) == pytest.approx(200 / 100.0)

    def test_empty_timings_is_an_error(self):
        with pytest.raises(SimulationError):
            aggregate_ipc([])

    def test_non_positive_makespan_is_an_error(self):
        timings = [
            CoreTiming(core_id=0, instructions=0, cycles=0.0, base_cycles=0.0, stall_cycles=0.0)
        ]
        with pytest.raises(SimulationError):
            aggregate_ipc(timings)


class TestWeightedSpeedup:
    def _result(self, cores):
        return SimulationResult(prefetcher_name="x", system=SYSTEM, cores=cores)

    def test_identical_results_give_unity(self):
        result = self._result([core_result(misses=100)])
        assert weighted_speedup(result, result) == pytest.approx(1.0)

    def test_fewer_memory_misses_speed_up(self):
        baseline = self._result([core_result(misses=100, llc_hits=50, memory_misses=50)])
        better = self._result([core_result(misses=100, llc_hits=100)])
        assert weighted_speedup(better, baseline) > 1.0

    def test_missing_baseline_core_is_an_error(self):
        result = self._result([core_result(core_id=3)])
        baseline = self._result([core_result(core_id=0)])
        with pytest.raises(SimulationError):
            weighted_speedup(result, baseline)

    def test_system_timing_uses_result_system(self):
        result = self._result([core_result(misses=10), core_result(core_id=1)])
        timings = system_timing(result)
        assert [t.core_id for t in timings] == [0, 1]
        assert timings[0].cycles > timings[1].cycles
