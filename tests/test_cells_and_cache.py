"""Cell execution and the on-disk trace cache."""

import pickle
from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.experiments.cells import (
    CellSpec,
    execute_cells,
    resolve_workers,
    run_cell,
    trace_key_for,
    trace_set_for,
)
from repro.workloads.trace_cache import TraceCache, trace_cache_key
from repro.config import scaled_system
from repro.workloads.generator import generate_traces
from repro.workloads.suite import scaled_workload, workload_by_name

CELL = CellSpec(workload="oltp_db2", engine="shift", num_cores=4, blocks_per_core=1_500)


class TestCellSpec:
    def test_cells_are_hashable_and_picklable(self):
        assert pickle.loads(pickle.dumps(CELL)) == CELL
        assert len({CELL, replace(CELL, engine="pif")}) == 2

    def test_trace_key_ignores_engine(self):
        assert trace_key_for(CELL) == trace_key_for(replace(CELL, engine="pif"))
        assert trace_key_for(CELL) != trace_key_for(replace(CELL, seed=99))

    def test_run_cell_produces_simulation_result(self):
        result = run_cell(CELL)
        assert result.prefetcher_name == "shift"
        assert result.total_accesses == 4 * 1_500

    def test_run_cell_threads_num_cores_into_the_system(self):
        """Regression: a >16-core cell used to crash against the default
        16-core system; a ≤16-core cell simulated an unshrunk LLC."""
        big = run_cell(replace(CELL, num_cores=20, blocks_per_core=800))
        assert len(big.cores) == 20
        assert big.system.num_cores == 20
        small = run_cell(replace(CELL, num_cores=4, blocks_per_core=800))
        assert small.system.num_cores == 4
        assert small.system.llc_total_blocks == 4 * small.system.llc.size_bytes_per_core // 64

    def test_llc_override_reaches_the_simulated_system(self):
        result = run_cell(replace(CELL, llc_bytes_per_core=128 * 1024))
        assert result.system.llc.size_bytes_per_core == 8 * 1024
        assert result.llc.total_blocks == result.system.llc_total_blocks


class TestExecuteCells:
    CELLS = [
        CellSpec(workload="oltp_db2", engine=engine, num_cores=2, blocks_per_core=1_000)
        for engine in ("none", "next_line")
    ]

    def test_serial_and_parallel_agree(self):
        serial = execute_cells(self.CELLS, workers=1)
        parallel = execute_cells(self.CELLS, workers=2)
        for cell in self.CELLS:
            assert serial[cell].total_misses == parallel[cell].total_misses

    def test_env_var_worker_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 0
        assert resolve_workers(3) == 3
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert resolve_workers(None) == 2
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ConfigurationError):
            resolve_workers(None)

    def test_non_positive_worker_counts_are_rejected(self, monkeypatch):
        """Regression: ``workers=-2`` used to flow through unvalidated (and
        silently run serial, or die inside ProcessPoolExecutor with an
        opaque ValueError on paths that always pool)."""
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        for bad in (-2, -1, 0):
            with pytest.raises(ConfigurationError):
                resolve_workers(bad)
        with pytest.raises(ConfigurationError):
            execute_cells(self.CELLS, workers=-2)
        for raw in ("-2", "0"):
            monkeypatch.setenv("REPRO_WORKERS", raw)
            with pytest.raises(ConfigurationError, match="REPRO_WORKERS"):
                resolve_workers(None)


class TestTraceCache:
    def _key_and_trace(self):
        system = scaled_system()
        spec = scaled_workload(workload_by_name("oltp_db2"), system.scale)
        key = trace_cache_key(spec, system, 0, 2, 1_000)
        trace = generate_traces(spec, system, seed=0, num_cores=2, blocks_per_core=1_000)
        return key, trace

    def test_store_then_load_round_trips(self, tmp_path):
        cache = TraceCache(tmp_path)
        key, trace = self._key_and_trace()
        assert cache.load(key) is None
        cache.store(key, trace)
        loaded = cache.load(key)
        assert loaded is not None
        assert [t.addresses for t in loaded.traces] == [t.addresses for t in trace.traces]

    def test_corrupt_entry_falls_back_to_none(self, tmp_path):
        cache = TraceCache(tmp_path)
        key, trace = self._key_and_trace()
        cache.store(key, trace)
        [column] = tmp_path.glob("*.npy")
        column.write_bytes(b"not an address column")
        assert cache.load(key) is None
        cache.store(key, trace)
        [sidecar] = tmp_path.glob("*.json")
        sidecar.write_text("{not json")
        assert cache.load(key) is None

    def test_key_depends_on_generation_inputs(self):
        system = scaled_system()
        spec = scaled_workload(workload_by_name("oltp_db2"), system.scale)
        base = trace_cache_key(spec, system, 0, 2, 1_000)
        assert trace_cache_key(spec, system, 1, 2, 1_000) != base
        assert trace_cache_key(spec, system, 0, 4, 1_000) != base
        assert trace_cache_key(spec, system, 0, 2, 2_000) != base
        other = scaled_workload(workload_by_name("web_search"), system.scale)
        assert trace_cache_key(other, system, 0, 2, 1_000) != base

    def test_trace_set_for_uses_disk_cache(self, tmp_path):
        cell = CellSpec(workload="dss_qry2", engine="none", num_cores=2, blocks_per_core=800)
        import repro.experiments.cells as cells_module

        first = trace_set_for(cell, str(tmp_path))
        cells_module._TRACE_MEMO.clear()  # force the disk path
        second = trace_set_for(cell, str(tmp_path))
        assert [t.addresses for t in first.traces] == [t.addresses for t in second.traces]
        assert list(tmp_path.glob("*.npy")) and list(tmp_path.glob("*.json"))
