"""Chunked out-of-core streaming must be invisible in every report byte.

Property tests sample random chunk geometries — including the degenerate
edges: chunk size 1 (every access its own chunk, exercised only on tiny
traces because the early power-of-two boundaries serialize full engine
state), chunk equal to and beyond the trace length, prime sizes whose
boundaries inevitably split OS-noise handler runs mid-flight — and assert
``ExperimentReport.to_json`` byte equality against the monolithic run,
serially and with ``REPRO_WORKERS=2``.  The warm-state tests snapshot a
half-run simulation at a random boundary, restore it through JSON, and
require the numpy backend's vectorized replay of the remaining window to
match the Python loops on every observable — counters, LLC statistics and
the written-back shared state — while its warm-state memos prove the
vectorized path (not the fallback) actually ran.  The unit tests pin the
checkpoint layer underneath: ``snapshot()``/``restore()`` round-trips
through JSON for the L1, the prefetch buffer, the shared LLC and every
prefetcher family, plus the geometry validation each ``restore`` performs.
See ARCHITECTURE.md ("Chunked streaming") for why these invariants define
the feature.
"""

import json
import random
from dataclasses import asdict

import pytest

from repro.config import CacheConfig, scaled_shift_config, scaled_system
from repro.errors import PrefetcherError, SimulationError
from repro.experiments import run_experiment
from repro.experiments.cells import CellSpec, run_cell
from repro.results import result_cache_key
from repro.sim import simulate
from repro.sim.backends import get_backend
from repro.sim.cache import PrefetchBuffer, SetAssociativeCache
from repro.sim.engine import (
    DEFAULT_PREFETCH_BUFFER_BLOCKS,
    CoreResult,
    SimulationEngine,
)
from repro.sim.llc import SharedLLC
from repro.sim.prefetchers import (
    MISS,
    NullPrefetcher,
    PIFPrefetcher,
    SHIFTPrefetcher,
    make_prefetcher,
)
from repro.workloads.generator import generate_traces
from repro.workloads.suite import WORKLOAD_NAMES, scaled_workload, workload_by_name

SYSTEM = scaled_system()

#: Fixed seeds make the sampled geometries reproducible in CI.
PROPERTY_SEEDS = (11, 12, 13)


def _roundtrip(state):
    """Chunk boundaries serialize state through JSON; so do the tests."""
    return json.loads(json.dumps(state))


def _same_simulation(a, b):
    assert [asdict(c) for c in a.cores] == [asdict(c) for c in b.cores]
    assert asdict(a.llc) == asdict(b.llc)


def random_config(seed: int) -> dict:
    rng = random.Random(seed)
    return {
        "workloads": rng.sample(list(WORKLOAD_NAMES), rng.randint(1, 2)),
        "num_cores": rng.choice([1, 2, 4]),
        "blocks_per_core": rng.choice([500, 900]),
        "seed": rng.randint(0, 10_000),
    }


class TestChunkingInvariance:
    """Reports are byte-identical for every chunk geometry."""

    @pytest.mark.parametrize("config_seed", PROPERTY_SEEDS)
    def test_random_chunk_geometry_byte_identical(self, config_seed):
        config = random_config(config_seed)
        rng = random.Random(config_seed * 77)
        monolithic = run_experiment(**config)
        length = config["blocks_per_core"]
        # Prime sizes guarantee boundaries that split OS-noise handler runs
        # (the generator splices them throughout); the edges pin chunk ==
        # length and chunk > length (both must route to the monolithic path).
        for chunk in (rng.choice([7, 13]), rng.randint(2, length - 1), length, length + 50):
            chunked = run_experiment(chunk_blocks=chunk, **config)
            assert chunked.to_json() == monolithic.to_json(), f"chunk={chunk}"

    def test_chunk_size_one_on_a_tiny_trace(self):
        """Every access its own chunk — a checkpoint at every step."""
        config = {
            "workloads": ["oltp_db2"],
            "num_cores": 2,
            "blocks_per_core": 60,
            "seed": 3,
        }
        monolithic = run_experiment(**config)
        chunked = run_experiment(chunk_blocks=1, **config)
        assert chunked.to_json() == monolithic.to_json()

    def test_uneven_lanes_drop_out_of_later_chunks(self):
        """Lanes shorter than a chunk's start are excluded, not padded."""
        spec = scaled_workload(workload_by_name("web_frontend"), 16)
        trace_set = generate_traces(
            spec, SYSTEM, seed=8, num_cores=3, blocks_per_core=900
        )
        trimmed = trace_set.traces[0].window(0, 250)
        uneven = type(trace_set)(
            traces=[trimmed, trace_set.traces[1], trace_set.traces[2]],
            seed=trace_set.seed,
            name="uneven",
        )
        config = scaled_shift_config(16)
        mono = simulate(uneven, SYSTEM, "shift", shift_config=config)
        chunked = simulate(
            uneven, SYSTEM, "shift", shift_config=config, chunk_blocks=300
        )
        _same_simulation(mono, chunked)

    def test_backends_agree_under_chunking(self):
        """Chunks execute on the engine's own backend — the numpy backend
        resumes each window from the restored warm state — so chunked
        numpy, chunked python and monolithic numpy must all produce the
        same report for the same cell."""
        pytest.importorskip("numpy")
        config = random_config(21)
        chunked_python = run_experiment(
            backend="python", chunk_blocks=111, **config
        )
        chunked_numpy = run_experiment(backend="numpy", chunk_blocks=111, **config)
        monolithic_numpy = run_experiment(backend="numpy", **config)
        assert chunked_python.to_json() == chunked_numpy.to_json()
        assert chunked_python.to_json() == monolithic_numpy.to_json()

    def test_parallel_workers_byte_identical(self, monkeypatch, tmp_path):
        config = random_config(31)
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_CHUNK_BLOCKS", raising=False)
        monolithic = run_experiment(**config)
        monkeypatch.setenv("REPRO_WORKERS", "2")
        chunked_parallel = run_experiment(
            chunk_blocks=97, trace_cache=tmp_path, **config
        )
        assert chunked_parallel.to_json() == monolithic.to_json()

    def test_chunk_blocks_joins_the_result_cache_key(self):
        """Chunked and monolithic cells must not share a cache entry —
        otherwise the chunking-invariance CI checks would only ever test
        whichever geometry ran first."""
        cell = CellSpec(workload="oltp_db2", engine="shift", num_cores=2)
        chunked = CellSpec(
            workload="oltp_db2", engine="shift", num_cores=2, chunk_blocks=64
        )
        assert result_cache_key(cell) != result_cache_key(chunked)

    def test_run_cell_honours_chunk_blocks(self):
        base = dict(
            workload="web_search", engine="pif", num_cores=2, blocks_per_core=400
        )
        mono = run_cell(CellSpec(**base))
        chunked = run_cell(CellSpec(chunk_blocks=53, **base))
        _same_simulation(mono, chunked)

    def test_invalid_chunk_blocks_rejected(self):
        trace_set = generate_traces(
            scaled_workload(workload_by_name("oltp_db2"), 16),
            SYSTEM,
            seed=1,
            num_cores=1,
            blocks_per_core=50,
        )
        with pytest.raises(SimulationError, match="chunk_blocks"):
            simulate(trace_set, SYSTEM, "none", chunk_blocks=0)


class TestCheckpointRoundTrips:
    """snapshot() -> JSON -> restore() into a fresh object is exact."""

    def test_l1_cache_roundtrip(self):
        cache = SetAssociativeCache(CacheConfig(size_bytes=2048, associativity=2))
        for address in (0, 64, 128, 4096, 64, 8192):
            cache.access(address)
        twin = SetAssociativeCache(CacheConfig(size_bytes=2048, associativity=2))
        twin.restore(_roundtrip(cache.snapshot()))
        assert twin.snapshot() == cache.snapshot()
        # LRU order survived: the same accesses hit/miss identically.
        assert twin.access(64) == cache.access(64)

    def test_l1_cache_restore_validates_geometry(self):
        cache = SetAssociativeCache(CacheConfig(size_bytes=2048, associativity=2))
        with pytest.raises(SimulationError, match="sets"):
            cache.restore([[1]])

    def test_prefetch_buffer_roundtrip_and_rebase(self):
        buffer = PrefetchBuffer(capacity=4)
        buffer.insert(10, issued_at=5)
        buffer.insert(11, issued_at=7)
        buffer.rebase_timestamps(7)
        snap = _roundtrip(buffer.snapshot())
        twin = PrefetchBuffer(capacity=4)
        twin.restore(snap)
        assert twin.snapshot() == buffer.snapshot()
        # Rebased stamps may go negative; FIFO order survived the roundtrip.
        assert snap["blocks"] == [[10, -2], [11, 0]]

    def test_shared_llc_roundtrip_keeps_pins_and_counters(self):
        llc = SharedLLC(SYSTEM.llc, num_cores=2)
        llc.pin_region(100, num_blocks=4)
        for block in (1, 2, 3, 1, 102):
            llc.access_demand(block)
        snap = _roundtrip(llc.snapshot())
        twin = SharedLLC(SYSTEM.llc, num_cores=2)
        twin.restore(snap)
        assert twin.snapshot() == llc.snapshot()
        assert twin.pinned_blocks == 4
        assert twin.is_pinned(102)

    def test_shared_llc_restore_validates_geometry(self):
        llc = SharedLLC(SYSTEM.llc, num_cores=2)
        bad = llc.snapshot()
        bad["sets"] = bad["sets"][:-1]
        with pytest.raises(SimulationError, match="sets"):
            llc.restore(bad)

    def test_stateless_prefetcher_rejects_foreign_state(self):
        prefetcher = NullPrefetcher()
        prefetcher.restore(_roundtrip(prefetcher.snapshot()))  # {} is fine
        with pytest.raises(PrefetcherError, match="unexpected"):
            prefetcher.restore({"history": []})

    def test_history_restore_validates_capacity(self):
        config = scaled_shift_config(16)
        shift = SHIFTPrefetcher(num_cores=2, config=config)
        snap = shift.snapshot()
        snap["history"]["records"].append([1, 2])
        with pytest.raises(PrefetcherError):
            shift.restore(_roundtrip(snap))

    @pytest.mark.parametrize("family", ["pif", "shift"])
    def test_prefetcher_mid_run_roundtrip_resumes_exactly(self, family):
        """Warm a prefetcher mid-trace, serialize, restore into a fresh
        instance, and finish the trace on both: identical final state."""
        trace_set = generate_traces(
            scaled_workload(workload_by_name("oltp_db2"), 16),
            SYSTEM,
            seed=6,
            num_cores=2,
            blocks_per_core=400,
        )

        def make():
            if family == "pif":
                return PIFPrefetcher(num_cores=2)
            return SHIFTPrefetcher(num_cores=2, config=scaled_shift_config(16))

        reference = make()
        resumed = make()
        lanes = [trace.addresses for trace in trace_set.traces]
        for step, (b0, b1) in enumerate(zip(*lanes)):
            if step == 200:
                resumed.restore(_roundtrip(reference.snapshot()))
            targets = (reference,) if step < 200 else (reference, resumed)
            issued = [
                (p.on_access(0, b0, MISS), p.on_access(1, b1, MISS))
                for p in targets
            ]
            # Post-restore, both instances must issue the same prefetches at
            # every step — the property the chunked engine's exactness
            # guarantee reduces to.
            assert all(pair == issued[0] for pair in issued)
        assert resumed.snapshot() == reference.snapshot()


#: Every engine family the warm-state vectorized replay must cover,
#: including consolidated SHIFT (two logical histories over the core set).
WARM_FAMILIES = ("none", "next_line", "pif", "shift", "shift_groups")


def _family_prefetcher(family: str):
    if family == "shift_groups":
        half = SYSTEM.num_cores // 2
        groups = [
            list(range(half)),
            list(range(half, SYSTEM.num_cores)),
        ]
        return make_prefetcher(
            "shift", SYSTEM, shift_config=scaled_shift_config(16), shift_groups=groups
        )
    if family == "shift":
        return make_prefetcher("shift", SYSTEM, shift_config=scaled_shift_config(16))
    return make_prefetcher(family, SYSTEM)


def _warm_boundary_run(backend_name, family, trace_set, split):
    """Warm a run to ``split`` on the Python loops, checkpoint through JSON,
    then replay the remaining window once on ``backend_name``.

    Mirrors one ``_run_chunked`` boundary with public snapshot/restore
    APIs: rebased buffer timestamps, fresh cache/buffer/LLC objects, the
    prefetcher restored in place.  Returns every observable of the second
    window — per-core counters, LLC statistics and the written-back shared
    state — for cross-backend comparison.
    """
    prefetcher = _family_prefetcher(family)
    engine = SimulationEngine(SYSTEM, prefetcher=prefetcher, backend=backend_name)
    cores = sorted(trace_set.traces, key=lambda t: t.core_id)
    length = cores[0].num_accesses
    caches = {t.core_id: SetAssociativeCache(SYSTEM.l1i) for t in cores}
    buffers = {
        t.core_id: PrefetchBuffer(DEFAULT_PREFETCH_BUFFER_BLOCKS) for t in cores
    }
    miss_latency = SYSTEM.llc_demand_latency_cycles()
    inflight = {
        t.core_id: max(
            1,
            round(miss_latency * SYSTEM.core.base_ipc / t.instructions_per_block),
        )
        for t in cores
    }
    llc = engine._build_llc(trace_set)
    warm_stats = {t.core_id: CoreResult(core_id=t.core_id) for t in cores}
    lanes = [
        (t.core_id, t.window(0, split), caches[t.core_id], buffers[t.core_id],
         warm_stats[t.core_id])
        for t in cores
    ]
    get_backend("python").run(lanes, inflight, prefetcher, llc)
    for buffer in buffers.values():
        buffer.rebase_timestamps(split)
    state = _roundtrip(
        {
            "caches": {str(cid): c.snapshot() for cid, c in caches.items()},
            "buffers": {str(cid): b.snapshot() for cid, b in buffers.items()},
            "prefetcher": prefetcher.snapshot(),
            "llc": llc.snapshot(),
        }
    )
    for t in cores:
        fresh_cache = SetAssociativeCache(SYSTEM.l1i)
        fresh_cache.restore(state["caches"][str(t.core_id)])
        caches[t.core_id] = fresh_cache
        fresh_buffer = PrefetchBuffer(DEFAULT_PREFETCH_BUFFER_BLOCKS)
        fresh_buffer.restore(state["buffers"][str(t.core_id)])
        buffers[t.core_id] = fresh_buffer
    prefetcher.restore(state["prefetcher"])
    fresh_llc = SharedLLC(SYSTEM.llc, SYSTEM.num_cores)
    fresh_llc.restore(state["llc"])
    llc = fresh_llc
    chunk_stats = {t.core_id: CoreResult(core_id=t.core_id) for t in cores}
    lanes = [
        (t.core_id, t.window(split, length), caches[t.core_id],
         buffers[t.core_id], chunk_stats[t.core_id])
        for t in cores
    ]
    get_backend(backend_name).run(lanes, inflight, prefetcher, llc)
    return {
        "counters": {cid: asdict(stats) for cid, stats in chunk_stats.items()},
        "llc_stats": asdict(llc.stats()),
        "llc_state": llc.snapshot(),
        "caches": {cid: c.snapshot() for cid, c in caches.items()},
        "buffers": {cid: b.snapshot() for cid, b in buffers.items()},
        "prefetcher": prefetcher.snapshot(),
    }


class TestWarmStateVectorizedReplay:
    """The numpy backend must resume exactly from a restored checkpoint —
    and must do so on its vectorized paths, not the Python fallback."""

    @pytest.mark.parametrize("family", WARM_FAMILIES)
    @pytest.mark.parametrize("config_seed", PROPERTY_SEEDS)
    def test_warm_numpy_chunk_matches_python(self, family, config_seed):
        pytest.importorskip("numpy")
        from repro.sim.backends import numpy_backend as nb

        rng = random.Random(config_seed * 1009 + sum(map(ord, family)))
        spec = scaled_workload(workload_by_name(rng.choice(WORKLOAD_NAMES)), 16)
        blocks = rng.choice([400, 600])
        trace_set = generate_traces(
            spec,
            SYSTEM,
            seed=rng.randint(0, 10_000),
            num_cores=SYSTEM.num_cores,
            blocks_per_core=blocks,
        )
        split = rng.randint(50, blocks - 50)
        reference = _warm_boundary_run("python", family, trace_set, split)

        def warm_overlays():
            return sum(1 for key in nb._ARRAY_CACHE if len(key) == 4)

        solver_cache = {
            "none": nb._ARRAY_CACHE,
            "next_line": nb._NEXT_LINE_CACHE,
            "pif": nb._PIF_CACHE,
            "shift": nb._SHIFT_CACHE,
            "shift_groups": nb._SHIFT_CACHE,
        }[family]
        overlays_before = warm_overlays()
        solver_before = len(solver_cache)
        warm = _warm_boundary_run("numpy", family, trace_set, split)
        assert warm == reference
        # The memo probe: a vectorized warm replay populates the warm L1
        # overlay cache and the family's solver cache; the Python fallback
        # touches neither.  This keeps the warm path honest — a silently
        # widened _Unsupported bailout would fail here, not just run slow.
        assert warm_overlays() > overlays_before
        if family != "none":
            assert len(solver_cache) > solver_before

    @pytest.mark.parametrize("config_seed", PROPERTY_SEEDS)
    def test_warm_numpy_random_chunk_geometry_byte_identical(self, config_seed):
        pytest.importorskip("numpy")
        config = random_config(config_seed)
        rng = random.Random(config_seed * 131)
        monolithic = run_experiment(backend="python", **config)
        for chunk in (rng.choice([61, 89]), rng.randint(40, 300)):
            chunked = run_experiment(backend="numpy", chunk_blocks=chunk, **config)
            assert chunked.to_json() == monolithic.to_json(), f"chunk={chunk}"

    def test_warm_numpy_chunks_with_workers_byte_identical(
        self, monkeypatch, tmp_path
    ):
        pytest.importorskip("numpy")
        config = random_config(47)
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_CHUNK_BLOCKS", raising=False)
        monolithic = run_experiment(backend="python", **config)
        monkeypatch.setenv("REPRO_WORKERS", "2")
        chunked_parallel = run_experiment(
            backend="numpy", chunk_blocks=103, trace_cache=tmp_path, **config
        )
        assert chunked_parallel.to_json() == monolithic.to_json()
